"""Pattern-compiler bench: catalogue equivalence + match throughput.

Replays the Table III workload once through a serial coordinator, then
feeds the identical per-epoch message stream to two standing-query
engines — one subscribed to the hand-coded legacy catalogue, one to the
same six patterns compiled from :mod:`repro.sase` source — and checks
the encoded notification frames are **byte for byte** identical.  The
timed runs give the catalogue-vs-compiled overhead ratio and the match
throughput at the milestone; the results land in the ``patterns``
section of ``BENCH_table3.json`` and gate the CI ``sase-smoke`` step
via :func:`check_patterns`.
"""

from __future__ import annotations

import time

from repro.distributed import Coordinator, Zone
from repro.experiments.table3 import (
    DEFAULT_CASES_PER_PALLET,
    DEFAULT_SEED,
    duration_for,
    machine_info,
    table3_config,
)
from repro.serving import protocol
from repro.serving.engine import StandingQueryEngine
from repro.simulator.warehouse import WarehouseSimulator

DEFAULT_MILESTONE = 12_000
DEFAULT_DWELL_K = 25

#: deep enough that drop-oldest eviction can never skew the comparison
_QUEUE = 1 << 20


def _catalogue_params(layout, dwell_k: int) -> dict:
    """Pattern arguments anchored to real places/objects in the workload."""
    from repro.model.objects import PackagingLevel, TagId

    # the anomaly pattern watches the belt: items falling off their case
    # there are the one containment anomaly this workload produces
    return {
        "belt": layout.receiving_belt.color,
        "shelf": layout.shelves[0].color,
        "anomaly": layout.receiving_belt.color,
        "obj": TagId(PackagingLevel.CASE, 3),
        "k": dwell_k,
    }


def _legacy_catalogue(params: dict) -> list[tuple[str, object]]:
    from repro.serving.patterns import (
        DwellExceeded,
        LeftWithoutContainer,
        MissingOverdue,
        ObjectWatch,
        PlaceWatch,
        Tail,
    )

    return [
        ("tail_belt", Tail(place=params["belt"])),
        ("object_case3", ObjectWatch(obj=params["obj"])),
        ("place_shelf0", PlaceWatch(place=params["shelf"])),
        ("dwell_shelf0", DwellExceeded(place=params["shelf"], k=params["k"])),
        ("missing_overdue", MissingOverdue(k=params["k"])),
        ("anomaly_belt", LeftWithoutContainer(place=params["anomaly"])),
    ]


def _compiled_catalogue(params: dict) -> list[tuple[str, object]]:
    from repro.sase import library

    return [
        ("tail_belt", library.tail(place=params["belt"])),
        ("object_case3", library.object_watch(params["obj"])),
        ("place_shelf0", library.place_watch(params["shelf"])),
        ("dwell_shelf0", library.dwell_exceeded(params["shelf"], params["k"])),
        ("missing_overdue", library.missing_overdue(params["k"])),
        ("anomaly_belt", library.left_without_container(params["anomaly"])),
    ]


def _replay_epochs(sim) -> list[tuple[int, list]]:
    """Interpret the raw stream once; both engine runs share the result."""
    coordinator = Coordinator(
        [Zone.build("all", sim.layout.readers, sim.layout.registry)]
    )
    epochs = []
    for readings in sim.stream:
        result = coordinator.process_epoch(readings)
        epochs.append((result.epoch, result.messages))
    return epochs


def _run_catalogue(patterns, epochs) -> tuple[float, dict[str, list[bytes]]]:
    """Publish every epoch to a fresh engine; return (seconds, frames)."""
    engine = StandingQueryEngine(expand_level2=True)
    subs = [(name, engine.subscribe(pattern, max_queue=_QUEUE))
            for name, pattern in patterns]
    started = time.perf_counter()
    for epoch, messages in epochs:
        engine.publish(epoch, messages)
    elapsed = time.perf_counter() - started
    frames = {
        name: [protocol.encode_event(0, note) for note in sub.drain()]
        for name, sub in subs
    }
    return elapsed, frames


def run_patterns_bench(
    milestone: int = DEFAULT_MILESTONE,
    cases_per_pallet: int = DEFAULT_CASES_PER_PALLET,
    seed: int = DEFAULT_SEED,
    dwell_k: int = DEFAULT_DWELL_K,
) -> dict:
    """Run the legacy-vs-compiled catalogue comparison; return the payload."""
    duration = duration_for([milestone], cases_per_pallet)
    sim = WarehouseSimulator(
        table3_config(cases_per_pallet, duration, seed)
    ).run()
    epochs = _replay_epochs(sim)
    message_count = sum(len(messages) for _, messages in epochs)

    params = _catalogue_params(sim.layout, dwell_k)
    legacy_s, legacy_frames = _run_catalogue(_legacy_catalogue(params), epochs)
    compiled = _compiled_catalogue(params)
    compiled_s, compiled_frames = _run_catalogue(compiled, epochs)

    rows = []
    for name, pattern in compiled:
        mine, theirs = compiled_frames[name], legacy_frames[name]
        rows.append({
            "name": name,
            "source": pattern.source,
            "matches": len(mine),
            "equivalent": mine == theirs,
            "compile_ms": pattern.compile_seconds * 1e3,
        })
    matches = sum(row["matches"] for row in rows)
    return {
        "workload": {
            "milestone": milestone,
            "duration": duration,
            "cases_per_pallet": cases_per_pallet,
            "seed": seed,
            "dwell_k": dwell_k,
            "messages": message_count,
            "epochs": len(epochs),
        },
        "machine": machine_info(),
        "catalogue": rows,
        "equivalent": all(row["equivalent"] for row in rows),
        "matches": matches,
        "legacy_s": legacy_s,
        "compiled_s": compiled_s,
        "overhead_ratio": compiled_s / max(legacy_s, 1e-12),
        "match_throughput_per_s": matches / max(compiled_s, 1e-12),
        "messages_per_s": message_count / max(compiled_s, 1e-12),
        "compile_seconds_total": sum(p.compile_seconds for _, p in compiled),
    }


def check_patterns(payload: dict) -> list[str]:
    """Gate for CI: equivalence is a hard failure, throughput advisory."""
    problems = []
    for row in payload["catalogue"]:
        if not row["equivalent"]:
            problems.append(
                f"{row['name']}: compiled notifications diverge from the "
                f"legacy catalogue ({row['matches']} match frame(s))"
            )
    if payload["matches"] == 0:
        problems.append("catalogue produced no matches — workload is degenerate")
    return problems

"""Tests for item fall-off events (the paper's running example, Fig. 1)."""

import pytest

from repro.core.pipeline import Deployment, Spire
from repro.events.messages import EventKind
from repro.model.objects import PackagingLevel
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator


def fall_off_config(**overrides) -> SimulationConfig:
    base = dict(
        duration=500,
        pallet_period=100,
        cases_per_pallet_min=2,
        cases_per_pallet_max=2,
        items_per_case=4,
        read_rate=1.0,
        shelf_read_period=10,
        num_shelves=2,
        shelving_time_mean=80,
        shelving_time_jitter=10,
        fall_off_probability=1.0,
        lost_item_timeout=30,
        seed=3,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestSimulatorFallOff:
    def test_disabled_by_default(self):
        sim = WarehouseSimulator(fall_off_config(fall_off_probability=0.0)).run()
        assert sim.items_fallen == 0

    def test_items_fall_with_certainty(self):
        sim = WarehouseSimulator(fall_off_config()).run()
        # every case that completed a belt scan dropped one item
        assert sim.items_fallen > 0

    def test_fallen_item_loses_containment_in_truth(self):
        sim = WarehouseSimulator(fall_off_config()).run()
        belt = sim.layout.receiving_belt
        # find an epoch where an uncontained item lies on the belt while no
        # case is being scanned there
        found = False
        for snapshot in sim.truth.snapshots:
            for tag, location in snapshot.locations.items():
                if (
                    tag.level == PackagingLevel.ITEM
                    and location == belt
                    and snapshot.container_of(tag) is None
                ):
                    found = True
        assert found, "no fallen item ever observed uncontained on the belt"

    def test_fallen_items_eventually_disposed(self):
        sim = WarehouseSimulator(fall_off_config(duration=400)).run()
        final = sim.truth.snapshots[-1]
        strays = [
            tag
            for tag, location in final.locations.items()
            if tag.level == PackagingLevel.ITEM
            and location == sim.layout.receiving_belt
            and final.container_of(tag) is None
        ]
        # the lost-and-found timeout keeps the belt from accumulating items
        assert len(strays) <= 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            fall_off_config(fall_off_probability=1.5)
        with pytest.raises(ValueError):
            fall_off_config(lost_item_timeout=0)

    def test_world_invariants_hold(self):
        simulator = WarehouseSimulator(fall_off_config())
        for epoch in range(300):
            simulator.step(epoch)
            if epoch % 50 == 0:
                simulator.world.check_invariants()


class TestSpireSeesContainmentBreak:
    def test_end_containment_emitted_for_fallen_items(self):
        sim = WarehouseSimulator(fall_off_config()).run()
        deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
        spire = Spire(deployment, compression_level=1)
        messages = [m for out in spire.run(sim.stream) for m in out.messages]
        # at least one fallen item's containment is reported as ended well
        # before its disposal
        ends = [m for m in messages if m.kind is EventKind.END_CONTAINMENT]
        assert ends, "no containment breaks detected at all"
        item_ends = [m for m in ends if m.obj.level == PackagingLevel.ITEM]
        assert item_ends

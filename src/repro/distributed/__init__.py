"""Distributed operation: zone-partitioned substrates with object handoff.

The paper's future work (§VIII) calls for running the interpretation and
compression substrate "in distributed environments".  This package
implements the natural partitioning for a large site: readers are grouped
into *zones* (a building, a floor, a yard), each zone runs its own
:class:`~repro.core.pipeline.Spire` over its own readers, and a
:class:`~repro.distributed.coordinator.Coordinator` routes readings,
hands objects off between zones as they migrate, and merges the zones'
compressed outputs into one well-formed stream.

With ``checkpoint_interval`` set, the coordinator also provides zone
failover: periodic per-zone checkpoints, ``fail_zone`` / ``recover_zone``
with replay of buffered epochs, and orphan-tag re-adoption, so the merged
stream survives a zone crash well-formed (see ``docs/FAULTS.md``).

:mod:`repro.distributed.remote` lifts the worker protocol onto TCP
(``spire-worker`` daemons), and :mod:`repro.distributed.supervisor`
supplies the heartbeat/lease tracking and retry/backoff machinery that
makes the remote transport survivable (see ``docs/SCALING.md``).
"""

from repro.distributed.coordinator import (
    Coordinator,
    EpochResult,
    HandoffRecord,
    Zone,
    partition_by_location,
)
from repro.distributed.parallel import ParallelCoordinator, WorkerFailure, WorkerStats
from repro.distributed.remote import (
    RemoteCoordinator,
    WorkerDaemon,
    spawn_worker_process,
)
from repro.distributed.supervisor import (
    RemoteError,
    RetryPolicy,
    SupervisorStats,
    WorkerDied,
    WorkerSupervisor,
)

__all__ = [
    "Coordinator",
    "EpochResult",
    "Zone",
    "HandoffRecord",
    "ParallelCoordinator",
    "RemoteCoordinator",
    "RemoteError",
    "RetryPolicy",
    "SupervisorStats",
    "WorkerDaemon",
    "WorkerDied",
    "WorkerFailure",
    "WorkerStats",
    "WorkerSupervisor",
    "partition_by_location",
    "spawn_worker_process",
]

"""The standing-query engine: subscriptions over a live index.

:class:`StandingQueryEngine` is the transport-free core of the serving
layer (the asyncio server in :mod:`repro.serving.server` is a thin shell
around it):

* it owns the **live index** — an incrementally maintained
  :class:`~repro.query.index.EventStreamIndex` extended once per epoch
  with the coordinator's merged output (level-2 streams are expanded
  through the streaming decompressor first, so patterns see explicit
  per-object histories);
* it keeps the **shared fan-out tree**: subscriptions are keyed by their
  pattern's canonical identity (:meth:`Pattern.share_key` — for compiled
  patterns the :func:`repro.sase.unparse` fixpoint of the source), so N
  subscribers to the same pattern share one :class:`SharedRuntime` and
  cost **one** evaluation per epoch plus O(N) enqueue into per-subscriber
  bounded queues;
* it applies **tiered backpressure**: when a queue is full the oldest
  notification is dropped and a
  :data:`~repro.faults.warnings.WarningKind.SUBSCRIPTION_OVERFLOW`
  warning (naming the canonical pattern and subscriber count) is
  recorded, at most one per subscription per epoch; when ``evict_after``
  is set and a subscription overflows that many publishes in a row, it
  is **evicted** with a
  :data:`~repro.faults.warnings.WarningKind.SUBSCRIPTION_EVICTED`
  warning so a stalled consumer eventually costs nothing at all;
* it records **serving counters** (:class:`ServingStats`): epochs and
  messages published, notifications delivered/dropped, evictions,
  pattern evaluations, one-shot query count, and log₂-bucketed latency
  histograms for both queries and per-epoch publishes;
* subscriptions survive restarts: :meth:`dump_subscriptions` serializes
  the canonical pattern text (or legacy spec) per subscription and
  :meth:`restore_subscriptions` re-arms them with their original ids.
"""

from __future__ import annotations

import json
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.compression.decompress import StreamingLevel2Decompressor
from repro.events.messages import EventMessage
from repro.faults.warnings import Quarantine, WarningKind
from repro.model.objects import TagId
from repro.query.index import EventStreamIndex
from repro.serving.patterns import (
    NOTIFY_SUBSCRIPTION_EVICTED,
    PATTERN_SASE,
    Notification,
    Pattern,
    PatternSpec,
    pattern_from_spec,
)

#: version byte for the subscription snapshot JSON (see dump_subscriptions)
SUBSCRIPTIONS_VERSION = 1


def _log2_bucket(seconds: float) -> int:
    """Bucket ``b`` counts latencies in ``[2^(b-1), 2^b)`` µs (0: < 1 µs)."""
    micros = seconds * 1e6
    bucket = 0
    while micros >= 1.0:
        micros /= 2.0
        bucket += 1
    return bucket


def describe_pattern(pattern: Pattern) -> str:
    """Canonical human/wire-readable identity of a pattern.

    Compiled patterns answer with the ``unparse`` fixpoint of their
    source; hand-coded catalogue patterns fall back to a rendering of
    their :class:`~repro.serving.patterns.PatternSpec`.
    """
    canonical = getattr(pattern, "canonical_source", None)
    if canonical:
        return canonical
    spec = pattern.spec()
    parts = [f"kind={spec.kind}"]
    if spec.obj is not None:
        parts.append(f"obj={spec.obj.level.name.lower()}:{spec.obj.serial}")
    if spec.place is not None:
        parts.append(f"place={spec.place}")
    if spec.k:
        parts.append(f"k={spec.k}")
    return "spec(" + ", ".join(parts) + ")"


@dataclass
class ServingStats:
    """Observability counters for one serving session."""

    epochs_published: int = 0
    messages_published: int = 0
    notifications_delivered: int = 0
    notifications_dropped: int = 0
    subscriptions_opened: int = 0
    subscriptions_closed: int = 0
    subscriptions_evicted: int = 0
    pattern_evaluations: int = 0
    queries_served: int = 0
    query_seconds: float = 0.0
    publish_seconds: float = 0.0
    #: one-shot query latency histogram: bucket ``b`` counts queries with
    #: latency in ``[2^(b-1), 2^b)`` microseconds (bucket 0: < 1 µs)
    latency_buckets: Counter = field(default_factory=Counter)
    #: per-epoch publish (index extend + evaluate + fan-out) latency,
    #: same log₂-µs bucketing as the query histogram
    publish_buckets: Counter = field(default_factory=Counter)

    def observe_query(self, seconds: float) -> None:
        self.queries_served += 1
        self.query_seconds += seconds
        self.latency_buckets[_log2_bucket(seconds)] += 1

    def observe_publish(self, seconds: float) -> None:
        self.publish_seconds += seconds
        self.publish_buckets[_log2_bucket(seconds)] += 1

    @property
    def active_subscriptions(self) -> int:
        return self.subscriptions_opened - self.subscriptions_closed

    def latency_lines(self) -> list[str]:
        """Render the latency histogram (one line per non-empty bucket)."""
        lines = []
        for bucket in sorted(self.latency_buckets):
            upper = 2**bucket
            share = self.latency_buckets[bucket] / max(self.queries_served, 1)
            lines.append(
                f"< {upper:>8} µs  {self.latency_buckets[bucket]:>8}  {share:>6.1%}"
            )
        return lines

    def summary_lines(self) -> list[str]:
        """Human-readable block for the ``serve`` subcommand's shutdown."""
        mean_us = 1e6 * self.query_seconds / max(self.queries_served, 1)
        lines = [
            f"epochs published        {self.epochs_published} "
            f"({self.messages_published} event message(s))",
            f"subscriptions           {self.active_subscriptions} active / "
            f"{self.subscriptions_opened} opened / "
            f"{self.subscriptions_evicted} evicted",
            f"notifications           {self.notifications_delivered} delivered / "
            f"{self.notifications_dropped} dropped",
            f"pattern evaluations     {self.pattern_evaluations}",
            f"one-shot queries        {self.queries_served} "
            f"(mean {mean_us:.1f} µs)",
        ]
        if self.latency_buckets:
            lines.append("query latency histogram:")
            lines.extend(f"  {line}" for line in self.latency_lines())
        return lines


class SharedRuntime:
    """One pattern evaluator shared by every subscriber to that pattern.

    The fan-out tree's interior node: holds the (stateful) pattern
    instance, the member subscriptions broadcast to, and the evaluation
    counter that the equivalence bench uses to prove evaluations per
    epoch are independent of the duplicate-subscriber count.
    """

    __slots__ = ("key", "pattern", "canonical", "members", "evaluations")

    def __init__(self, key: tuple, pattern: Pattern, canonical: str) -> None:
        self.key = key
        self.pattern = pattern
        self.canonical = canonical
        self.members: dict[int, Subscription] = {}
        self.evaluations = 0


class Subscription:
    """One standing query: a shared pattern plus its bounded delivery queue."""

    __slots__ = (
        "sub_id",
        "pattern",
        "queue",
        "max_queue",
        "delivered",
        "dropped",
        "runtime",
        "durable",
        "overflow_streak",
    )

    def __init__(self, sub_id: int, pattern: Pattern, max_queue: int) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.sub_id = sub_id
        self.pattern = pattern
        self.queue: deque[Notification] = deque()
        self.max_queue = max_queue
        self.delivered = 0
        self.dropped = 0
        #: the SharedRuntime this subscription fans out from (engine-set)
        self.runtime: SharedRuntime | None = None
        #: durable subscriptions (restored from a snapshot, awaiting their
        #: consumer to reconnect) are exempt from slow-consumer eviction
        self.durable = False
        #: consecutive publishes that overflowed this queue (eviction tier)
        self.overflow_streak = 0

    def push(self, notifications: list[Notification]) -> int:
        """Enqueue, dropping the oldest on overflow; returns drops."""
        dropped = 0
        for note in notifications:
            if len(self.queue) >= self.max_queue:
                self.queue.popleft()
                dropped += 1
            self.queue.append(note)
        self.dropped += dropped
        return dropped

    def drain(self, limit: int | None = None) -> list[Notification]:
        """Remove and return up to ``limit`` queued notifications."""
        n = len(self.queue) if limit is None else min(limit, len(self.queue))
        out = [self.queue.popleft() for _ in range(n)]
        self.delivered += len(out)
        return out


class StandingQueryEngine:
    """Shared fan-out tree + live index, fed one epoch at a time.

    Args:
        expand_level2: Expand the published stream through the streaming
            level-2 decompressor before indexing/evaluation, so patterns
            see explicit per-object location histories.  Use it whenever
            the pump's substrate runs compression level 2 (the default).
        quarantine: Destination for overflow/eviction warnings (a fresh
            :class:`~repro.faults.warnings.Quarantine` if omitted —
            coordinator pumps typically share theirs).
        evict_after: Evict a subscription after this many *consecutive*
            overflowing publishes (0 disables eviction, the default —
            drop-oldest alone then bounds memory but not enqueue work).
    """

    def __init__(
        self,
        expand_level2: bool = False,
        quarantine: Quarantine | None = None,
        evict_after: int = 0,
    ) -> None:
        self.index = EventStreamIndex()
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self.stats = ServingStats()
        self.last_epoch: int | None = None
        self.evict_after = evict_after
        #: (sub_id, eviction notice) pairs from the most recent publish —
        #: the server reads this to notify owners before dropping them
        self.evicted: list[tuple[int, Notification]] = []
        self._expander = StreamingLevel2Decompressor() if expand_level2 else None
        self._subscriptions: dict[int, Subscription] = {}
        self._runtimes: dict[tuple, SharedRuntime] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------

    @property
    def subscriptions(self) -> dict[int, Subscription]:
        """Live subscriptions by id (read-only view by convention)."""
        return self._subscriptions

    @property
    def runtimes(self) -> dict[tuple, SharedRuntime]:
        """Shared pattern runtimes by share key (read-only by convention)."""
        return self._runtimes

    def subscribe(self, pattern: Pattern, max_queue: int = 1024) -> Subscription:
        """Register a standing query; returns its subscription handle.

        If an identical pattern (same :meth:`Pattern.share_key` — for
        compiled patterns the canonical ``unparse`` source) is already
        subscribed, the new subscription **joins its shared runtime**:
        the pattern is evaluated once per epoch regardless of how many
        subscribers listen, and each match is broadcast to every member
        queue.  A late joiner shares the runtime's state from its own
        subscribe time forward.  Otherwise the pattern is primed from
        the live index so threshold patterns count ongoing episodes from
        their true start.
        """
        return self._register(pattern, max_queue)

    def _register(
        self,
        pattern: Pattern,
        max_queue: int,
        sub_id: int | None = None,
        durable: bool = False,
    ) -> Subscription:
        key = pattern.share_key()
        runtime = self._runtimes.get(key) if key is not None else None
        if runtime is None:
            pattern.prime(self.index, self.last_epoch)
            rkey = key if key is not None else ("unique", self._next_id, id(pattern))
            runtime = SharedRuntime(rkey, pattern, describe_pattern(pattern))
            self._runtimes[rkey] = runtime
        sid = self._next_id if sub_id is None else sub_id
        self._next_id = max(self._next_id, sid + 1)
        sub = Subscription(sid, runtime.pattern, max_queue)
        sub.runtime = runtime
        sub.durable = durable
        runtime.members[sid] = sub
        self._subscriptions[sid] = sub
        self.stats.subscriptions_opened += 1
        return sub

    def unsubscribe(self, sub_id: int) -> bool:
        """Drop a subscription; returns whether it existed.

        The last member leaving a shared runtime retires the runtime (its
        pattern state is discarded; a fresh subscriber re-primes).
        """
        sub = self._subscriptions.pop(sub_id, None)
        if sub is None:
            return False
        runtime = sub.runtime
        if runtime is not None:
            runtime.members.pop(sub_id, None)
            if not runtime.members:
                self._runtimes.pop(runtime.key, None)
        self.stats.subscriptions_closed += 1
        return True

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------

    def publish(self, epoch: int, messages: list[EventMessage]) -> int:
        """Apply one epoch's merged output; returns notifications queued.

        Extends the live index, evaluates each **shared runtime** once
        against the (expanded) batch, and broadcasts matches to every
        member queue with drop-oldest backpressure.  Subscriptions that
        overflow ``evict_after`` publishes in a row are evicted (their
        notices land in :attr:`evicted` for the server to deliver).
        """
        start = time.perf_counter()
        if self._expander is not None:
            batch: list[EventMessage] = []
            for msg in messages:
                batch.extend(self._expander.feed(msg))
            batch.extend(self._expander.flush())
        else:
            batch = list(messages)
        self.index.extend(batch)
        self.last_epoch = epoch
        self.stats.epochs_published += 1
        self.stats.messages_published += len(batch)

        queued = 0
        self.evicted = []
        for runtime in list(self._runtimes.values()):
            notes = runtime.pattern.evaluate(epoch, batch, self.index)
            runtime.evaluations += 1
            self.stats.pattern_evaluations += 1
            if not notes:
                continue
            overflowed: list[Subscription] = []
            for sub in runtime.members.values():
                queued += len(notes)
                dropped = sub.push(notes)
                if not dropped:
                    sub.overflow_streak = 0
                    continue
                sub.overflow_streak += 1
                self.stats.notifications_dropped += dropped
                self.quarantine.warn(
                    WarningKind.SUBSCRIPTION_OVERFLOW,
                    epoch,
                    detail=(
                        f"subscription {sub.sub_id} queue full "
                        f"({sub.max_queue}); dropped {dropped} oldest; "
                        f"pattern {runtime.canonical!r} "
                        f"({len(runtime.members)} subscriber(s))"
                    ),
                )
                if (
                    self.evict_after
                    and not sub.durable
                    and sub.overflow_streak >= self.evict_after
                ):
                    overflowed.append(sub)
            for sub in overflowed:
                self._evict(sub, epoch)
        self.stats.observe_publish(time.perf_counter() - start)
        return queued

    def _evict(self, sub: Subscription, epoch: int) -> None:
        """Second backpressure tier: remove a persistently slow consumer."""
        runtime = sub.runtime
        canonical = runtime.canonical if runtime is not None else "?"
        members = len(runtime.members) if runtime is not None else 0
        detail = (
            f"subscription {sub.sub_id} evicted after {sub.overflow_streak} "
            f"consecutive overflowing epochs ({sub.dropped} dropped total); "
            f"pattern {canonical!r} ({members} subscriber(s))"
        )
        self.unsubscribe(sub.sub_id)
        self.stats.subscriptions_evicted += 1
        self.quarantine.warn(WarningKind.SUBSCRIPTION_EVICTED, epoch, detail=detail)
        self.evicted.append(
            (
                sub.sub_id,
                Notification(
                    kind=NOTIFY_SUBSCRIPTION_EVICTED,
                    epoch=epoch,
                    value=sub.dropped,
                    detail=detail,
                ),
            )
        )

    def drain(self, sub_id: int, limit: int | None = None) -> list[Notification]:
        """Consume queued notifications for one subscription."""
        sub = self._subscriptions.get(sub_id)
        if sub is None:
            return []
        out = sub.drain(limit)
        self.stats.notifications_delivered += len(out)
        return out

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def dump_subscriptions(self) -> bytes:
        """Serialize the subscription registry for restart re-arming.

        Compiled patterns persist as their **canonical source** (the
        ``repro.sase.unparse`` fixpoint), legacy catalogue patterns as
        their spec fields; either re-compiles to the same share key on
        restore, so restored duplicates coalesce back into shared
        runtimes.  Pattern *state* is not persisted — restored patterns
        re-prime from the restored server's live index.
        """
        entries = []
        for sub in self._subscriptions.values():
            spec = sub.pattern.spec()
            entry: dict = {"id": sub.sub_id, "max_queue": sub.max_queue}
            if spec.kind == PATTERN_SASE:
                source = getattr(sub.pattern, "canonical_source", None) or spec.source
                if not source:
                    continue  # unspeakable pattern (custom render); skip
                entry["kind"] = PATTERN_SASE
                entry["source"] = source
            else:
                entry["kind"] = spec.kind
                entry["obj"] = spec.obj.key() if spec.obj is not None else 0
                entry["place"] = spec.place
                entry["k"] = spec.k
            entries.append(entry)
        doc = {"version": SUBSCRIPTIONS_VERSION, "subscriptions": entries}
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    def restore_subscriptions(self, data: bytes) -> int:
        """Re-arm subscriptions from :meth:`dump_subscriptions` output.

        Restored subscriptions keep their original ids (the id counter
        advances past them) and are marked **durable**: they are exempt
        from slow-consumer eviction until a consumer reconnects, since a
        just-restarted server has no connected consumers at all.
        Returns the number of subscriptions restored.
        """
        doc = json.loads(data.decode("utf-8"))
        version = doc.get("version")
        if version != SUBSCRIPTIONS_VERSION:
            raise ValueError(f"unsupported subscription snapshot version {version!r}")
        restored = 0
        for entry in doc.get("subscriptions", []):
            kind = entry["kind"]
            if kind == PATTERN_SASE:
                spec = PatternSpec(PATTERN_SASE, source=entry["source"])
            else:
                obj_key = entry.get("obj", 0)
                spec = PatternSpec(
                    kind,
                    obj=TagId.from_key(obj_key) if obj_key else None,
                    place=entry.get("place"),
                    k=entry.get("k", 0),
                )
            pattern = pattern_from_spec(spec)
            self._register(
                pattern, entry["max_queue"], sub_id=entry["id"], durable=True
            )
            restored += 1
        return restored

    # ------------------------------------------------------------------
    # one-shot queries
    # ------------------------------------------------------------------

    def timed_query(self, fn: Callable, *args):
        """Run one point query against the live index, recording latency."""
        start = time.perf_counter()
        try:
            return fn(*args)
        finally:
            self.stats.observe_query(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Serving counters as a :mod:`repro.obs` snapshot.

        Derived from :class:`ServingStats` on demand (no double
        bookkeeping on the publish path); the latency histograms' log₂-µs
        buckets map directly onto the obs histogram's exponent keys.
        """
        s = self.stats

        def counter(name: str, value) -> dict:
            return {"name": name, "kind": "counter", "labels": {}, "value": value}

        def gauge(name: str, value) -> dict:
            return {"name": name, "kind": "gauge", "labels": {}, "value": value}

        series = [
            counter("spire_serving_epochs_published_total", s.epochs_published),
            counter("spire_serving_messages_published_total", s.messages_published),
            counter("spire_serving_notifications_delivered_total", s.notifications_delivered),
            counter("spire_serving_notifications_dropped_total", s.notifications_dropped),
            counter("spire_serving_subscriptions_opened_total", s.subscriptions_opened),
            counter("spire_serving_subscriptions_closed_total", s.subscriptions_closed),
            counter("spire_serving_evictions_total", s.subscriptions_evicted),
            counter("spire_serving_pattern_evaluations_total", s.pattern_evaluations),
            counter("spire_serving_queries_total", s.queries_served),
            gauge("spire_serving_active_subscriptions", s.active_subscriptions),
            gauge("spire_serving_shared_runtimes", len(self._runtimes)),
            gauge(
                "spire_serving_queued_notifications",
                sum(len(sub.queue) for sub in self._subscriptions.values()),
            ),
            {
                "name": "spire_serving_query_latency_microseconds",
                "kind": "histogram",
                "labels": {},
                "buckets": {str(b): n for b, n in sorted(s.latency_buckets.items())},
                "sum": s.query_seconds * 1e6,
                "count": s.queries_served,
            },
            {
                "name": "spire_serving_publish_latency_microseconds",
                "kind": "histogram",
                "labels": {},
                "buckets": {str(b): n for b, n in sorted(s.publish_buckets.items())},
                "sum": s.publish_seconds * 1e6,
                "count": s.epochs_published,
            },
        ]
        # aggregate compiled-pattern (repro.sase) runtime counters across
        # shared runtimes (NOT subscriptions — members share one evaluator);
        # duck-typed so the engine never imports repro.sase
        sase_totals = {
            "active_instances": 0,
            "partitions": 0,
            "matches": 0,
            "kills": 0,
            "prunes": 0,
            "compile_seconds": 0.0,
        }
        compiled_count = 0
        for runtime in self._runtimes.values():
            sase = getattr(runtime.pattern, "sase_stats", None)
            if sase is None:
                continue
            compiled_count += 1
            for key in sase_totals:
                sase_totals[key] += sase.get(key, 0)
        series.extend(
            [
                gauge("spire_sase_compiled_patterns", compiled_count),
                gauge("spire_sase_active_instances", sase_totals["active_instances"]),
                gauge("spire_sase_partitions", sase_totals["partitions"]),
                counter("spire_sase_matches_total", sase_totals["matches"]),
                counter("spire_sase_kills_total", sase_totals["kills"]),
                counter("spire_sase_prunes_total", sase_totals["prunes"]),
                counter(
                    "spire_sase_compile_seconds_total", sase_totals["compile_seconds"]
                ),
            ]
        )
        help_text = {
            "spire_serving_epochs_published_total": "Epochs fed to the standing-query engine",
            "spire_serving_messages_published_total": "Expanded event messages published",
            "spire_serving_notifications_delivered_total": "Notifications drained to subscribers",
            "spire_serving_notifications_dropped_total": "Notifications dropped by bounded queues",
            "spire_serving_subscriptions_opened_total": "Subscriptions opened",
            "spire_serving_subscriptions_closed_total": "Subscriptions closed",
            "spire_serving_evictions_total": "Slow-consumer subscriptions evicted",
            "spire_serving_pattern_evaluations_total": "Shared-runtime pattern evaluations",
            "spire_serving_queries_total": "One-shot queries served",
            "spire_serving_active_subscriptions": "Currently active subscriptions",
            "spire_serving_shared_runtimes": "Distinct shared pattern runtimes",
            "spire_serving_queued_notifications": "Notifications waiting in subscription queues",
            "spire_serving_query_latency_microseconds": "One-shot query latency (log2-bucketed)",
            "spire_serving_publish_latency_microseconds": "Per-epoch publish latency (log2-bucketed)",
            "spire_sase_compiled_patterns": "Shared runtimes running compiled patterns",
            "spire_sase_active_instances": "Live partial matches across compiled patterns",
            "spire_sase_partitions": "Active instance-stack partitions across compiled patterns",
            "spire_sase_matches_total": "Pattern matches emitted by compiled patterns",
            "spire_sase_kills_total": "Partial matches killed by negation edges",
            "spire_sase_prunes_total": "Partial matches pruned at window expiry",
            "spire_sase_compile_seconds_total": "Time spent compiling pattern source",
        }
        return {"series": series, "help": help_text}

"""Inference parameters of Sections IV-A and IV-B.

Defaults follow Section VI-B: after the sensitivity study the paper fixes
``S = 32``, ``alpha = 0``, ``beta = 0.4``, ``gamma = 0.4``, ``theta = 1.25``.
The edge-pruning threshold defaults to 0.25 (§IV-C) and partial inference
restricts itself to the 1-hop subgraph (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class InferenceParams:
    """Tunable knobs of SPIRE's probabilistic interpretation.

    Attributes:
        history_size: ``S`` — number of epochs of co-location history kept
            per edge (Eq. 1).
        alpha: Zipf exponent weighting the co-location history (Eq. 1);
            ``alpha = 0`` weighs all remembered epochs equally, larger
            values emphasise recent epochs.
        beta: Partition of belief between recent co-location history
            (``beta``) and the last special-reader confirmation
            (``1 - beta``) in edge inference (Eq. 2).
        adaptive_beta: When true, ``beta`` is re-derived per node as the
            ratio of one-sided observations (only one of object/confirmed
            container seen) to all observations since the last confirmation
            — the simple adaptive heuristic evaluated in Expt 1.
        gamma: Weight of colors propagated through containment edges versus
            the node's own fading color in node inference (Eq. 3).
        theta: Decay exponent of the belief that an unobserved object is
            still at its last seen location (Eqs. 3–4).
        prune_threshold: Parent edges whose *unnormalised* Eq. 2 confidence
            falls below this are pruned during inference (§IV-C / Expt 6);
            ``0`` disables pruning.
        partial_hops: ``l`` — partial inference only visits nodes within
            this many hops of a colored node (§IV-D).
    """

    history_size: int = 32
    alpha: float = 0.0
    beta: float = 0.4
    adaptive_beta: bool = False
    gamma: float = 0.4
    theta: float = 1.25
    prune_threshold: float = 0.25
    partial_hops: int = 1

    def __post_init__(self) -> None:
        if self.history_size < 1:
            raise ValueError(f"history_size must be >= 1, got {self.history_size}")
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {self.beta}")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        if self.theta < 0:
            raise ValueError(f"theta must be >= 0, got {self.theta}")
        if self.prune_threshold < 0:
            raise ValueError(f"prune_threshold must be >= 0, got {self.prune_threshold}")
        if self.partial_hops < 1:
            raise ValueError(f"partial_hops must be >= 1, got {self.partial_hops}")

    def with_overrides(self, **kwargs) -> "InferenceParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

"""Checkpoint and restore of a running substrate.

A production SPIRE instance runs for days; crashing must not lose the graph
statistics, confirmations and compressor state that took hours to
accumulate.  :func:`save_checkpoint` / :func:`load_checkpoint` persist a
:class:`~repro.core.pipeline.Spire` instance so processing can resume at
the next epoch.

Two codecs share the file format's magic-sniffed envelope:

* ``"fast"`` (default) — the versioned, slots-aware binary encoder of
  :mod:`repro.core.fastcheckpoint`.  Field-batched flat sections, no
  recursive object walk; the only codec that survives production-scale
  graphs (pickling a ~6k-node graph's node↔edge reference chains exceeds
  CPython's recursion limit) and fast enough to run inside the epoch loop.
* ``"pickle"`` — the original whole-object pickle, kept for backward
  compatibility with existing checkpoint files and as a correctness oracle
  in tests.  Every state object is plain Python data owned by this
  library, and checkpoints are operator-written local files (the same
  trust domain as the process itself).

:func:`load_checkpoint` restores either format transparently; the per-codec
format versions guard against silently loading a checkpoint from an
incompatible library version.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import BinaryIO

from repro.core.pipeline import Spire

#: bump when the pickled object graph changes shape
#: (2: node/graph change-tracking slots + expiry heap, DESIGN.md §8)
CHECKPOINT_VERSION = 2

_MAGIC = b"SPIREckpt"
_MAGIC_FAST = b"SPIREfast"
assert len(_MAGIC) == len(_MAGIC_FAST)


class CheckpointError(RuntimeError):
    """Raised when a checkpoint cannot be written or restored."""


def dumps_spire(spire: Spire, codec: str = "fast") -> bytes:
    """Serialise ``spire`` to checkpoint bytes (magic + payload)."""
    if codec == "fast":
        from repro.core.fastcheckpoint import encode_spire

        return _MAGIC_FAST + encode_spire(spire)
    if codec == "pickle":
        payload = {"version": CHECKPOINT_VERSION, "spire": spire}
        return _MAGIC + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    raise ValueError(f"unknown checkpoint codec {codec!r}")


def loads_spire(data: bytes) -> Spire:
    """Restore a substrate from :func:`dumps_spire` bytes (either codec)."""
    magic = data[: len(_MAGIC)]
    body = data[len(_MAGIC) :]
    if magic == _MAGIC_FAST:
        return _decode_fast(body)
    if magic == _MAGIC:
        return _decode_pickle_body(body)
    raise CheckpointError("not a SPIRE checkpoint (bad magic)")


def save_checkpoint(
    spire: Spire, destination: str | Path | BinaryIO, codec: str = "fast"
) -> None:
    """Persist ``spire`` (graph, estimates, compressor, dedup state).

    Path destinations are written **atomically**: the payload goes to a
    temporary file in the same directory, is fsynced, and then replaces the
    destination with ``os.replace``.  A crash mid-write therefore leaves
    either the previous checkpoint or none — never a truncated file that
    would fail to restore after the next crash.
    """
    data = dumps_spire(spire, codec=codec)
    if hasattr(destination, "write"):
        destination.write(data)  # type: ignore[union-attr]
        return
    target = Path(destination)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fp:
            fp.write(data)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_checkpoint(source: str | Path | BinaryIO) -> Spire:
    """Restore a substrate saved by :func:`save_checkpoint` (either codec)."""
    if hasattr(source, "read"):
        return _read(source)  # type: ignore[arg-type]
    with Path(source).open("rb") as fp:
        return _read(fp)


def _read(fp: BinaryIO) -> Spire:
    magic = fp.read(len(_MAGIC))
    if magic == _MAGIC_FAST:
        return _decode_fast(fp.read())
    if magic != _MAGIC:
        raise CheckpointError("not a SPIRE checkpoint (bad magic)")
    try:
        payload = pickle.load(fp)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise CheckpointError(f"corrupt checkpoint: {exc}") from exc
    return _validate_pickle_payload(payload)


def _decode_pickle_body(body: bytes) -> Spire:
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint: {exc}") from exc
    return _validate_pickle_payload(payload)


def _validate_pickle_payload(payload: object) -> Spire:
    if not isinstance(payload, dict):
        raise CheckpointError("checkpoint payload is not a mapping")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version} incompatible with {CHECKPOINT_VERSION}"
        )
    spire = payload.get("spire")
    if not isinstance(spire, Spire):
        raise CheckpointError("checkpoint does not contain a Spire instance")
    return spire


def _decode_fast(body: bytes) -> Spire:
    from repro.core.fastcheckpoint import FastCheckpointError, decode_spire

    try:
        return decode_spire(body)
    except FastCheckpointError as exc:
        raise CheckpointError(str(exc)) from exc
    except Exception as exc:
        raise CheckpointError(f"corrupt fast checkpoint: {exc}") from exc

"""Error taxonomy of the pattern compiler.

Both error kinds derive from :class:`PatternError` (a ``ValueError``) so
callers at the protocol boundary — the serving server's subscribe
handler, the CLI's ``--subscribe`` validation — can catch one type and
forward the message verbatim as a compile-error reply.
"""

from __future__ import annotations


class PatternError(ValueError):
    """Base class for every pattern compilation failure."""


class PatternSyntaxError(PatternError):
    """The pattern text does not parse.

    Carries the offset of the offending token so messages can point at
    the exact spot: ``expected ')' at offset 17, got 'WHERE'``.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)
        self.offset = offset


class PatternSemanticError(PatternError):
    """The pattern parses but cannot be compiled to a runnable NFA.

    Examples: a predicate referencing an unknown binding, a trailing
    negation without a ``WITHIN`` window, a Kleene+ on a negated element.
    """

"""Anomaly-detection delay (Expt 4, Fig. 9(f)).

A vanished object counts as detected the first time the output stream
reports it missing at or after its removal epoch; the delay is the gap in
epochs.  Objects whose removal is never reported count against the
detection rate but not the mean delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.events.messages import EventKind, EventMessage
from repro.model.objects import TagId


@dataclass(frozen=True)
class DetectionReport:
    """Detection outcomes over a set of injected removals.

    Attributes:
        delays: Per-object detection delay in epochs (detected objects only).
        undetected: Objects never reported missing after their removal.
    """

    delays: dict[TagId, int]
    undetected: frozenset[TagId]

    @property
    def detection_rate(self) -> float:
        """Fraction of removals eventually reported missing."""
        total = len(self.delays) + len(self.undetected)
        return len(self.delays) / total if total else 0.0

    @property
    def mean_delay(self) -> float:
        """Mean detection delay in epochs over detected removals."""
        if not self.delays:
            return float("nan")
        return sum(self.delays.values()) / len(self.delays)

    @property
    def max_delay(self) -> int:
        """Largest detection delay observed (0 when nothing detected)."""
        return max(self.delays.values(), default=0)


def detection_delays(
    messages: Iterable[EventMessage],
    vanished: Mapping[TagId, int],
) -> DetectionReport:
    """Compute detection delays for ``vanished`` (tag -> removal epoch).

    ``messages`` is the full compressed output stream; only ``Missing``
    events participate.
    """
    first_missing: dict[TagId, int] = {}
    for msg in messages:
        if msg.kind is not EventKind.MISSING:
            continue
        tag = msg.obj
        removal = vanished.get(tag)
        if removal is None or msg.vs < removal:
            continue
        if tag not in first_missing or msg.vs < first_missing[tag]:
            first_missing[tag] = msg.vs

    delays = {tag: first_missing[tag] - epoch for tag, epoch in vanished.items() if tag in first_missing}
    undetected = frozenset(tag for tag in vanished if tag not in first_missing)
    return DetectionReport(delays=delays, undetected=undetected)

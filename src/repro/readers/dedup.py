"""Low-level deduplication of overlapping reader reports.

SPIRE runs on top of a device-level cleaning layer whose only required
functionality is *deduplication* (Section II, final paragraph): when nearby
readers both report a tag in the same epoch, the tag is assigned to the
reader that read it most recently.

Within an epoch, "most recently" is sub-epoch arrival order: readings are
ordered by ascending reader id and then list position, exactly the order
:meth:`repro.readers.stream.EpochReadings.readings` assigns its strictly
increasing ``seq`` numbers in.  Because ``seq`` strictly increases over
that traversal, the *last* occurrence of a tag always wins — so the
deduplicator processes the per-reader batches directly, without
materialising a ``Reading`` triplet per raw read.  Across epochs the
deduplicator remembers each tag's last assignment (consumed by zone
handoff; see :meth:`forget`).
"""

from __future__ import annotations

from repro.model.objects import TagId
from repro.readers.stream import EpochReadings


class Deduplicator:
    """Stateful per-tag deduplication across epochs.

    Usage::

        dedup = Deduplicator()
        clean = dedup.process(epoch_readings)   # one call per epoch
    """

    def __init__(self) -> None:
        self._last_reader: dict[TagId, int] = {}

    def process(self, epoch_readings: EpochReadings) -> EpochReadings:
        """Return a copy of ``epoch_readings`` with each tag reported once.

        The winning reader for a multiply-read tag is the one whose report
        arrived last within the epoch; the original input is not modified.
        Output tags keep their first-occurrence order (each winner list is
        ordered by when the tag was *first* reported, matching the
        insertion-order semantics of the winner map).
        """
        source = epoch_readings.by_reader
        # tag -> winning reader; later occurrences overwrite the value but
        # keep the tag's insertion position, preserving output order
        cached = epoch_readings._tag_map
        if cached is not None:
            # upstream already resolved winners (e.g. a prior dedup pass or
            # the coordinator's per-zone split); its insertion order is the
            # first-occurrence order we would recompute
            winner: dict[TagId, int] = cached
        elif len(source) == 1:
            # single reader: every tag trivially wins, in report order
            ((reader_id, tags),) = source.items()
            winner = dict.fromkeys(tags, reader_id)
        else:
            winner = {}
            for reader_id in sorted(source):
                tags = source[reader_id]
                for tag in tags:
                    winner[tag] = reader_id

        clean = EpochReadings(epoch=epoch_readings.epoch)
        out = clean.by_reader
        last = self._last_reader
        for tag, reader_id in winner.items():
            bucket = out.get(reader_id)
            if bucket is None:
                out[reader_id] = [tag]
            else:
                bucket.append(tag)
            last[tag] = reader_id
        clean.cache_tag_map(winner)
        return clean

    def forget(self, tag: TagId) -> None:
        """Drop sticky state for a departed tag (keeps memory bounded)."""
        self._last_reader.pop(tag, None)

    @property
    def tracked_tags(self) -> int:
        """Number of tags with sticky assignment state."""
        return len(self._last_reader)

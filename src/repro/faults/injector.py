"""Seeded, schedulable fault injection over a reading stream.

:class:`FaultInjector` wraps any iterable of
:class:`~repro.readers.stream.EpochReadings` and perturbs its *delivery*:
readers fall silent, whole epoch batches are dropped, delayed past later
batches, or delivered twice, and readings appear from reader ids no
deployment knows.  The output is an iterator of batches in **arrival
order** — which under delay faults is no longer epoch order — exactly the
transport the resilient front-end (:mod:`repro.faults.resilient`) has to
absorb.

All randomness comes from one ``numpy`` generator seeded at construction,
so a fault run is reproducible from ``(stream, schedule, seed)``.

Schedules are lists of fault specs; :func:`schedule_from_dict` builds one
from the JSON shape the ``chaos`` CLI subcommand accepts (see
``docs/FAULTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.model.objects import PackagingLevel, TagId
from repro.readers.stream import EpochReadings

__all__ = [
    "ReaderOutage",
    "DropBatches",
    "DelayBatches",
    "DuplicateBatches",
    "UnknownReaderReadings",
    "FaultSpec",
    "FaultInjector",
    "schedule_from_dict",
    "ALL_FAULT_KINDS",
]


@dataclass(frozen=True)
class ReaderOutage:
    """Reader ``reader_id`` reports nothing in ``[start, start + duration)``."""

    reader_id: int
    start: int
    duration: int


@dataclass(frozen=True)
class DropBatches:
    """Each batch in ``[start, end)`` is lost entirely with probability ``rate``."""

    rate: float
    start: int = 0
    end: int | None = None


@dataclass(frozen=True)
class DelayBatches:
    """Each batch in ``[start, end)`` is held back 1..``max_delay`` arrival
    slots with probability ``rate``, arriving after younger batches."""

    rate: float
    max_delay: int = 3
    start: int = 0
    end: int | None = None


@dataclass(frozen=True)
class DuplicateBatches:
    """Each batch in ``[start, end)`` is delivered twice with probability ``rate``."""

    rate: float
    start: int = 0
    end: int | None = None


@dataclass(frozen=True)
class UnknownReaderReadings:
    """With probability ``rate`` an epoch gains readings attributed to
    ``reader_id`` — an id no deployment maps.  The injected tags echo tags
    already present in the epoch when possible (a mis-routed report),
    otherwise fabricated item tags starting at ``serial_base``."""

    reader_id: int
    rate: float
    start: int = 0
    end: int | None = None
    serial_base: int = 900_000


FaultSpec = (
    ReaderOutage | DropBatches | DelayBatches | DuplicateBatches | UnknownReaderReadings
)

#: every fault kind the injector implements (tests iterate this)
ALL_FAULT_KINDS: tuple[type, ...] = (
    ReaderOutage,
    DropBatches,
    DelayBatches,
    DuplicateBatches,
    UnknownReaderReadings,
)


def _in_window(epoch: int, start: int, end: int | None) -> bool:
    return epoch >= start and (end is None or epoch < end)


def _copy_batch(batch: EpochReadings) -> EpochReadings:
    return EpochReadings(
        epoch=batch.epoch,
        by_reader={rid: list(tags) for rid, tags in batch.by_reader.items()},
    )


class FaultInjector:
    """Applies a fault schedule to a reading stream.

    Iterating yields perturbed :class:`EpochReadings` in arrival order.
    The source batches are never mutated.
    """

    def __init__(
        self,
        stream: Iterable[EpochReadings],
        schedule: Sequence[FaultSpec],
        seed: int = 0,
    ) -> None:
        self._stream = stream
        self._schedule = list(schedule)
        self._rng = np.random.default_rng(seed)
        #: batches dropped by the schedule (epoch numbers), for reports
        self.dropped_epochs: list[int] = []
        #: batches delivered out of order (epoch numbers), for reports
        self.delayed_epochs: list[int] = []
        #: batches delivered twice (epoch numbers), for reports
        self.duplicated_epochs: list[int] = []

    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[EpochReadings]:
        # (release_slot, insertion_seq, batch) min-ordering via sorted scan;
        # the pending list stays tiny (bounded by in-flight delayed batches)
        pending: list[tuple[int, int, EpochReadings]] = []
        seq = 0
        slot = 0
        for batch in self._stream:
            slot += 1
            batch = self._apply_content_faults(batch)
            if batch is not None:
                delay = self._delay_for(batch.epoch)
                if delay > 0:
                    self.delayed_epochs.append(batch.epoch)
                    pending.append((slot + delay, seq, batch))
                    seq += 1
                    batch = None
                else:
                    yield batch
                    if self._duplicate(batch.epoch):
                        self.duplicated_epochs.append(batch.epoch)
                        yield _copy_batch(batch)
            # release delayed batches whose slot has come — after the current
            # batch (that is what makes them out of order), but on every slot
            # even if the current batch was dropped or held, so a batch
            # delayed d slots arrives at most d epochs behind the frontier
            pending, due = self._split_due(pending, slot)
            yield from due
        # end of stream: flush whatever is still in flight
        pending.sort(key=lambda item: (item[0], item[1]))
        for _slot, _seq, held in pending:
            yield held

    # ------------------------------------------------------------------

    def _split_due(
        self, pending: list[tuple[int, int, EpochReadings]], slot: int
    ) -> tuple[list[tuple[int, int, EpochReadings]], list[EpochReadings]]:
        due = sorted(
            (item for item in pending if item[0] <= slot),
            key=lambda item: (item[0], item[1]),
        )
        remaining = [item for item in pending if item[0] > slot]
        return remaining, [batch for _slot, _seq, batch in due]

    def _apply_content_faults(self, batch: EpochReadings) -> EpochReadings | None:
        """Outages, drops and unknown-reader injection for one batch."""
        epoch = batch.epoch
        copied = False
        for spec in self._schedule:
            if isinstance(spec, DropBatches) and _in_window(epoch, spec.start, spec.end):
                if self._rng.random() < spec.rate:
                    self.dropped_epochs.append(epoch)
                    return None
            elif isinstance(spec, ReaderOutage):
                if (
                    _in_window(epoch, spec.start, spec.start + spec.duration)
                    and spec.reader_id in batch.by_reader
                ):
                    if not copied:
                        batch = _copy_batch(batch)
                        copied = True
                    batch.by_reader.pop(spec.reader_id, None)
            elif isinstance(spec, UnknownReaderReadings) and _in_window(
                epoch, spec.start, spec.end
            ):
                if self._rng.random() < spec.rate:
                    if not copied:
                        batch = _copy_batch(batch)
                        copied = True
                    batch.add(spec.reader_id, self._ghost_tags(batch, spec))
        return batch

    def _ghost_tags(
        self, batch: EpochReadings, spec: UnknownReaderReadings
    ) -> list[TagId]:
        present = sorted(batch.tags_seen())
        if present:
            count = min(len(present), 3)
            picks = self._rng.choice(len(present), size=count, replace=False)
            return [present[i] for i in sorted(int(p) for p in picks)]
        serial = spec.serial_base + int(self._rng.integers(0, 1000))
        return [TagId(PackagingLevel.ITEM, serial)]

    def _delay_for(self, epoch: int) -> int:
        for spec in self._schedule:
            if isinstance(spec, DelayBatches) and _in_window(epoch, spec.start, spec.end):
                if self._rng.random() < spec.rate:
                    return int(self._rng.integers(1, spec.max_delay + 1))
        return 0

    def _duplicate(self, epoch: int) -> bool:
        for spec in self._schedule:
            if isinstance(spec, DuplicateBatches) and _in_window(epoch, spec.start, spec.end):
                if self._rng.random() < spec.rate:
                    return True
        return False


# ---------------------------------------------------------------------------
# JSON schedule format (docs/FAULTS.md)
# ---------------------------------------------------------------------------

_KIND_TO_SPEC: dict[str, type] = {
    "reader_outage": ReaderOutage,
    "drop_batches": DropBatches,
    "delay_batches": DelayBatches,
    "duplicate_batches": DuplicateBatches,
    "unknown_reader": UnknownReaderReadings,
}


def schedule_from_dict(entries: Iterable[Mapping]) -> list[FaultSpec]:
    """Build a fault schedule from a list of ``{"kind": ..., ...}`` dicts.

    Unknown kinds and unexpected fields raise ``ValueError`` so a typo in a
    schedule file fails loudly instead of silently injecting nothing.
    """
    schedule: list[FaultSpec] = []
    for entry in entries:
        fields = dict(entry)
        kind = fields.pop("kind", None)
        spec_type = _KIND_TO_SPEC.get(kind)
        if spec_type is None:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {sorted(_KIND_TO_SPEC)}"
            )
        try:
            schedule.append(spec_type(**fields))
        except TypeError as exc:
            raise ValueError(f"bad fields for fault kind {kind!r}: {exc}") from exc
    return schedule

"""Baselines SPIRE is compared against in Section VI-D.

:mod:`repro.baselines.smurf` re-implements SMURF (Jeffery, Garofalakis,
Franklin — "Adaptive cleaning for RFID data streams", VLDB 2006), the
state-of-the-art per-tag adaptive smoothing cleaner, extended exactly as
the paper describes: static reader locations turn smoothed readings into
object-location estimates, and a level-1 range compressor turns those into
a compressed event stream.  SMURF has no notion of containment.
"""

from repro.baselines.smurf import SmurfParams, SmurfPipeline, SmurfTagState

__all__ = ["SmurfParams", "SmurfPipeline", "SmurfTagState"]

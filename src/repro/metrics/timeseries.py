"""Windowed time-series metrics.

Aggregate error rates hide dynamics — a warm-up transient, a degradation
after an anomaly burst, periodic error spikes on the complete-inference
grid.  :class:`WindowedSeries` accumulates per-epoch counts into fixed
windows and exposes the resulting series, feeding operator dashboards and
the reproduction report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class WindowedSeries:
    """Ratio series aggregated over fixed-width epoch windows.

    Attributes:
        window: Window width in epochs.
        label: What the ratio measures (for rendering).
    """

    window: int
    label: str = ""
    _hits: dict[int, int] = field(default_factory=dict)
    _totals: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1 epoch, got {self.window}")

    def record(self, epoch: int, hits: int, total: int) -> None:
        """Add ``hits`` out of ``total`` observations at ``epoch``."""
        if total < 0 or hits < 0 or hits > total:
            raise ValueError(f"invalid counts: {hits}/{total}")
        bucket = epoch // self.window
        self._hits[bucket] = self._hits.get(bucket, 0) + hits
        self._totals[bucket] = self._totals.get(bucket, 0) + total

    def ratios(self) -> list[tuple[int, float]]:
        """(window start epoch, ratio) for every non-empty window, in order."""
        out = []
        for bucket in sorted(self._totals):
            total = self._totals[bucket]
            if total == 0:
                continue
            out.append((bucket * self.window, self._hits[bucket] / total))
        return out

    def values(self) -> list[float]:
        """Just the ratio values, window order."""
        return [ratio for _, ratio in self.ratios()]

    @property
    def overall(self) -> float:
        """Ratio across all windows combined."""
        total = sum(self._totals.values())
        return sum(self._hits.values()) / total if total else 0.0

    def __len__(self) -> int:
        return len(self._totals)


def sparkline(values: Iterable[float], lo: float | None = None, hi: float | None = None) -> str:
    """Render values as a unicode sparkline (▁▂▃▄▅▆▇█).

    ``lo``/``hi`` pin the scale; by default the data's own range is used
    (a flat series renders as all-middle blocks).
    """
    values = list(values)
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return blocks[3] * len(values)
    out = []
    for value in values:
        index = int((value - lo) / span * (len(blocks) - 1))
        out.append(blocks[max(0, min(len(blocks) - 1, index))])
    return "".join(out)


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 12,
) -> str:
    """Render one or more (x, y) series as an ASCII line chart.

    Each series gets a marker character; axes are annotated with the data
    ranges.  Intended for terminal reports (benchmarks, examples) where a
    plotting library would be overkill.
    """
    markers = "*o+x#@%&"
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in values:
            col = int((x - x_lo) / x_span * (width - 1))
            row = (height - 1) - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        prefix = f"{y_hi:8.3f} |" if row_index == 0 else (
            f"{y_lo:8.3f} |" if row_index == height - 1 else " " * 9 + "|"
        )
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_lo:<10.4g}{'':{max(0, width - 20)}}{x_hi:>10.4g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)

"""Fig. 9(f) — anomaly detection delay vs. theta (Expt 4).

Reproduces: mean delay between an unexpected removal and the first Missing
event reporting it, as theta varies, per shelf-reader frequency.  Expected
shape: higher theta decays the continued-presence belief faster and so
detects sooner; slow shelf readers need larger theta for a given delay
target, and their delays are quantised by the complete-inference cadence.

Detection is measured on level-1 output (level-2 deliberately suppresses
contained objects' Missing events; they reappear on decompression).
"""

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy
from repro.metrics.delay import detection_delays

from benchmarks._shared import Table, accuracy_config, get_sim, get_spire

THETAS = [0.35, 0.75, 1.0, 1.5, 2.0, 3.0]
SHELF_PERIODS = [10, 60]
ANOMALY_PERIOD = 100


def run_experiment() -> dict:
    curves: dict = {}
    for period in SHELF_PERIODS:
        config = accuracy_config(
            shelf_read_period=period, anomaly_period=ANOMALY_PERIOD
        )
        sim = get_sim(config)
        curves[period] = {}
        for theta in THETAS:
            report = get_spire(
                config,
                params=InferenceParams(theta=theta),
                compression_level=1,
                policies=(ScoringPolicy.ALL,),
                score=False,
            )
            detection = detection_delays(report.messages, sim.truth.vanished)
            curves[period][theta] = (
                detection.mean_delay,
                detection.detection_rate,
            )
    return curves


@pytest.mark.benchmark(group="fig9f")
def test_fig9f_detection_delay_vs_theta(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Fig. 9(f): anomaly detection delay (s) vs. theta",
        ["shelf period (s)"] + [f"t={t}" for t in THETAS] + ["detection rate @t=1.5"],
    )
    for period in SHELF_PERIODS:
        table.add(
            period,
            *(curves[period][t][0] for t in THETAS),
            curves[period][1.5][1],
        )
    table.show()

    for period in SHELF_PERIODS:
        delays = {t: curves[period][t][0] for t in THETAS}
        rates = {t: curves[period][t][1] for t in THETAS}
        # anomalies must actually be detected in the favourable theta range
        assert rates[1.5] > 0.6
        # higher theta detects at least as fast as the lowest theta
        assert delays[3.0] <= delays[0.35] + 1e-9
    # slower shelf readers wait much longer for the evidence to arrive when
    # the decay is slow (at high theta both converge to the reading cadence)
    assert curves[60][0.35][0] >= curves[10][0.35][0]

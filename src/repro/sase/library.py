"""The serving catalogue, re-expressed in the pattern language.

Each builder returns a :class:`~repro.sase.compiled.CompiledPattern`
whose source text encodes the legacy pattern's matching logic and whose
render function reproduces the legacy notification **byte for byte**
(same kind string, same fields, same detail text) — the equivalence
tests replay chaos-seeded streams through both implementations and
compare the encoded notification frames.

The six definitions double as worked examples of the language:

========================  =============================================
builder                   pattern sketch
========================  =============================================
``tail``                  ``SEQ(any e)`` + optional obj/place predicates
``object_watch``          ``SEQ(any e) WHERE e.obj == t OR e.container == t``
``place_watch``           ``SEQ(location e) WHERE e.place == p``
``dwell_exceeded``        ``SEQ(arrival a, !(departure | missing) d) ...
                          WITHIN k EPOCHS`` — negation-as-absence
``missing_overdue``       ``SEQ(missing m, !arrival a) ... WITHIN k``
``left_without_container``  ``SEQ((departure | missing) d) ONCE PER
                          EPOCH WHERE <index predicates at fire time>``
========================  =============================================
"""

from __future__ import annotations

from repro.events.messages import EventKind
from repro.model.objects import TagId
from repro.sase.compiled import CompiledPattern, compile_pattern
from repro.sase.runtime import Match
from repro.serving.patterns import (
    PATTERN_DWELL,
    PATTERN_LEFT_WITHOUT_CONTAINER,
    PATTERN_MISSING,
    PATTERN_OBJECT,
    PATTERN_PLACE,
    PATTERN_TAIL,
    NOTIFY_DWELL_EXCEEDED,
    NOTIFY_EVENT,
    NOTIFY_LEFT_WITHOUT_CONTAINER,
    NOTIFY_MISSING_OVERDUE,
    NOTIFY_OBJECT_EVENT,
    NOTIFY_PLACE_EVENT,
    Notification,
    PatternSpec,
)

_KIND_ORDINAL = {kind: ordinal for ordinal, kind in enumerate(EventKind)}


def _tag_literal(tag: TagId) -> str:
    return f"{tag.level.name.lower()}:{tag.serial}"


def _event_render(kind: str):
    """Render a single-event match the way ``_event_notification`` did."""

    def render(match: Match, index) -> Notification:
        view = match.bindings["e"]
        msg = view.msg
        return Notification(
            kind=kind,
            epoch=match.epoch,
            obj=msg.obj,
            place=msg.place,
            container=msg.container,
            value=_KIND_ORDINAL[msg.kind],
            detail=msg.kind.value,
        )

    return render


def tail(obj: TagId | None = None, place: int | None = None) -> CompiledPattern:
    """Live tail of the interpreted stream, optionally filtered."""
    clauses = []
    if obj is not None:
        literal = _tag_literal(obj)
        clauses.append(f"(e.obj == {literal} OR e.container == {literal})")
    if place is not None:
        clauses.append(f"e.place == {place}")
    source = "PATTERN SEQ(any e)"
    if clauses:
        source += " WHERE " + " AND ".join(clauses)
    pattern = compile_pattern(
        source, render=_event_render(NOTIFY_EVENT), notify_kind=NOTIFY_EVENT
    )
    pattern.spec_override = PatternSpec(PATTERN_TAIL, obj=obj, place=place)
    return pattern


def object_watch(obj: TagId) -> CompiledPattern:
    """Every event about one object — its live path/containment feed."""
    literal = _tag_literal(obj)
    source = f"PATTERN SEQ(any e) WHERE e.obj == {literal} OR e.container == {literal}"
    pattern = compile_pattern(
        source, render=_event_render(NOTIFY_OBJECT_EVENT), notify_kind=NOTIFY_OBJECT_EVENT
    )
    pattern.spec_override = PatternSpec(PATTERN_OBJECT, obj=obj)
    return pattern


def place_watch(place: int) -> CompiledPattern:
    """Every location event at one place (arrivals, departures, missing)."""
    source = f"PATTERN SEQ(location e) WHERE e.place == {place}"
    pattern = compile_pattern(
        source, render=_event_render(NOTIFY_PLACE_EVENT), notify_kind=NOTIFY_PLACE_EVENT
    )
    pattern.spec_override = PatternSpec(PATTERN_PLACE, place=place)
    return pattern


def dwell_exceeded(place: int, k: int) -> CompiledPattern:
    """An object stayed at ``place`` at least ``k`` epochs.

    The canonical negation-as-absence pattern: an arrival at the place,
    then *no* departure/missing for that object at that place within the
    window.  The match fires when the window elapses.
    """
    source = (
        f"PATTERN SEQ(arrival a, !(departure | missing) d) "
        f"WHERE a.place == {place} AND d.obj == a.obj AND d.place == {place} "
        f"WITHIN {k} EPOCHS "
        f"RETURN a.obj AS obj, a.vs AS since"
    )

    def render(match: Match, index) -> Notification:
        arrival = match.bindings["a"]
        since = arrival.msg.vs
        return Notification(
            kind=NOTIFY_DWELL_EXCEEDED,
            epoch=match.epoch,
            obj=arrival.msg.obj,
            place=place,
            value=match.epoch - since,
            detail=f"at L{place} since {since} (>= {k} epochs)",
        )

    pattern = compile_pattern(source, render=render, notify_kind=NOTIFY_DWELL_EXCEEDED)
    pattern.spec_override = PatternSpec(PATTERN_DWELL, place=place, k=k)
    return pattern


def missing_overdue(k: int) -> CompiledPattern:
    """An object stayed in reported-missing state for ``k`` epochs."""
    source = (
        f"PATTERN SEQ(missing m, !arrival a) "
        f"WHERE a.obj == m.obj "
        f"WITHIN {k} EPOCHS "
        f"RETURN m.obj AS obj, m.vs AS since"
    )

    def render(match: Match, index) -> Notification:
        report = match.bindings["m"]
        since = report.msg.vs
        place = report.msg.place if report.msg.place is not None else -1
        return Notification(
            kind=NOTIFY_MISSING_OVERDUE,
            epoch=match.epoch,
            obj=report.msg.obj,
            place=place if place >= 0 else None,
            value=match.epoch - since,
            detail=f"missing since {since} (>= {k} epochs)",
        )

    pattern = compile_pattern(source, render=render, notify_kind=NOTIFY_MISSING_OVERDUE)
    pattern.spec_override = PatternSpec(PATTERN_MISSING, k=k)
    return pattern


def left_without_container(place: int) -> CompiledPattern:
    """Containment anomaly: an object left ``place``, its container stayed.

    All the interesting predicates are *fire-time*: they consult the
    live index (``container(...)``, ``loc(...)``, ``now``), so the
    compiler pins them to the match epoch — exactly when the legacy
    pattern performed its lookups.
    """
    source = (
        f"PATTERN SEQ((departure | missing) d) ONCE PER EPOCH "
        f"WHERE d.place == {place} "
        f"AND loc(coalesce(container(d.obj, max(d.vs, d.left - 1)), "
        f"container(d.obj, d.left)), now) == {place} "
        f"AND loc(d.obj, now) != {place}"
    )

    def render(match: Match, index) -> Notification:
        view = match.bindings["d"]
        msg = view.msg
        left_at = int(msg.ve) if msg.kind is EventKind.END_LOCATION else msg.vs
        container = index.container_of(msg.obj, max(msg.vs, left_at - 1))
        if container is None:
            container = index.container_of(msg.obj, left_at)
        return Notification(
            kind=NOTIFY_LEFT_WITHOUT_CONTAINER,
            epoch=match.epoch,
            obj=msg.obj,
            place=place,
            container=container,
            detail=f"left L{place} at {left_at}; {container} stayed",
        )

    pattern = compile_pattern(
        source, render=render, notify_kind=NOTIFY_LEFT_WITHOUT_CONTAINER
    )
    pattern.spec_override = PatternSpec(PATTERN_LEFT_WITHOUT_CONTAINER, place=place)
    return pattern

"""Fan-out benchmark: 10k subscribers over a shared fan-out tree.

Backs the ``fanout`` section of ``BENCH_table3.json`` and the CI
fan-out gate.  Three phases over the Table III high-injection workload:

* **In-process fan-out** — ``subscribers`` standing queries spread over
  ``distinct`` pattern shapes replay the full workload.  The shared
  fan-out tree coalesces duplicate subscriptions into one
  :class:`~repro.serving.engine.SharedRuntime` per distinct pattern, so
  the per-epoch evaluation count must equal the runtime count —
  independent of the subscriber count.  Per-epoch ``publish`` latency is
  recorded into a :class:`repro.obs.metrics.Histogram` (log₂ buckets, so
  the payload carries the full distribution, not just summary points).
* **Shared-vs-unshared equivalence** — N duplicate subscribers on one
  shared engine against N independent single-subscription engines over
  the same stream; drained notifications must be byte-identical under
  :func:`repro.serving.protocol.encode_notification` while the shared
  side evaluates each pattern once instead of N times.
* **Sustained TCP queries under push load** — a server pumps the
  workload at full epoch rate to a batched-frame subscriber connection
  carrying ``tcp_subscribers`` subscriptions while a second connection
  issues one-shot queries back-to-back; the sustained query rate during
  the replay is the headline number (floor: 1k/s).
"""

from __future__ import annotations

import asyncio
import time

from repro.distributed import Coordinator, partition_by_location
from repro.experiments.table3 import (
    DEFAULT_CASES_PER_PALLET,
    DEFAULT_SEED,
    duration_for,
    scaling_zone_assignment,
    table3_config,
)
from repro.model.objects import PackagingLevel, TagId
from repro.obs.metrics import Histogram
from repro.serving.client import SpireClient
from repro.serving.engine import StandingQueryEngine
from repro.serving.patterns import (
    PATTERN_DWELL,
    PATTERN_MISSING,
    PATTERN_OBJECT,
    PATTERN_PLACE,
    PatternSpec,
    pattern_from_spec,
)
from repro.serving.protocol import encode_notification
from repro.serving.server import SpireServer, pump_coordinator
from repro.simulator.warehouse import WarehouseSimulator

#: acceptance floors recorded alongside the measurements
MIN_TCP_QUERIES_PER_S = 1_000
MIN_DISTINCT_PATTERNS = 100


def _distinct_specs(colors: list[int], count: int) -> list[PatternSpec]:
    """``count`` pairwise-distinct pattern specs cycling every legacy
    kind over the deployment's places — each spec is one shared runtime."""
    specs: list[PatternSpec] = []
    seen: set[tuple] = set()
    i = 0
    while len(specs) < count:
        place = colors[i % len(colors)]
        kind = i % 4
        if kind == 0:
            spec = PatternSpec(PATTERN_PLACE, place=place)
        elif kind == 1:
            spec = PatternSpec(PATTERN_DWELL, place=place, k=20 + (i % 7) * 5)
        elif kind == 2:
            spec = PatternSpec(PATTERN_MISSING, k=3 + i % 40)
        else:
            spec = PatternSpec(
                PATTERN_OBJECT, obj=TagId(PackagingLevel.ITEM, 1 + i)
            )
        i += 1
        key = (spec.kind, spec.obj, spec.place, spec.k)
        if key in seen:
            continue
        seen.add(key)
        specs.append(spec)
    return specs


def _workload(milestone: int, cases_per_pallet: int, seed: int):
    config = table3_config(
        cases_per_pallet, duration_for([milestone], cases_per_pallet), seed
    )
    sim = WarehouseSimulator(config).run()
    zones = partition_by_location(
        sim.layout.readers,
        scaling_zone_assignment(config.num_shelves),
        sim.layout.registry,
    )
    return config, sim, zones


def _fanout_phase(
    milestone: int,
    cases_per_pallet: int,
    seed: int,
    subscribers: int,
    distinct: int,
    max_queue: int,
    drain_every: int,
) -> dict:
    """Replay the workload under ``subscribers`` shared subscriptions."""
    config, sim, zones = _workload(milestone, cases_per_pallet, seed)
    coordinator = Coordinator(zones, checkpoint_interval=50)
    engine = StandingQueryEngine(expand_level2=True)
    colors = [loc.color for loc in sim.layout.registry.known_locations()]
    specs = _distinct_specs(colors, distinct)
    # fresh Pattern instance per subscriber: sharing must happen through
    # the share key, never through object identity
    subs = [
        engine.subscribe(pattern_from_spec(specs[i % distinct]), max_queue=max_queue)
        for i in range(subscribers)
    ]
    assert len(engine.runtimes) == distinct, (
        f"expected {distinct} shared runtimes, got {len(engine.runtimes)}"
    )

    publish_hist = Histogram()
    epochs = 0
    delivered = 0
    t_replay = time.perf_counter()
    for readings in sim.stream:
        result = coordinator.process_epoch(readings)
        with publish_hist.time():
            engine.publish(result.epoch, result.messages)
        epochs += 1
        if epochs % drain_every == 0:
            for sub in subs:
                delivered += len(engine.drain(sub.sub_id))
    replay_s = time.perf_counter() - t_replay
    for sub in subs:
        delivered += len(engine.drain(sub.sub_id))

    evaluations = engine.stats.pattern_evaluations
    return {
        "milestone": milestone,
        "epochs": epochs,
        "objects_indexed": len(engine.index.objects()),
        "subscribers": subscribers,
        "distinct_patterns": distinct,
        "shared_runtimes": len(engine.runtimes),
        "pattern_evaluations": evaluations,
        "evaluations_per_epoch": evaluations / max(epochs, 1),
        "evaluations_independent_of_subscribers": (
            evaluations == epochs * len(engine.runtimes)
        ),
        "notifications_delivered": engine.stats.notifications_delivered,
        "notifications_dropped": engine.stats.notifications_dropped,
        "notifications_drained": delivered,
        "subscriptions_evicted": engine.stats.subscriptions_evicted,
        "max_queue": max_queue,
        "drain_every": drain_every,
        "replay_s": replay_s,
        "publish_latency": {
            "count": publish_hist.count,
            "sum_s": publish_hist.sum,
            "mean_ms": 1e3 * publish_hist.sum / max(publish_hist.count, 1),
            "log2_buckets_s": {
                str(e): n for e, n in sorted(publish_hist.buckets.items())
            },
        },
    }


def _equivalence_phase(
    milestone: int, cases_per_pallet: int, seed: int, duplicates: int
) -> dict:
    """N duplicate subscribers (shared) vs N independent engines."""
    config, sim, zones = _workload(milestone, cases_per_pallet, seed)
    colors = [loc.color for loc in sim.layout.registry.known_locations()]
    specs = _distinct_specs(colors, 6)

    shared = StandingQueryEngine(expand_level2=True)
    shared_subs = [
        [shared.subscribe(pattern_from_spec(spec)) for _ in range(duplicates)]
        for spec in specs
    ]
    independent = [StandingQueryEngine(expand_level2=True) for _ in range(duplicates)]
    independent_subs = [
        [engine.subscribe(pattern_from_spec(spec)) for spec in specs]
        for engine in independent
    ]

    coordinator = Coordinator(zones, checkpoint_interval=50)
    epochs = 0
    for readings in sim.stream:
        result = coordinator.process_epoch(readings)
        messages = list(result.messages)
        shared.publish(result.epoch, messages)
        for engine in independent:
            engine.publish(result.epoch, messages)
        epochs += 1

    byte_identical = True
    for s, spec_subs in enumerate(shared_subs):
        reference = None
        for d, sub in enumerate(spec_subs):
            blob = b"".join(encode_notification(n) for n in sub.drain())
            unshared = b"".join(
                encode_notification(n) for n in independent_subs[d][s].drain()
            )
            if reference is None:
                reference = blob
            byte_identical &= blob == reference and blob == unshared

    return {
        "milestone": milestone,
        "epochs": epochs,
        "duplicates": duplicates,
        "patterns": len(specs),
        "byte_identical": byte_identical,
        "shared_evaluations": shared.stats.pattern_evaluations,
        "unshared_evaluations": sum(
            e.stats.pattern_evaluations for e in independent
        ),
        "evaluation_savings_x": (
            sum(e.stats.pattern_evaluations for e in independent)
            / max(shared.stats.pattern_evaluations, 1)
        ),
    }


async def _tcp_phase(
    milestone: int,
    cases_per_pallet: int,
    seed: int,
    tcp_subscribers: int,
    distinct: int,
    query_window: int = 128,
) -> dict:
    """One-shot query throughput sustained while the pump runs full-rate."""
    config, sim, zones = _workload(milestone, cases_per_pallet, seed)
    coordinator = Coordinator(zones, checkpoint_interval=50)
    colors = [loc.color for loc in sim.layout.registry.known_locations()]
    specs = _distinct_specs(colors, distinct)

    queries = 0
    async with SpireServer(expand_level2=True) as server:
        follower = await SpireClient.connect(server.host, server.port)
        querier = await SpireClient.connect(server.host, server.port)
        try:
            handles = [
                await follower.subscribe(specs[i % distinct], max_queue=64)
                for i in range(tcp_subscribers)
            ]
            pump = asyncio.ensure_future(
                pump_coordinator(server, coordinator, sim.stream)
            )

            def one_query(i: int):
                obj = TagId(PackagingLevel.ITEM, 1 + i % max(milestone, 1))
                at = server.engine.last_epoch or 0
                if i % 2 == 0:
                    return querier.location_of(obj, at)
                return querier.is_missing(obj, at)

            # requests are pipelined: keep a window of queries in flight so
            # every gap between (synchronous) epoch publishes drains a
            # whole batch, the access pattern of many independent dashboards
            window = query_window
            t0 = time.perf_counter()
            i = 0
            # at least a couple of windows even if the replay finishes
            # before the query loop gets scheduled
            while not pump.done() or i < 2 * window:
                await asyncio.gather(*(one_query(i + j) for j in range(window)))
                queries += window
                i += window
            elapsed = time.perf_counter() - t0
            pumped = await pump
            stats = await querier.stats()
        finally:
            await follower.close()
            await querier.close()

    return {
        "milestone": milestone,
        "epochs": pumped,
        "tcp_subscribers": tcp_subscribers,
        "distinct_patterns": distinct,
        "shared_runtimes": stats["shared_runtimes"],
        "batched_frames": follower.features != 0,
        "queries_during_replay": queries,
        "replay_s": elapsed,
        "queries_per_s": queries / max(elapsed, 1e-12),
        "subscriptions_evicted": stats["subscriptions_evicted"],
        "notifications_delivered": stats["notifications_delivered"],
    }


def run_fanout_bench(
    milestone: int = 12_000,
    cases_per_pallet: int = DEFAULT_CASES_PER_PALLET,
    seed: int = DEFAULT_SEED,
    subscribers: int = 10_000,
    distinct: int = 100,
    max_queue: int = 64,
    drain_every: int = 8,
    equivalence_milestone: int = 1_000,
    equivalence_duplicates: int = 4,
    tcp_milestone: int = 2_000,
    tcp_subscribers: int = 1_000,
) -> dict:
    """Run all three phases; returns the ``fanout`` payload for
    ``BENCH_table3.json``."""
    fanout = _fanout_phase(
        milestone, cases_per_pallet, seed, subscribers, distinct,
        max_queue, drain_every,
    )
    equivalence = _equivalence_phase(
        equivalence_milestone, cases_per_pallet, seed, equivalence_duplicates
    )
    tcp = asyncio.run(
        _tcp_phase(tcp_milestone, cases_per_pallet, seed, tcp_subscribers, distinct)
    )
    return {
        "fanout": fanout,
        "equivalence": equivalence,
        "tcp": tcp,
        "floors": {
            "min_tcp_queries_per_s": MIN_TCP_QUERIES_PER_S,
            "min_distinct_patterns": MIN_DISTINCT_PATTERNS,
        },
    }


def check_fanout(payload: dict) -> list[str]:
    """Validate a fanout payload against the acceptance floors.

    Returns human-readable violations (empty = pass).
    """
    problems: list[str] = []
    fanout = payload.get("fanout", {})
    equivalence = payload.get("equivalence", {})
    tcp = payload.get("tcp", {})
    if fanout.get("distinct_patterns", 0) < MIN_DISTINCT_PATTERNS:
        problems.append(
            f"only {fanout.get('distinct_patterns', 0)} distinct patterns "
            f"(floor: {MIN_DISTINCT_PATTERNS})"
        )
    if fanout.get("shared_runtimes") != fanout.get("distinct_patterns"):
        problems.append(
            f"shared runtimes {fanout.get('shared_runtimes')} != "
            f"distinct patterns {fanout.get('distinct_patterns')}"
        )
    if not fanout.get("evaluations_independent_of_subscribers", False):
        problems.append(
            f"pattern evaluations {fanout.get('pattern_evaluations')} != "
            f"epochs x runtimes "
            f"({fanout.get('epochs')} x {fanout.get('shared_runtimes')})"
        )
    if fanout.get("subscriptions_evicted", 0) != 0:
        problems.append(
            f"{fanout.get('subscriptions_evicted')} subscriber(s) evicted "
            f"during the in-process replay (expected none)"
        )
    if not equivalence.get("byte_identical", False):
        problems.append(
            "shared fan-out notifications diverged from independent engines"
        )
    if tcp.get("queries_per_s", 0.0) < MIN_TCP_QUERIES_PER_S:
        problems.append(
            f"sustained query throughput {tcp.get('queries_per_s', 0.0):.0f}/s "
            f"under push load is below the {MIN_TCP_QUERIES_PER_S}/s floor"
        )
    if tcp.get("subscriptions_evicted", 0) != 0:
        problems.append(
            f"{tcp.get('subscriptions_evicted')} subscriber(s) evicted "
            f"during the TCP replay (expected none)"
        )
    return problems

"""Serving-layer acceptance tests: live-index equivalence and e2e TCP.

Two load-bearing properties from the serving design (DESIGN.md §10):

* **Live-index equivalence** — after *every* epoch of a chaos-enabled
  simulation, the incrementally maintained index inside the standing-query
  engine answers every query identically to a fresh batch-built
  :class:`~repro.query.index.EventStreamIndex` over the same stream
  prefix (three chaos seeds).
* **End-to-end notification latency** — a TCP client subscribed to the
  compound containment-anomaly pattern receives the expected notification
  within one epoch of the triggering event, under a serial ``Coordinator``
  pump and a 2-worker ``ParallelCoordinator`` pump, including across a
  ``fail_zone``/``recover_zone`` cycle.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.distributed import Coordinator, ParallelCoordinator, Zone
from repro.faults import DelayBatches, DropBatches, FaultInjector, ResilientStream
from repro.model.locations import LocationKind, LocationRegistry
from repro.query.index import EventStreamIndex
from repro.readers.reader import Reader
from repro.serving.client import SpireClient
from repro.serving.engine import StandingQueryEngine
from repro.serving.patterns import (
    PATTERN_LEFT_WITHOUT_CONTAINER,
    PATTERN_PLACE,
    PatternSpec,
)
from repro.serving.server import SpireServer, pump_coordinator
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator

from tests.conftest import case, epoch_readings, item


# ---------------------------------------------------------------------------
# live-index equivalence (acceptance: property across >= 3 chaos seeds)
# ---------------------------------------------------------------------------


def _chaos_epochs(seed: int):
    config = SimulationConfig(
        duration=120,
        pallet_period=80,
        cases_per_pallet_min=2,
        cases_per_pallet_max=3,
        items_per_case=3,
        read_rate=0.85,
        shelf_read_period=10,
        num_shelves=2,
        shelving_time_mean=70,
        shelving_time_jitter=20,
        seed=seed,
    )
    sim = WarehouseSimulator(config).run()
    schedule = [DropBatches(rate=0.04), DelayBatches(rate=0.06, max_delay=3)]
    injector = FaultInjector(sim.stream, schedule, seed=seed + 1)
    resilient = ResilientStream(
        injector,
        max_delay=3,
        known_readers=[r.reader_id for r in sim.layout.readers],
    )
    return sim, list(resilient)


def _assert_indexes_equivalent(live: EventStreamIndex, fresh: EventStreamIndex, t: int):
    # full-history equivalence implies every point/path query agrees ...
    assert live._objects == fresh._objects
    # ... but the secondary indexes are maintained by a different code
    # path (incremental vs build-time), so also pin the queries they back
    objects = fresh.objects()
    assert live.objects() == objects
    places = {iv.value for obj in objects for iv in fresh.path(obj)}
    for place in places:
        assert live.objects_at(place, t) == fresh.objects_at(place, t)
        assert live.visitors(place, max(0, t - 7), t) == fresh.visitors(
            place, max(0, t - 7), t
        )
    for obj in objects:
        assert live.contents_of(obj, t) == fresh.contents_of(obj, t)
        assert live.is_missing(obj, t) == fresh.is_missing(obj, t)


@pytest.mark.parametrize("seed", [5, 17, 29])
def test_incremental_index_matches_fresh_build_every_epoch(seed):
    sim, epochs = _chaos_epochs(seed)
    zones = [
        Zone.build("inbound", [r for r in sim.layout.readers
                               if "shelf" not in r.location.name], sim.layout.registry),
        Zone.build("shelves", [r for r in sim.layout.readers
                               if "shelf" in r.location.name], sim.layout.registry),
    ]
    coordinator = Coordinator(zones)
    engine = StandingQueryEngine(expand_level2=True)
    published: list = []
    checked = 0
    for readings in epochs:
        result = coordinator.process_epoch(readings)
        engine.publish(result.epoch, result.messages)
        published.extend(result.messages)
        fresh = EventStreamIndex(published, decompress=True)
        _assert_indexes_equivalent(engine.index, fresh, result.epoch)
        checked += 1
    assert checked == len(epochs) and engine.index.objects()


def test_snapshot_restore_is_query_equivalent():
    sim, epochs = _chaos_epochs(seed=5)
    zones = [Zone.build("all", sim.layout.readers, sim.layout.registry)]
    coordinator = Coordinator(zones)
    engine = StandingQueryEngine(expand_level2=True)
    for readings in epochs:
        result = coordinator.process_epoch(readings)
        engine.publish(result.epoch, result.messages)
    from repro.query.snapshot import dumps_index, loads_index

    restored, meta = loads_index(dumps_index(engine.index))
    assert meta.messages_indexed == engine.index.messages_indexed
    _assert_indexes_equivalent(restored, engine.index, engine.last_epoch)


# ---------------------------------------------------------------------------
# end-to-end: containment anomaly over TCP, serial + parallel pumps
# ---------------------------------------------------------------------------


def _anomaly_site():
    """Two single-reader zones; both readers interrogate every epoch."""
    registry = LocationRegistry()
    dock = registry.create("dock", LocationKind.ENTRY_DOOR)
    yard = registry.create("yard", LocationKind.ENTRY_DOOR)
    reader_a = Reader(0, dock)
    reader_b = Reader(1, yard)
    zones = [
        Zone.build("zone-dock", [reader_a], registry),
        Zone.build("zone-yard", [reader_b], registry),
    ]
    return zones, dock, yard


def _anomaly_epochs(anomaly_epoch: int, total: int):
    """case 1 + item 1 sit at the dock; at ``anomaly_epoch`` the item is
    read at the yard while the case stays — the containment anomaly.
    item 9 keeps the yard zone busy throughout."""
    epochs = []
    for t in range(total):
        if t < anomaly_epoch:
            epochs.append(epoch_readings(t, {0: [case(1), item(1)], 1: [item(9)]}))
        else:
            epochs.append(epoch_readings(t, {0: [case(1)], 1: [item(9), item(1)]}))
    return epochs


async def _run_anomaly_scenario(make_coordinator, with_failover: bool):
    """Pump the anomaly scenario into a server; return (note, trigger, last)."""
    zones, dock, yard = _anomaly_site()
    coordinator = make_coordinator(zones)
    anomaly_epoch, total = 9, 13
    actions = None
    if with_failover:
        actions = {
            4: lambda: coordinator.fail_zone("zone-yard"),
            6: lambda: coordinator.recover_zone("zone-yard"),
        }
    try:
        async with SpireServer() as server:
            client = await SpireClient.connect(server.host, server.port)
            try:
                spec = PatternSpec(PATTERN_LEFT_WITHOUT_CONTAINER, place=dock.color)
                await client.subscribe(spec)
                await pump_coordinator(
                    server, coordinator, _anomaly_epochs(anomaly_epoch, total),
                    actions=actions,
                )
                sub_id, note = await client.next_notification(timeout=5)
                return note, anomaly_epoch, dock.color
            finally:
                await client.close()
    finally:
        if hasattr(coordinator, "close"):
            coordinator.close()


def _check_notification(note, anomaly_epoch, dock_color):
    assert note.kind == "left_without_container"
    assert note.obj == item(1)
    assert note.container == case(1)
    assert note.place == dock_color
    # within one epoch of the triggering event
    assert anomaly_epoch <= note.epoch <= anomaly_epoch + 1


class TestContainmentAnomalyEndToEnd:
    def test_serial_pump(self):
        note, trigger, color = asyncio.run(
            _run_anomaly_scenario(Coordinator, with_failover=False)
        )
        _check_notification(note, trigger, color)

    def test_serial_pump_with_failover_cycle(self):
        note, trigger, color = asyncio.run(
            _run_anomaly_scenario(
                lambda zones: Coordinator(zones, checkpoint_interval=2),
                with_failover=True,
            )
        )
        _check_notification(note, trigger, color)

    def test_parallel_pump(self):
        note, trigger, color = asyncio.run(
            _run_anomaly_scenario(
                lambda zones: ParallelCoordinator(zones, workers=2),
                with_failover=False,
            )
        )
        _check_notification(note, trigger, color)

    def test_parallel_pump_with_failover_cycle(self):
        note, trigger, color = asyncio.run(
            _run_anomaly_scenario(
                lambda zones: ParallelCoordinator(
                    zones, checkpoint_interval=2, workers=2
                ),
                with_failover=True,
            )
        )
        _check_notification(note, trigger, color)


class TestServerPlumbing:
    def test_one_shot_queries_and_stats_over_tcp(self):
        async def run():
            zones, dock, yard = _anomaly_site()
            coordinator = Coordinator(zones)
            async with SpireServer() as server:
                client = await SpireClient.connect(server.host, server.port)
                try:
                    await pump_coordinator(
                        server, coordinator, _anomaly_epochs(9, 13)
                    )
                    assert await client.location_of(item(1), 5) == dock.color
                    assert await client.location_of(item(1), 12) == yard.color
                    assert await client.container_of(item(1), 5) == case(1)
                    assert await client.contents_of(case(1), 5) == [item(1)]
                    assert item(1) in await client.objects_at(dock.color, 5)
                    visitors = await client.visitors(dock.color, 0, 12)
                    assert item(1) in visitors and case(1) in visitors
                    path = await client.path(item(1))
                    assert [iv.value for iv in path] == [dock.color, yard.color]
                    assert not await client.is_missing(item(1), 5)
                    stats = await client.stats()
                    assert stats["epochs_published"] == 13
                    assert stats["queries_served"] >= 8
                finally:
                    await client.close()

        asyncio.run(run())

    def test_unsubscribe_stops_events(self):
        async def run():
            zones, dock, _ = _anomaly_site()
            coordinator = Coordinator(zones)
            async with SpireServer() as server:
                client = await SpireClient.connect(server.host, server.port)
                try:
                    sub = await client.subscribe(
                        PatternSpec(PATTERN_PLACE, place=dock.color)
                    )
                    epochs = _anomaly_epochs(9, 13)
                    await pump_coordinator(server, coordinator, epochs[:2])
                    assert await sub.cancel()
                    # arrival events from epoch 0 were delivered
                    got = await client.next_notification(timeout=5)
                    assert got[0] == sub.id
                    # drain whatever was in flight before the unsubscribe
                    while not client.notifications.empty():
                        client.notifications.get_nowait()
                    await pump_coordinator(server, coordinator, epochs[2:4])
                    assert client.notifications.empty()
                    stats = await client.stats()
                    assert stats["active_subscriptions"] == 0
                finally:
                    await client.close()

        asyncio.run(run())

    def test_connection_drop_reaps_subscriptions(self):
        async def run():
            zones, dock, _ = _anomaly_site()
            coordinator = Coordinator(zones)
            async with SpireServer() as server:
                client = await SpireClient.connect(server.host, server.port)
                await client.subscribe(PatternSpec(PATTERN_PLACE, place=dock.color))
                assert server.engine.stats.active_subscriptions == 1
                await client.close()
                epochs = _anomaly_epochs(9, 13)
                await pump_coordinator(server, coordinator, epochs[:3])
                assert server.engine.stats.active_subscriptions == 0

        asyncio.run(run())

    def test_next_notification_times_out_when_quiet(self):
        """With nothing pumped, a bounded wait raises instead of hanging."""

        async def run():
            zones, dock, _ = _anomaly_site()
            async with SpireServer() as server:
                client = await SpireClient.connect(server.host, server.port)
                try:
                    await client.subscribe(PatternSpec(PATTERN_PLACE, place=dock.color))
                    with pytest.raises(asyncio.TimeoutError):
                        await client.next_notification(timeout=0.2)
                finally:
                    await client.close()

        asyncio.run(run())

    def test_server_error_reply(self):
        async def run():
            async with SpireServer() as server:
                client = await SpireClient.connect(server.host, server.port)
                try:
                    from repro.serving.client import ServingError

                    with pytest.raises(ServingError):
                        await client.subscribe(PatternSpec(99))
                finally:
                    await client.close()

        asyncio.run(run())

"""Table III sweep: per-epoch update/inference cost vs. graph size (Expt 5).

This module is the programmatic core behind both the ``repro-spire bench``
CLI subcommand and ``benchmarks/test_table3_speed.py``: it grows a
warehouse with the paper's high-injection workload (a pallet every
``2 * cases_per_pallet`` epochs, nothing leaving the shelves) and records
windowed per-epoch costs each time the graph crosses a milestone node
count.

Two cost views are recorded per milestone:

* ``avg_epoch_s`` — mean cost over *all* epochs of the window (partial
  inference most epochs, complete inference on the LCM grid): the paper's
  "can it keep up" number;
* ``complete_epoch_s`` — mean cost of the complete-inference epochs alone,
  the worst case that must still fit inside an epoch.

The resulting payload (:func:`run_table3` / :func:`write_payload`) is what
``BENCH_table3.json`` holds: workload, machine identification, peak RSS,
the milestone rows, and — when a reference run is requested — before/after
rows plus speedups.  :func:`check_regression` compares a fresh payload
against a committed baseline with a relative tolerance, normalising away
machine-speed differences via the recorded :func:`calibrate` score so a CI
runner is compared fairly against the machine that produced the baseline.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import SimulationResult, WarehouseSimulator

#: default milestone node counts (the paper sweeps ~25k-175k; these keep a
#: full before/after sweep under a minute of wall clock)
DEFAULT_MILESTONES = (2_000, 4_000, 8_000, 12_000)
DEFAULT_CASES_PER_PALLET = 5
DEFAULT_SEED = 41

#: a milestone window only closes after this many complete-inference epochs,
#: so every ``complete_epoch_s`` averages at least two full scans
MIN_COMPLETES_PER_WINDOW = 2


def growth_per_epoch(cases_per_pallet: int) -> float:
    """Objects injected per epoch: a pallet (1 + cases*(items+1) objects)
    arrives every ``2 * cases_per_pallet`` epochs."""
    return (1 + cases_per_pallet * 21) / (2 * cases_per_pallet)


def table3_config(
    cases_per_pallet: int, duration: int, seed: int = DEFAULT_SEED
) -> SimulationConfig:
    """High-injection workload for Table III / Fig. 10 graph growth.

    The injection rate is chosen so the receiving belt (one case at a time,
    one epoch each) keeps up — cases_per_pallet/pallet_period must stay
    below 1 case/epoch or the dock queue (and the dock reader's quadratic
    edge-creation cost) grows without bound.
    """
    return SimulationConfig(
        duration=duration,
        pallet_period=2 * cases_per_pallet,
        cases_per_pallet_min=cases_per_pallet,
        cases_per_pallet_max=cases_per_pallet,
        items_per_case=20,
        read_rate=0.85,
        shelf_read_period=60,
        num_shelves=8,
        shelving_time_mean=10 * duration,  # nothing leaves: the graph grows
        shelving_time_jitter=0,
        belt_dwell=1,
        seed=seed,
    )


def duration_for(milestones: tuple[int, ...] | list[int], cases_per_pallet: int) -> int:
    """Trace length that comfortably reaches the largest milestone."""
    return int(max(milestones) / growth_per_epoch(cases_per_pallet)) + 200


@dataclass(frozen=True)
class MilestoneCost:
    """Windowed cost figures recorded when the graph crosses one milestone."""

    milestone: int
    nodes: int
    edges: int
    epoch: int
    epochs_in_window: int
    avg_update_s: float
    avg_inference_s: float
    avg_epoch_s: float
    complete_epoch_s: float


def run_sweep(
    sim: SimulationResult,
    milestones: tuple[int, ...] | list[int],
    params: InferenceParams | None = None,
    incremental: bool = True,
    metrics=None,
) -> dict:
    """Run one pipeline over ``sim`` and window costs at each milestone.

    Returns ``{"milestones": [MilestoneCost...], "messages": int,
    "cache_hits": int, "cache_misses": int, "total_s": float,
    "final_nodes": int, "final_edges": int}``.

    ``metrics`` (an optional :class:`repro.obs.MetricRegistry`) attaches
    telemetry to the swept pipeline — the bench CLI's ``--metrics-json``;
    the default benchmark path stays un-instrumented.
    """
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    spire = Spire(
        deployment,
        params or InferenceParams(),
        compression_level=2,
        incremental=incremental,
        metrics=metrics,
    )
    pending = sorted(milestones)
    rows: list[MilestoneCost] = []
    win_update = win_inference = win_wall = 0.0
    win_epochs = completes = 0
    comp_wall = 0.0
    comp_n = 0
    messages = 0
    started = time.perf_counter()
    for readings in sim.stream:
        t0 = time.perf_counter()
        output = spire.process_epoch(readings)
        wall = time.perf_counter() - t0
        messages += len(output.messages)
        win_update += output.update_seconds
        win_inference += output.inference_seconds
        win_wall += wall
        win_epochs += 1
        if output.complete:
            completes += 1
            comp_wall += wall
            comp_n += 1
        nodes = spire.graph.node_count
        if pending and nodes >= pending[0] and completes >= MIN_COMPLETES_PER_WINDOW:
            rows.append(
                MilestoneCost(
                    milestone=pending.pop(0),
                    nodes=nodes,
                    edges=spire.graph.edge_count,
                    epoch=readings.epoch,
                    epochs_in_window=win_epochs,
                    avg_update_s=win_update / win_epochs,
                    avg_inference_s=win_inference / win_epochs,
                    avg_epoch_s=win_wall / win_epochs,
                    complete_epoch_s=comp_wall / max(comp_n, 1),
                )
            )
            win_update = win_inference = win_wall = 0.0
            win_epochs = completes = comp_n = 0
            comp_wall = 0.0
    return {
        "milestones": rows,
        "messages": messages,
        "cache_hits": spire.inference.cache_hits,
        "cache_misses": spire.inference.cache_misses,
        "total_s": time.perf_counter() - started,
        "final_nodes": spire.graph.node_count,
        "final_edges": spire.graph.edge_count,
    }


# ---------------------------------------------------------------------------
# payload assembly
# ---------------------------------------------------------------------------


def calibrate(iterations: int = 2_000_000) -> float:
    """Seconds for a fixed pure-Python spin — a machine-speed yardstick.

    Recorded in every payload; :func:`check_regression` uses the ratio of
    two payloads' calibration scores to compare runs from different
    machines (a CI runner vs. the laptop that committed the baseline) on a
    common footing.
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(iterations):
        acc += i & 7
    return time.perf_counter() - t0


def machine_info() -> dict:
    import os

    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes (ru_maxrss is
    kilobytes on Linux, bytes on macOS — normalised here)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return peak


def _sweep_payload(result: dict) -> dict:
    out = dict(result)
    out["milestones"] = [asdict(row) for row in result["milestones"]]
    return out


def run_table3(
    milestones: tuple[int, ...] | list[int] = DEFAULT_MILESTONES,
    cases_per_pallet: int = DEFAULT_CASES_PER_PALLET,
    seed: int = DEFAULT_SEED,
    compare_full: bool = False,
    params: InferenceParams | None = None,
    metrics=None,
) -> dict:
    """The full Table III benchmark: sweep, machine info, optional reference.

    With ``compare_full`` the same trace is also run through the full-scan
    pipeline (``incremental=False`` — identical output, no decision cache)
    and per-milestone speedups are attached.  ``metrics`` instruments the
    incremental sweep only (the full-scan reference stays clean).
    """
    config = table3_config(cases_per_pallet, duration_for(milestones, cases_per_pallet), seed)
    sim = WarehouseSimulator(config).run()
    payload: dict = {
        "workload": {
            "milestones": list(milestones),
            "cases_per_pallet": cases_per_pallet,
            "duration": config.duration,
            "seed": seed,
            "growth_per_epoch": growth_per_epoch(cases_per_pallet),
        },
        "machine": machine_info(),
        "calibration_s": calibrate(),
        "incremental": _sweep_payload(
            run_sweep(sim, milestones, params, incremental=True, metrics=metrics)
        ),
    }
    if compare_full:
        payload["full_scan"] = _sweep_payload(run_sweep(sim, milestones, params, incremental=False))
        payload["speedup_vs_full_scan"] = _speedups(
            payload["full_scan"]["milestones"], payload["incremental"]["milestones"]
        )
    payload["peak_rss_kb"] = peak_rss_kb()
    return payload


def _speedups(before_rows: list[dict], after_rows: list[dict]) -> list[dict]:
    by_milestone = {row["milestone"]: row for row in before_rows}
    out = []
    for after in after_rows:
        before = by_milestone.get(after["milestone"])
        if before is None:
            continue
        out.append(
            {
                "milestone": after["milestone"],
                "avg_epoch": before["avg_epoch_s"] / max(after["avg_epoch_s"], 1e-12),
                "complete_epoch": before["complete_epoch_s"]
                / max(after["complete_epoch_s"], 1e-12),
            }
        )
    return out


def write_payload(payload: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# regression gating
# ---------------------------------------------------------------------------


def check_regression(
    current: dict, baseline: dict, max_regression: float = 0.25
) -> list[str]:
    """Compare a fresh payload against a committed baseline payload.

    Per shared milestone, the *calibration-normalised* ``avg_epoch_s`` may
    exceed the baseline's by at most ``max_regression`` (fractional).
    Normalisation divides each run's cost by its own :func:`calibrate`
    score, so a slower CI runner does not read as a code regression and a
    faster one does not mask a real regression.

    Returns a list of human-readable violations (empty = pass).
    """
    problems: list[str] = []
    cur_cal = current.get("calibration_s") or 1.0
    base_cal = baseline.get("calibration_s") or 1.0
    base_rows = {
        row["milestone"]: row for row in baseline["incremental"]["milestones"]
    }
    for row in current["incremental"]["milestones"]:
        base = base_rows.get(row["milestone"])
        if base is None:
            continue
        cur_norm = row["avg_epoch_s"] / cur_cal
        base_norm = base["avg_epoch_s"] / base_cal
        if cur_norm > base_norm * (1.0 + max_regression):
            problems.append(
                f"milestone {row['milestone']}: normalised avg-epoch cost "
                f"{cur_norm:.3f} exceeds baseline {base_norm:.3f} "
                f"by more than {max_regression:.0%}"
            )
    return problems


def load_payload(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# multi-worker scaling sweep (docs/SCALING.md)
# ---------------------------------------------------------------------------

#: worker counts recorded in the scaling section of BENCH_table3.json
DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)
DEFAULT_CHECKPOINT_INTERVAL = 50


def scaling_zone_assignment(num_shelves: int = 8) -> dict[str, list[str]]:
    """Zone layout for the scaling sweep: inbound + one zone per shelf +
    outbound, so an 8-shelf warehouse yields 10 zones (enough to occupy 8
    workers)."""
    assignment: dict[str, list[str]] = {"inbound": ["entry-door", "receiving-belt"]}
    for i in range(num_shelves):
        assignment[f"shelf-{i + 1:02d}"] = [f"shelf-{i + 1}"]
    assignment["outbound"] = ["packaging-area", "exit-belt", "exit-door"]
    return assignment


def run_coordinator_sweep(
    sim: SimulationResult,
    milestones: tuple[int, ...] | list[int],
    workers: int | None = None,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    checkpoint_codec: str = "fast",
    params: InferenceParams | None = None,
) -> dict:
    """Run the Table III trace through the zone coordinator and window
    per-epoch wall cost at tracked-object milestones.

    ``workers=None`` runs the serial in-process :class:`Coordinator`;
    otherwise a :class:`ParallelCoordinator` with that many worker
    processes.  Returns milestone rows plus the SHA-256 of the merged
    event stream — the digest is the cross-configuration determinism
    receipt (every row of a scaling sweep must report the same digest).
    """
    import hashlib

    from repro.distributed import (
        Coordinator,
        ParallelCoordinator,
        partition_by_location,
    )
    from repro.events.codec import encode_stream

    zones = partition_by_location(
        sim.layout.readers,
        scaling_zone_assignment(sim.config.num_shelves),
        sim.layout.registry,
        params=params,
    )
    if workers is None:
        coordinator = Coordinator(
            zones,
            checkpoint_interval=checkpoint_interval,
            checkpoint_codec=checkpoint_codec,
        )
    else:
        coordinator = ParallelCoordinator(
            zones,
            checkpoint_interval=checkpoint_interval,
            checkpoint_codec=checkpoint_codec,
            workers=workers,
        )
    # whole-object pickling recurses through node<->edge chains; the legacy
    # codec needs head-room on production-scale graphs
    old_limit = sys.getrecursionlimit()
    if checkpoint_codec == "pickle":
        sys.setrecursionlimit(1_000_000)
    try:
        digest = hashlib.sha256()
        pending = sorted(milestones)
        rows: list[dict] = []
        win_wall = 0.0
        win_epochs = 0
        messages = 0
        started = time.perf_counter()
        for readings in sim.stream:
            t0 = time.perf_counter()
            result = coordinator.process_epoch(readings)
            win_wall += time.perf_counter() - t0
            win_epochs += 1
            messages += len(result.messages)
            digest.update(encode_stream(result.messages))
            if pending and coordinator.tracked_objects >= pending[0]:
                rows.append(
                    {
                        "milestone": pending.pop(0),
                        "objects": coordinator.tracked_objects,
                        "epoch": readings.epoch,
                        "epochs_in_window": win_epochs,
                        "avg_epoch_s": win_wall / win_epochs,
                    }
                )
                win_wall = 0.0
                win_epochs = 0
        total_s = time.perf_counter() - started
    finally:
        sys.setrecursionlimit(old_limit)
        if workers is not None:
            coordinator.close()
    out = {
        "workers": workers,
        "checkpoint_codec": checkpoint_codec,
        "milestones": rows,
        "messages": messages,
        "total_s": total_s,
        "stream_sha256": digest.hexdigest(),
        "tracked_objects": coordinator.tracked_objects,
    }
    if workers is not None:
        stats = coordinator.stats
        out["ipc"] = {
            "bytes_to_workers": stats.bytes_to_workers,
            "bytes_from_workers": stats.bytes_from_workers,
            "fanout_s": stats.fanout_s,
            "fanin_wait_s": stats.fanin_wait_s,
            "checkpoints": stats.checkpoints,
            "checkpoint_s": stats.checkpoint_s,
        }
    return out


def benchmark_checkpoint_codecs(sim: SimulationResult, repeats: int = 3) -> dict:
    """Time ``dumps_spire`` / ``loads_spire`` for both codecs over the
    grown Table III substrate (the checkpoint a zone worker would cut)."""
    from repro.core.checkpoint import dumps_spire, loads_spire
    from repro.core.pipeline import Deployment, Spire

    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    spire = Spire(deployment, InferenceParams(), compression_level=2, incremental=True)
    for readings in sim.stream:
        spire.process_epoch(readings)

    out: dict = {"nodes": spire.graph.node_count, "edges": spire.graph.edge_count}
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(1_000_000)
    try:
        for codec in ("pickle", "fast"):
            encode_s = decode_s = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                blob = dumps_spire(spire, codec=codec)
                encode_s = min(encode_s, time.perf_counter() - t0)
                t0 = time.perf_counter()
                loads_spire(blob)
                decode_s = min(decode_s, time.perf_counter() - t0)
            out[codec] = {
                "encode_s": encode_s,
                "decode_s": decode_s,
                "bytes": len(blob),
            }
    finally:
        sys.setrecursionlimit(old_limit)
    out["encode_speedup"] = out["pickle"]["encode_s"] / max(
        out["fast"]["encode_s"], 1e-12
    )
    out["decode_speedup"] = out["pickle"]["decode_s"] / max(
        out["fast"]["decode_s"], 1e-12
    )
    return out


def run_scaling(
    milestones: tuple[int, ...] | list[int] = DEFAULT_MILESTONES,
    worker_counts: tuple[int, ...] | list[int] = DEFAULT_WORKER_COUNTS,
    cases_per_pallet: int = DEFAULT_CASES_PER_PALLET,
    seed: int = DEFAULT_SEED,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    benchmark_checkpoints: bool = True,
) -> dict:
    """The multi-worker scaling sweep recorded in ``BENCH_table3.json``.

    Runs the Table III workload through the serial coordinator twice —
    once in the seed configuration (pickle checkpoints, the only codec
    before the fast encoder existed) and once with fast checkpoints — and
    through :class:`ParallelCoordinator` at each worker count.  Attaches
    per-milestone and end-to-end speedups against both serial rows, a
    checkpoint codec micro-benchmark, and the shared stream digest (all
    configurations must produce byte-identical output or the payload is
    marked non-deterministic).
    """
    config = table3_config(cases_per_pallet, duration_for(milestones, cases_per_pallet), seed)
    sim = WarehouseSimulator(config).run()
    payload: dict = {
        "workload": {
            "milestones": list(milestones),
            "cases_per_pallet": cases_per_pallet,
            "duration": config.duration,
            "seed": seed,
            "checkpoint_interval": checkpoint_interval,
            "zones": len(scaling_zone_assignment(config.num_shelves)),
        },
        "machine": machine_info(),
        "calibration_s": calibrate(),
    }
    serial_pickle = run_coordinator_sweep(
        sim, milestones, workers=None,
        checkpoint_interval=checkpoint_interval, checkpoint_codec="pickle",
    )
    serial_fast = run_coordinator_sweep(
        sim, milestones, workers=None,
        checkpoint_interval=checkpoint_interval, checkpoint_codec="fast",
    )
    payload["serial_pickle_checkpoints"] = serial_pickle
    payload["serial_fast_checkpoints"] = serial_fast
    runs = {}
    for count in worker_counts:
        runs[f"workers_{count}"] = run_coordinator_sweep(
            sim, milestones, workers=count,
            checkpoint_interval=checkpoint_interval, checkpoint_codec="fast",
        )
    payload["parallel"] = runs

    digests = {serial_pickle["stream_sha256"], serial_fast["stream_sha256"]}
    digests.update(run["stream_sha256"] for run in runs.values())
    payload["streams_identical"] = len(digests) == 1
    payload["stream_sha256"] = serial_fast["stream_sha256"]

    payload["speedups"] = {
        label: {
            name: {
                "total": baseline["total_s"] / max(run["total_s"], 1e-12),
                "milestones": _scaling_speedups(baseline["milestones"], run["milestones"]),
            }
            for name, run in runs.items()
        }
        for label, baseline in (
            ("vs_serial_pickle_checkpoints", serial_pickle),
            ("vs_serial_fast_checkpoints", serial_fast),
        )
    }
    if benchmark_checkpoints:
        payload["checkpoint_codecs"] = benchmark_checkpoint_codecs(sim)
    payload["peak_rss_kb"] = peak_rss_kb()
    return payload


def _scaling_speedups(before_rows: list[dict], after_rows: list[dict]) -> list[dict]:
    by_milestone = {row["milestone"]: row for row in before_rows}
    out = []
    for after in after_rows:
        before = by_milestone.get(after["milestone"])
        if before is None:
            continue
        out.append(
            {
                "milestone": after["milestone"],
                "avg_epoch": before["avg_epoch_s"] / max(after["avg_epoch_s"], 1e-12),
            }
        )
    return out


def check_parallel_throughput(
    current: dict, workers_key: str = "workers_2", tolerance: float = 0.25
) -> list[str]:
    """CI gate for the parallel path: the merged-stream throughput of the
    given parallel configuration must be within ``tolerance`` of the
    serial (fast-checkpoint) run of the *same payload*, and the streams
    must be byte-identical.  Same-payload comparison makes the check
    machine-independent (both runs share the calibration environment).

    Returns human-readable violations (empty = pass).
    """
    problems: list[str] = []
    if not current.get("streams_identical", False):
        problems.append("parallel merged stream differs from the serial stream")
    serial = current.get("serial_fast_checkpoints")
    run = (current.get("parallel") or {}).get(workers_key)
    if serial is None or run is None:
        problems.append(f"payload is missing serial or {workers_key} scaling rows")
        return problems
    serial_tp = serial["messages"] / max(serial["total_s"], 1e-12)
    parallel_tp = run["messages"] / max(run["total_s"], 1e-12)
    if parallel_tp < serial_tp * (1.0 - tolerance):
        problems.append(
            f"{workers_key} throughput {parallel_tp:.0f} msg/s is more than "
            f"{tolerance:.0%} below serial {serial_tp:.0f} msg/s"
        )
    return problems

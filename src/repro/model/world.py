"""Ground-truth state of the physical world.

:class:`PhysicalWorld` is the authoritative record of where every object is
and what contains what, i.e. the functions ``resides`` and ``contained`` of
Section II.  The simulator mutates a world as pallets flow through the
warehouse; the metrics package reads it to score SPIRE's estimates.

The world enforces the physical invariants the paper assumes:

* an object resides in exactly one location at a time (possibly *unknown*);
* containment is a forest: every object has at most one container;
* a container and its contents are always co-located — moving a container
  moves everything (transitively) inside it;
* containment respects packaging levels: the container's level must be
  strictly higher than the contained object's level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.model.locations import Location, UNKNOWN_LOCATION
from repro.model.objects import TagId


class WorldError(Exception):
    """Raised when a mutation would violate a physical-world invariant."""


@dataclass
class _ObjectState:
    """Mutable per-object record inside a :class:`PhysicalWorld`."""

    tag: TagId
    location: Location
    container: TagId | None = None
    children: set[TagId] = field(default_factory=set)
    entered_at: int = 0


class PhysicalWorld:
    """The set of monitored objects with their true locations and containment.

    All mutation methods take the current time ``now`` so the world can keep
    consistent entry timestamps; the world itself is otherwise timeless —
    history is recorded externally by
    :class:`repro.model.truth.GroundTruthRecorder`.
    """

    def __init__(self) -> None:
        self._objects: dict[TagId, _ObjectState] = {}
        # location color -> tags residing there; kept in sync by mutations so
        # per-epoch reader simulation is O(objects at the reader's location),
        # not O(all objects) (Table III runs reach ~175k live objects).
        self._by_location: dict[int, set[TagId]] = {}

    # ------------------------------------------------------------------
    # queries (the ground-truth functions of Section II)
    # ------------------------------------------------------------------

    def __contains__(self, tag: TagId) -> bool:
        return tag in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[TagId]:
        return iter(self._objects)

    def resides(self, tag: TagId, location: Location) -> bool:
        """Ground-truth ``resides(o, l)``: is ``tag`` currently at ``location``?"""
        state = self._objects.get(tag)
        return state is not None and state.location == location

    def contained(self, child: TagId, parent: TagId) -> bool:
        """Ground-truth ``contained(o_i, o_j)``: is ``child`` inside ``parent``?"""
        state = self._objects.get(child)
        return state is not None and state.container == parent

    def location_of(self, tag: TagId) -> Location:
        """Current location of ``tag``; raises ``KeyError`` for unknown tags."""
        return self._objects[tag].location

    def container_of(self, tag: TagId) -> TagId | None:
        """Direct container of ``tag`` (``None`` if not contained)."""
        return self._objects[tag].container

    def children_of(self, tag: TagId) -> frozenset[TagId]:
        """Direct contents of ``tag``."""
        return frozenset(self._objects[tag].children)

    def descendants_of(self, tag: TagId) -> list[TagId]:
        """All objects transitively contained in ``tag`` (pre-order)."""
        out: list[TagId] = []
        stack = sorted(self._objects[tag].children, reverse=True)
        while stack:
            child = stack.pop()
            out.append(child)
            stack.extend(sorted(self._objects[child].children, reverse=True))
        return out

    def top_level_container(self, tag: TagId) -> TagId:
        """Outermost container of ``tag`` (``tag`` itself if uncontained)."""
        current = tag
        while (parent := self._objects[current].container) is not None:
            current = parent
        return current

    def objects_at(self, location: Location) -> list[TagId]:
        """All objects currently residing at ``location`` (sorted for determinism)."""
        return sorted(self._by_location.get(location.color, ()))

    def tags(self) -> list[TagId]:
        """All objects currently in the world."""
        return list(self._objects)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def add_object(self, tag: TagId, location: Location, now: int = 0) -> None:
        """An object enters the world at ``location``."""
        if tag in self._objects:
            raise WorldError(f"object {tag} already exists")
        self._objects[tag] = _ObjectState(tag=tag, location=location, entered_at=now)
        self._by_location.setdefault(location.color, set()).add(tag)

    def remove_object(self, tag: TagId) -> None:
        """An object leaves the world (proper exit or final disposal).

        Contained objects are *not* removed implicitly: callers that remove
        a container with contents must decide what happens to the contents
        first (the simulator removes whole subtrees on proper exit).
        """
        state = self._require(tag)
        if state.children:
            raise WorldError(f"cannot remove {tag}: it still contains {len(state.children)} object(s)")
        if state.container is not None:
            self._objects[state.container].children.discard(tag)
        self._by_location[state.location.color].discard(tag)
        del self._objects[tag]

    def remove_subtree(self, tag: TagId) -> list[TagId]:
        """Remove ``tag`` and everything inside it; returns removed tags."""
        removed = self.descendants_of(tag)
        for child in reversed(removed):
            self.remove_object(child)
        self.remove_object(tag)
        removed.append(tag)
        return removed

    def move(self, tag: TagId, location: Location) -> list[TagId]:
        """Move ``tag`` — and transitively everything it contains — to ``location``.

        Returns the list of all objects moved (``tag`` first).  Moving an
        object that is still inside a container is a modelling error
        (containers and contents are always co-located); detach it with
        :meth:`uncontain` first.
        """
        state = self._require(tag)
        if state.container is not None:
            raise WorldError(
                f"cannot move contained object {tag}; call uncontain() first"
            )
        moved = [tag] + self.descendants_of(tag)
        dest = self._by_location.setdefault(location.color, set())
        for t in moved:
            t_state = self._objects[t]
            self._by_location[t_state.location.color].discard(t)
            t_state.location = location
            dest.add(t)
        return moved

    def vanish(self, tag: TagId) -> list[TagId]:
        """An object improperly disappears (theft/misplacement).

        The object and its contents move to the unknown location and the
        object is detached from its container (the thief takes the case out
        of the pallet).  Returns all affected tags.
        """
        state = self._require(tag)
        if state.container is not None:
            self.uncontain(tag)
        return self.move(tag, UNKNOWN_LOCATION)

    def contain(self, child: TagId, parent: TagId) -> None:
        """Put ``child`` inside ``parent`` (both must be co-located)."""
        child_state = self._require(child)
        parent_state = self._require(parent)
        if child_state.container == parent:
            return
        if child_state.container is not None:
            raise WorldError(f"{child} is already contained in {child_state.container}")
        if child.level >= parent.level:
            raise WorldError(
                f"containment must go down packaging levels: "
                f"{parent} (level {parent.level}) cannot contain {child} (level {child.level})"
            )
        if child_state.location != parent_state.location:
            raise WorldError(
                f"cannot contain {child}@{child_state.location} in {parent}@{parent_state.location}: "
                "objects must be co-located"
            )
        child_state.container = parent
        parent_state.children.add(child)

    def uncontain(self, child: TagId) -> TagId:
        """Take ``child`` out of its container; returns the former container."""
        state = self._require(child)
        if state.container is None:
            raise WorldError(f"{child} has no container")
        parent = state.container
        self._objects[parent].children.discard(child)
        state.container = None
        return parent

    # ------------------------------------------------------------------

    def _require(self, tag: TagId) -> _ObjectState:
        state = self._objects.get(tag)
        if state is None:
            raise WorldError(f"unknown object {tag}")
        return state

    def check_invariants(self) -> None:
        """Assert internal consistency; used by property-based tests."""
        for tag, state in self._objects.items():
            if state.container is not None:
                parent = self._objects.get(state.container)
                assert parent is not None, f"{tag} contained in missing {state.container}"
                assert tag in parent.children, f"{tag} missing from parent children set"
                assert parent.location == state.location, (
                    f"{tag}@{state.location} not co-located with container "
                    f"{state.container}@{parent.location}"
                )
                assert tag.level < state.container.level, "level ordering violated"
            for child in state.children:
                assert self._objects[child].container == tag, "dangling child link"
        # the location index must mirror per-object state exactly
        indexed = {t for tags in self._by_location.values() for t in tags}
        assert indexed == set(self._objects), "location index out of sync"
        for color, tags in self._by_location.items():
            for t in tags:
                assert self._objects[t].location.color == color, "stale index entry"
        # containment must be acyclic (levels strictly decrease, so a cycle
        # is impossible if the level assertion held; re-walk to be safe)
        for tag in self._objects:
            seen = {tag}
            current = self._objects[tag].container
            while current is not None:
                assert current not in seen, f"containment cycle through {tag}"
                seen.add(current)
                current = self._objects[current].container

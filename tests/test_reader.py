"""Unit tests for the RFID reader model."""

import numpy as np
import pytest

from repro.model.locations import Location, LocationKind, UNKNOWN_LOCATION
from repro.model.objects import PackagingLevel
from repro.readers.reader import Reader, ReaderKind, readers_at, schedule_lcm

from tests.conftest import item

SHELF = Location(0, "shelf", LocationKind.SHELF)
BELT = Location(1, "belt", LocationKind.BELT)


class TestValidation:
    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            Reader(0, SHELF, period=0)

    def test_read_rate_bounds(self):
        with pytest.raises(ValueError):
            Reader(0, SHELF, read_rate=1.5)
        with pytest.raises(ValueError):
            Reader(0, SHELF, read_rate=-0.1)

    def test_unknown_location_rejected(self):
        with pytest.raises(ValueError):
            Reader(0, UNKNOWN_LOCATION)

    def test_special_requires_singulation_level(self):
        with pytest.raises(ValueError, match="singulation"):
            Reader(0, BELT, kind=ReaderKind.SPECIAL)
        Reader(0, BELT, kind=ReaderKind.SPECIAL, singulation_level=PackagingLevel.CASE)


class TestSchedule:
    def test_period_one_fires_every_epoch(self):
        reader = Reader(0, SHELF, period=1)
        assert all(reader.interrogates_at(e) for e in range(10))

    def test_periodic_schedule(self):
        reader = Reader(0, SHELF, period=10)
        fires = [e for e in range(30) if reader.interrogates_at(e)]
        assert fires == [0, 10, 20]

    def test_phase_offsets_schedule(self):
        reader = Reader(0, SHELF, period=10, phase=3)
        fires = [e for e in range(30) if reader.interrogates_at(e)]
        assert fires == [3, 13, 23]

    def test_schedule_lcm(self):
        readers = [Reader(0, SHELF, period=60), Reader(1, BELT, period=1)]
        assert schedule_lcm(readers) == 60
        readers.append(Reader(2, BELT, period=7))
        assert schedule_lcm(readers) == 420


class TestObservation:
    def test_perfect_read_rate_sees_everything(self):
        reader = Reader(0, SHELF, read_rate=1.0)
        present = [item(i) for i in range(5)]
        rng = np.random.default_rng(0)
        assert reader.observe(present, rng, epoch=0) == present

    def test_zero_read_rate_sees_nothing(self):
        reader = Reader(0, SHELF, read_rate=0.0)
        rng = np.random.default_rng(0)
        assert reader.observe([item(1)], rng, epoch=0) == []

    def test_off_schedule_returns_empty(self):
        reader = Reader(0, SHELF, period=10)
        rng = np.random.default_rng(0)
        assert reader.observe([item(1)], rng, epoch=5) == []

    def test_read_rate_statistics(self):
        reader = Reader(0, SHELF, read_rate=0.7)
        present = [item(i) for i in range(1000)]
        rng = np.random.default_rng(42)
        observed = reader.observe(present, rng, epoch=0)
        assert 630 <= len(observed) <= 770  # ~0.7 * 1000

    def test_empty_present_list(self):
        reader = Reader(0, SHELF)
        rng = np.random.default_rng(0)
        assert reader.observe([], rng, epoch=0) == []


class TestHelpers:
    def test_readers_at(self):
        a = Reader(0, SHELF)
        b = Reader(1, BELT)
        assert readers_at([a, b], SHELF) == [a]

    def test_kind_properties(self):
        special = Reader(0, BELT, kind=ReaderKind.SPECIAL, singulation_level=PackagingLevel.CASE)
        exit_reader = Reader(1, SHELF, kind=ReaderKind.EXIT)
        assert special.is_special and not special.is_exit
        assert exit_reader.is_exit and not exit_reader.is_special

"""Node inference (Section IV-B): most-likely location of an unobserved object.

An uncolored node's location distribution (Eq. 3) mixes:

* the node's own *fading color* — its most recent observed color, decaying
  with the time since the object was last seen at rate ``theta``;
* the colors *propagated through edges* from neighbours whose location is
  known (observed this epoch, or already inferred earlier in the iterative
  sweep), each weighted by the edge's Eq. 2 probability; and
* the special color *unknown* (Eq. 4), which absorbs the decayed belief.

Reproduction note (documented in DESIGN.md): the decay age ``now -
seen_at`` is measured in *expected observation periods* of the object's
last known location, not raw epochs.  A shelf read once a minute gives an
unobserved object one detection opportunity per 60 epochs; measuring decay
in raw epochs would declare nearly every shelved object missing after a
single missed read, which contradicts the paper's sub-10 % error rates at
minute-scale shelf periods.  The paper's own discussion of Fig. 9(f)
("it otherwise takes too long to wait for the next reading, adjust the
belief...") implies belief adjusts per reading opportunity; with 1-second
reader periods (the fastest readers) the two formulations coincide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import UNKNOWN_COLOR, GraphNode
from repro.core.params import InferenceParams


@dataclass(frozen=True)
class NodeBelief:
    """Outcome of node inference at one node.

    Attributes:
        color: The argmax color (may be ``UNKNOWN_COLOR``).
        prob: Probability mass of the chosen color after normalisation.
        distribution: Full color -> probability map (normalised), including
            the ``UNKNOWN_COLOR`` entry.
    """

    color: int
    prob: float
    distribution: dict[int, float]


def infer_node(
    node: GraphNode,
    effective_colors: dict[GraphNode, int],
    now: int,
    params: InferenceParams,
    color_periods: dict[int, int] | None = None,
    suppressed_colors: frozenset[int] = frozenset(),
) -> NodeBelief:
    """Run node inference at an uncolored ``node`` (Eqs. 3–4).

    ``effective_colors`` supplies the location of every neighbour whose
    color is already known this pass (observed nodes and nodes inferred at a
    smaller distance ``d``); neighbours absent from the map propagate
    nothing.  ``UNKNOWN_COLOR`` entries propagate nothing either — only
    known locations travel along containment edges.

    ``color_periods`` maps each location color to the interrogation period
    of its reader(s); the decay age is measured in these units (see the
    module docstring).  Omitting it measures age in raw epochs.

    ``suppressed_colors`` are locations whose readers are presumed dead
    (see :class:`repro.faults.health.ReaderHealthMonitor`): an unobserved
    object whose most recent color is suppressed stops decaying — its
    non-read is explained by the outage, not by the object vanishing — so
    the belief freezes at the last known location until the reader returns.
    """
    gamma = params.gamma
    scores: dict[int, float] = {}

    # fading most recent color (first term of Eq. 3) and unknown (Eq. 4)
    age = now - node.seen_at
    if age <= 0:
        # defensive: a node observed this epoch should not be inferred
        age = 1
    if color_periods and node.recent_color is not None:
        period = color_periods.get(node.recent_color, 1)
        if period > 1:
            age = max(1.0, age / period)
    if node.recent_color is not None and node.recent_color in suppressed_colors:
        fade = 1.0  # reader outage: absence of reads carries no evidence
    else:
        fade = 1.0 / (age ** params.theta) if params.theta > 0 else 1.0
    if node.recent_color is not None:
        scores[node.recent_color] = (1.0 - gamma) * fade
    scores[UNKNOWN_COLOR] = (1.0 - gamma) * (1.0 - fade)

    # colors propagated through edges (second term of Eq. 3).  Note the Z2
    # renormalisation runs over *propagating* edges only, per the paper: a
    # single observed neighbour receives the whole gamma mass even when its
    # edge is weak.  This occasionally drags an unobserved object toward a
    # departed co-location neighbour, but filtering weak edges here was
    # measured to hurt overall event accuracy (it trades propagation churn
    # for unknown churn) — see EXPERIMENTS.md, Fig. 11(a).
    if gamma > 0.0:
        propagated: dict[int, float] = {}
        z2 = 0.0
        get_color = effective_colors.get
        # parent edges first, then child edges — the accumulation order of
        # node.edges(), preserved so float summation is unchanged
        for edge in node.parents.values():
            color = get_color(edge.parent)
            if color is None or color == UNKNOWN_COLOR:
                continue
            propagated[color] = propagated.get(color, 0.0) + edge.prob
            z2 += edge.prob
        for edge in node.children.values():
            color = get_color(edge.child)
            if color is None or color == UNKNOWN_COLOR:
                continue
            propagated[color] = propagated.get(color, 0.0) + edge.prob
            z2 += edge.prob
        if z2 > 0.0:
            for color, mass in propagated.items():
                scores[color] = scores.get(color, 0.0) + gamma * mass / z2

    total = sum(scores.values())
    if total <= 0.0:
        # no memory and nothing propagated: the location is unknown
        return NodeBelief(UNKNOWN_COLOR, 1.0, {UNKNOWN_COLOR: 1.0})
    distribution = {color: mass / total for color, mass in scores.items()}

    # argmax with deterministic tie-breaking: prefer the node's recent
    # color, then known colors over unknown, then the smallest color id.
    def rank(item: tuple[int, float]) -> tuple[float, int, int, int]:
        color, prob = item
        return (
            prob,
            1 if color == node.recent_color else 0,
            1 if color != UNKNOWN_COLOR else 0,
            -color,
        )

    best_color, best_prob = max(distribution.items(), key=rank)
    return NodeBelief(best_color, best_prob, distribution)

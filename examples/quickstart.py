"""Quickstart: simulate a small warehouse and interpret its RFID stream.

Runs a 10-minute simulated trace through the SPIRE substrate and shows the
three things SPIRE adds on top of raw readings: most-likely object
locations, inferred containment, and a compressed event stream.

Usage:  python examples/quickstart.py
"""

from repro import (
    SimulationConfig,
    SpireConfig,
    SpireSession,
    WarehouseSimulator,
    check_well_formed,
)


def main() -> None:
    # 1. Generate a synthetic trace: pallets arrive every 2 minutes, get
    #    unpacked, shelved for ~3 minutes, re-packed and shipped out.
    #    Readers miss 15 % of the tags in range (read rate 0.85).
    config = SimulationConfig(
        duration=600,            # 10 minutes of 1 s epochs
        pallet_period=120,
        cases_per_pallet_min=3,
        cases_per_pallet_max=3,
        items_per_case=5,
        read_rate=0.85,
        shelf_read_period=15,    # shelf readers interrogate every 15 s
        num_shelves=2,
        shelving_time_mean=180,
        shelving_time_jitter=30,
        seed=42,
    )
    sim = WarehouseSimulator(config).run()
    print(f"simulated {len(sim.stream)} epochs, {sim.stream.total_readings} raw readings, "
          f"{sim.pallets_arrived} pallets in, {sim.pallets_assembled} pallets re-assembled")

    # 2. Feed the raw stream to SPIRE.  A SpireSession wraps the whole
    #    substrate behind one object; the reader layout (belt readers,
    #    exit doors, shelves) is the only site knowledge it needs.
    session = SpireSession(SpireConfig.from_simulation(sim))
    spire = session.spire

    messages = []
    for output in session.process(sim.stream):
        messages.extend(output.messages)

    # 3. Ask the interpretation questions of Section II: where is each
    #    object now, and what contains it?
    print(f"\ncurrently tracked objects: {spire.tracked_objects}")
    registry = sim.layout.registry
    shown = 0
    for tag in sorted(spire.estimates):
        location = registry.by_color(session.location_of(tag))
        container = session.container_of(tag)
        inside = f" inside {container}" if container else ""
        print(f"  {tag}: at {location}{inside}")
        shown += 1
        if shown >= 10:
            print(f"  ... and {spire.tracked_objects - shown} more")
            break

    # 4. The compressed output stream carries the same information (plus
    #    history) in a fraction of the raw stream's size.
    check_well_formed(messages)
    from repro.metrics.sizing import compression_ratio

    ratio = compression_ratio(messages, sim.stream.raw_bytes)
    print(f"\ncompressed output: {len(messages)} event messages, "
          f"{ratio:.1%} of the raw input size (lossless, level-2)")
    print("last five events:")
    for message in messages[-5:]:
        print(f"  {message}")


if __name__ == "__main__":
    main()

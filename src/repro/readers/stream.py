"""The raw RFID reading stream.

RFID data in its most basic form is a triplet ``<tag id, reader id,
timestamp>`` (Section I).  Readers are coarsely synchronised into 1-second
*epochs*; :class:`EpochReadings` groups one epoch's readings per reader, the
shape consumed by the stream-driven graph construction (Fig. 4 processes one
reader's reading set ``R_k`` at a time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, NamedTuple

from repro.model.objects import TagId

#: Encoded size in bytes we charge for one raw reading when computing
#: compression ratios: 8-byte tag id + 4-byte reader id + 4-byte timestamp.
#: (Section VI-D reports raw-trace MB; any fixed per-reading size yields the
#: same *ratios*, which is what the paper's Figs. 11(b)/(c) plot.)
RAW_READING_BYTES = 16


class Reading(NamedTuple):
    """One raw observation: ``tag`` seen by ``reader_id`` at ``timestamp``.

    ``timestamp`` is the epoch number; ``seq`` is the sub-epoch arrival
    order, which the deduplicator uses to decide which reader saw a tag
    "most recently" when several readers report it in the same epoch.
    """

    tag: TagId
    reader_id: int
    timestamp: int
    seq: int = 0


@dataclass
class EpochReadings:
    """All readings of one epoch, grouped by reader.

    Attributes:
        epoch: The epoch number.
        by_reader: Mapping of reader id to the (deduplicated or raw) list of
            tags that reader reported this epoch.  Reader ids absent from
            the mapping did not interrogate or read nothing.
    """

    epoch: int
    by_reader: dict[int, list[TagId]] = field(default_factory=dict)
    # lazily built tag -> winning reader map (excluded from equality/repr;
    # invalidated by add())
    _tag_map: dict[TagId, int] | None = field(
        default=None, compare=False, repr=False
    )

    def add(self, reader_id: int, tags: Iterable[TagId]) -> None:
        """Append ``tags`` to the given reader's reading set."""
        tags = list(tags)
        if not tags:
            return
        self.by_reader.setdefault(reader_id, []).extend(tags)
        self._tag_map = None

    def cache_tag_map(self, tag_map: dict[TagId, int]) -> None:
        """Install a precomputed tag→reader map (used by the deduplicator,
        whose winner map is exactly this epoch's assignment)."""
        self._tag_map = tag_map

    def tag_to_reader(self) -> dict[TagId, int]:
        """Map each tag to the reader that reported it (last report wins,
        in :meth:`readings` order).  Built once and cached; deduplicated
        epochs get the map for free from the deduplicator."""
        tag_map = self._tag_map
        if tag_map is None:
            tag_map = {}
            for reader_id in sorted(self.by_reader):
                for tag in self.by_reader[reader_id]:
                    tag_map[tag] = reader_id
            self._tag_map = tag_map
        return tag_map

    def readings(self) -> Iterator[Reading]:
        """Flatten to raw triplets (with deterministic sub-epoch ``seq``)."""
        seq = 0
        for reader_id in sorted(self.by_reader):
            for tag in self.by_reader[reader_id]:
                yield Reading(tag=tag, reader_id=reader_id, timestamp=self.epoch, seq=seq)
                seq += 1

    @property
    def reading_count(self) -> int:
        """Number of raw readings in this epoch."""
        return sum(len(tags) for tags in self.by_reader.values())

    @property
    def raw_bytes(self) -> int:
        """Encoded size of this epoch's raw readings."""
        return self.reading_count * RAW_READING_BYTES

    def tags_seen(self) -> set[TagId]:
        """Distinct tags observed by any reader this epoch."""
        if self._tag_map is not None:
            return set(self._tag_map)
        seen: set[TagId] = set()
        for tags in self.by_reader.values():
            seen.update(tags)
        return seen

    def __bool__(self) -> bool:
        return bool(self.by_reader)


class ReadingStream:
    """An in-memory sequence of :class:`EpochReadings` plus size accounting.

    The simulator produces one of these per run; SPIRE and the SMURF
    baseline both consume it epoch by epoch.  For very long runs the class
    also supports lazy iteration via :meth:`extend_from`.
    """

    def __init__(self, epochs: Iterable[EpochReadings] = ()) -> None:
        self._epochs: list[EpochReadings] = list(epochs)

    def append(self, epoch_readings: EpochReadings) -> None:
        """Append one epoch (epoch numbers must strictly increase)."""
        if self._epochs and epoch_readings.epoch <= self._epochs[-1].epoch:
            raise ValueError(
                f"epochs must be appended in increasing order: "
                f"{epoch_readings.epoch} after {self._epochs[-1].epoch}"
            )
        self._epochs.append(epoch_readings)

    def extend_from(self, source: Iterable[EpochReadings]) -> None:
        """Append every epoch from ``source`` in order."""
        for epoch_readings in source:
            self.append(epoch_readings)

    def __iter__(self) -> Iterator[EpochReadings]:
        return iter(self._epochs)

    def __len__(self) -> int:
        return len(self._epochs)

    def __getitem__(self, index: int) -> EpochReadings:
        return self._epochs[index]

    @property
    def total_readings(self) -> int:
        """Total raw reading count across all epochs."""
        return sum(e.reading_count for e in self._epochs)

    @property
    def raw_bytes(self) -> int:
        """Total encoded size of the raw stream (compression-ratio input)."""
        return sum(e.raw_bytes for e in self._epochs)

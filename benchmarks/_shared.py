"""Shared workloads, caching and reporting for the paper's benchmarks.

Every benchmark regenerates one table or figure of Section VI.  Workloads
are scaled-down versions of the paper's traces so the whole suite runs in
minutes on a laptop; set ``SPIRE_BENCH_SCALE=paper`` for paper-scale runs
(hours).  Simulated traces and pipeline runs are memoised per pytest
session, so benchmarks that share a trace (e.g. Figs. 11(a)–(c)) only pay
for it once.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from statistics import median

from repro.baselines.smurf import SmurfParams
from repro.core.params import InferenceParams
from repro.experiments.runner import (
    SmurfRunReport,
    SpireRunReport,
    ground_truth_stream,
    run_smurf,
    run_spire,
)
from repro.experiments.table3 import table3_config
from repro.metrics.accuracy import ScoringPolicy
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import SimulationResult, WarehouseSimulator

PAPER_SCALE = os.environ.get("SPIRE_BENCH_SCALE", "").lower() == "paper"

_SIM_CACHE: dict = {}
_SPIRE_CACHE: dict = {}
_SMURF_CACHE: dict = {}
_TRUTH_CACHE: dict = {}


def accuracy_config(
    shelf_read_period: int = 60,
    read_rate: float = 0.85,
    anomaly_period: int = 0,
    seed: int = 7,
) -> SimulationConfig:
    """The Section VI-B accuracy workload (scaled down by default).

    Paper values: 3 h duration, 6 pallets/hour, 5 cases/pallet, 20
    items/case, 1 h shelving.  The scaled version keeps the same structure
    with a ~6x shorter timeline and smaller cases so a full parameter sweep
    stays laptop-friendly.
    """
    if PAPER_SCALE:
        return SimulationConfig(
            duration=3 * 3600,
            pallet_period=600,
            cases_per_pallet_min=5,
            cases_per_pallet_max=5,
            items_per_case=20,
            read_rate=read_rate,
            shelf_read_period=shelf_read_period,
            num_shelves=4,
            shelving_time_mean=3600,
            shelving_time_jitter=600,
            anomaly_period=anomaly_period,
            seed=seed,
        )
    return SimulationConfig(
        duration=1800,
        pallet_period=200,
        cases_per_pallet_min=4,
        cases_per_pallet_max=4,
        items_per_case=6,
        read_rate=read_rate,
        shelf_read_period=shelf_read_period,
        num_shelves=3,
        shelving_time_mean=600,
        shelving_time_jitter=120,
        anomaly_period=anomaly_period,
        seed=seed,
    )


def output_config(read_rate: float, seed: int = 17) -> SimulationConfig:
    """The Section VI-D output/compression workload (16 h trace, scaled)."""
    if PAPER_SCALE:
        return SimulationConfig(
            duration=16 * 3600,
            pallet_period=240,
            cases_per_pallet_min=5,
            cases_per_pallet_max=8,
            items_per_case=20,
            read_rate=read_rate,
            shelf_read_period=60,
            num_shelves=4,
            shelving_time_mean=3600,
            shelving_time_jitter=600,
            seed=seed,
        )
    return SimulationConfig(
        duration=2400,
        pallet_period=150,
        cases_per_pallet_min=4,
        cases_per_pallet_max=5,
        items_per_case=6,
        read_rate=read_rate,
        shelf_read_period=30,
        num_shelves=3,
        shelving_time_mean=500,
        shelving_time_jitter=100,
        seed=seed,
    )


def scale_config(cases_per_pallet: int, duration: int, seed: int = 41) -> SimulationConfig:
    """High-injection workload for Table III / Fig. 10 graph growth.

    Delegates to :func:`repro.experiments.table3.table3_config` so the
    benchmark suite, the ``repro-spire bench`` subcommand and the CI
    perf-smoke job all measure exactly the same trace.
    """
    return table3_config(cases_per_pallet, duration, seed)


# ---------------------------------------------------------------------------
# memoised runs
# ---------------------------------------------------------------------------


def get_sim(config: SimulationConfig) -> SimulationResult:
    if config not in _SIM_CACHE:
        _SIM_CACHE[config] = WarehouseSimulator(config).run()
    return _SIM_CACHE[config]


def get_spire(
    config: SimulationConfig,
    params: InferenceParams = InferenceParams(),
    compression_level: int = 2,
    policies: tuple[ScoringPolicy, ...] = (ScoringPolicy.ALL,),
    score: bool = True,
) -> SpireRunReport:
    key = (config, params, compression_level, policies, score)
    if key not in _SPIRE_CACHE:
        _SPIRE_CACHE[key] = run_spire(
            get_sim(config),
            params=params,
            compression_level=compression_level,
            policies=policies,
            score=score,
        )
    return _SPIRE_CACHE[key]


def get_smurf(config: SimulationConfig, score: bool = True) -> SmurfRunReport:
    key = (config, score)
    if key not in _SMURF_CACHE:
        _SMURF_CACHE[key] = run_smurf(get_sim(config), SmurfParams(), score=score)
    return _SMURF_CACHE[key]


def get_truth_stream(config: SimulationConfig) -> list:
    if config not in _TRUTH_CACHE:
        _TRUTH_CACHE[config] = ground_truth_stream(get_sim(config))
    return _TRUTH_CACHE[config]


# ---------------------------------------------------------------------------
# micro-timing (no pytest-benchmark required)
# ---------------------------------------------------------------------------


class Stopwatch:
    """Accumulating monotonic timer for hand-rolled benchmark loops.

    Use as a context manager around the timed region; ``seconds`` sums all
    entries, ``laps`` records each one::

        watch = Stopwatch()
        for readings in stream:
            with watch:
                spire.process_epoch(readings)
        print(watch.seconds, watch.mean)
    """

    def __init__(self) -> None:
        self.laps: list[float] = []
        self._entered_at = 0.0

    def __enter__(self) -> "Stopwatch":
        self._entered_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.laps.append(time.perf_counter() - self._entered_at)

    @property
    def seconds(self) -> float:
        return sum(self.laps)

    @property
    def mean(self) -> float:
        return self.seconds / len(self.laps) if self.laps else 0.0

    @property
    def median(self) -> float:
        return median(self.laps) if self.laps else 0.0


def time_callable(fn, *, warmup: int = 1, rounds: int = 5) -> dict:
    """Median-of-``rounds`` wall time of ``fn()`` after ``warmup`` calls.

    A minimal stand-in for ``benchmark.pedantic`` that needs no pytest
    plugin: warmup rounds populate caches (bytecode, memoised traces)
    without being counted, then the median of the measured rounds damps
    scheduler noise.  Returns ``{"median_s", "min_s", "max_s", "rounds",
    "result"}`` where ``result`` is the last call's return value.
    """
    result = None
    for _ in range(warmup):
        result = fn()
    timings = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - t0)
    return {
        "median_s": median(timings),
        "min_s": min(timings),
        "max_s": max(timings),
        "rounds": rounds,
        "result": result,
    }


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


@dataclass
class Table:
    """Paper-style results table printed beneath each benchmark."""

    title: str
    columns: list[str]
    rows: list[list] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.rows is None:
            self.rows = []

    def add(self, *row) -> None:
        self.rows.append(list(row))

    def render(self) -> str:
        widths = [
            max(len(str(c)), *(len(_fmt(r[i])) for r in self.rows)) if self.rows else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths)))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)

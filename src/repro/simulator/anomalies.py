"""Anomaly injection: unexpected removals (theft / misplacement).

Section VI-B Expt 4 simulates "unexpected removals of objects from the
warehouse, representing theft or misplacement, at a rate of 1 removal every
100 seconds with random selection from all objects".  A removed object (and
anything inside it) moves to the *unknown* location without any exit
reading, so the ground truth says "unknown" while SPIRE must discover the
absence through missed readings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.locations import UNKNOWN_LOCATION
from repro.model.objects import TagId
from repro.model.truth import GroundTruthRecorder
from repro.model.world import PhysicalWorld


@dataclass(frozen=True)
class RemovalEvent:
    """One injected anomaly: ``tag`` (and contents) vanished at ``epoch``."""

    tag: TagId
    epoch: int
    affected: tuple[TagId, ...]


class AnomalyInjector:
    """Removes a random in-world object every ``period`` epochs.

    Only objects at known locations are eligible (an already-vanished object
    cannot vanish again), and objects sitting at the exit door are excluded:
    they are about to leave properly, so "stealing" them would be
    indistinguishable from their normal departure.
    """

    def __init__(self, period: int, rng: np.random.Generator) -> None:
        if period < 1:
            raise ValueError(f"anomaly period must be >= 1, got {period}")
        self._period = period
        self._rng = rng
        self._events: list[RemovalEvent] = []

    def maybe_remove(
        self,
        world: PhysicalWorld,
        truth: GroundTruthRecorder,
        epoch: int,
        protected: frozenset[int] = frozenset(),
    ) -> RemovalEvent | None:
        """Inject one removal if ``epoch`` is on the period boundary.

        ``protected`` is a set of location colors whose occupants are exempt
        (the simulator passes the exit door).  Returns the event, or ``None``
        when this epoch injects nothing or no object is eligible.
        """
        if epoch == 0 or epoch % self._period != 0:
            return None
        candidates = [
            tag
            for tag in world.tags()
            if world.location_of(tag) is not UNKNOWN_LOCATION
            and world.location_of(tag).color not in protected
        ]
        if not candidates:
            return None
        victim = candidates[int(self._rng.integers(len(candidates)))]
        affected = tuple(world.vanish(victim))
        for tag in affected:
            truth.note_vanished(tag, epoch)
        event = RemovalEvent(tag=victim, epoch=epoch, affected=affected)
        self._events.append(event)
        return event

    @property
    def events(self) -> list[RemovalEvent]:
        """All removals injected so far, in order."""
        return list(self._events)

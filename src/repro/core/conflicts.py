"""Conflict resolution between location and containment inference (§IV-E).

Iterative inference settles node colors layer by layer, so the two ends of
a chosen containment edge can end up with different locations.  Conflicts
are resolved in a post-processing pass that gives priority to containment
(usually backed by a special-reader confirmation), per Table I:

* **Rule I** — parent observed, child inferred: override the child's
  location with the parent's.
* **Rule II / III** — parent inferred: poll the parent's children; with a
  strict majority, move the parent to the consensus location.  Then, for
  each child still in conflict: an *observed* child keeps its location and
  its containment is ended (Rule II); an *inferred* child is overridden to
  the parent's location (Rule III).

Because the polling step needs all of a parent's children, this cannot run
inside the iterative sweep; the pipeline calls it once per epoch on the
fresh inference results, processing packaging levels top-down so a case
whose location was just corrected by its pallet resolves consistently
against its items.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.core.graph import UNKNOWN_COLOR
from repro.core.interpretation import Estimate, InterpretationResult, LocationSource
from repro.model.objects import TagId


def resolve_conflicts(result: InterpretationResult) -> int:
    """Resolve location/containment conflicts in ``result`` in place.

    Returns the number of estimates modified.  Only estimates present in
    this epoch's result participate; a chosen container without an estimate
    this epoch (possible under partial inference) leaves its children
    untouched — the carried-forward output state handles them.
    """
    changed = 0

    # group children by chosen parent
    children_by_parent: dict[TagId, list[Estimate]] = defaultdict(list)
    for estimate in result:
        if estimate.container is not None:
            children_by_parent[estimate.container].append(estimate)

    parents = [tag for tag in children_by_parent if tag in result.estimates]

    # Phase 1 — bottom-up child polling (Rules II/III preamble).  Ascending
    # level order lets a consensus that settles a case's location feed the
    # pallet's poll in the same pass, so upward corrections converge in one
    # call instead of creeping one level per invocation.
    for parent_tag in sorted(parents, key=lambda tag: (tag.level, tag)):
        parent = result.estimates[parent_tag]
        if parent.observed:
            continue
        children = children_by_parent[parent_tag]
        votes = Counter(
            child.location for child in children if child.location != UNKNOWN_COLOR
        )
        if votes:
            consensus, count = votes.most_common(1)[0]
            if count * 2 > len(children) and parent.location != consensus:
                parent.location = consensus
                parent.source = LocationSource.INFERRED
                changed += 1

    # Phase 2 — top-down containment-priority overrides (Rules I/II/III).
    # A pinned estimate's location is containment-derived from an observed
    # (or itself pinned) ancestor and is authoritative for its own children;
    # without pinning, a child poll could undo a correction that cascaded
    # down from an observed grandparent.
    pinned: set[TagId] = set()
    for parent_tag in sorted(parents, key=lambda tag: (-tag.level, tag)):
        parent = result.estimates[parent_tag]
        parent_authoritative = parent.observed or parent_tag in pinned
        for child in children_by_parent[parent_tag]:
            if parent_authoritative and not child.observed:
                pinned.add(child.tag)
            if child.location == parent.location:
                continue
            if child.observed:
                # Rule II: trust the observation; end the containment.
                child.container = None
                child.container_prob = 0.0
                changed += 1
            else:
                # Rules I/III: containment wins over the inferred location.
                child.location = parent.location
                child.location_prob = parent.location_prob
                child.source = (
                    LocationSource.INFERRED
                    if parent.location != UNKNOWN_COLOR or result.complete
                    else LocationSource.WITHHELD
                )
                pinned.add(child.tag)
                changed += 1
    return changed

"""Remote-worker determinism sweep: TCP transport vs. the serial engine.

The acceptance bar for :class:`~repro.distributed.remote.RemoteCoordinator`
is the same one the in-host scaling sweep enforces — **byte-identical
merged output** — extended across transport faults and worker loss:

* transient network faults (delay/duplication absorbed by the retry
  layer) must leave the stream untouched;
* a worker crash between epochs must reproduce exactly the stream a
  scripted serial ``fail_zone`` / ``recover_zone`` pair emits at the
  same boundary.

:func:`run_remote` runs the Table III workload through a remote pool
(optionally behind :class:`~repro.faults.network.NetFaultProxy` shims,
optionally crashing scripted workers mid-run), replays any crashes as
scripted failovers against the serial :class:`Coordinator`, and compares
SHA-256 digests.  ``repro-spire bench --remote-workers N`` records the
result under the ``remote`` key of ``BENCH_table3.json``; the CI
``remote-smoke`` job gates on ``streams_identical``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from typing import Sequence

from repro.distributed import Coordinator, RemoteCoordinator, RetryPolicy, partition_by_location
from repro.distributed.remote import WorkerDaemon
from repro.events.codec import encode_stream
from repro.experiments.table3 import (
    DEFAULT_CASES_PER_PALLET,
    DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_MILESTONES,
    DEFAULT_SEED,
    duration_for,
    machine_info,
    scaling_zone_assignment,
    table3_config,
)
from repro.faults.network import NetFaultProxy, WorkerCrash, split_net_schedule
from repro.simulator.warehouse import WarehouseSimulator

__all__ = ["RemoteHarness", "run_remote", "CRASH_SETTLE_S"]

#: grace after a scripted daemon crash, letting the FIN reach the
#: coordinator so the next epoch's EOF probe sees a *boundary* death
#: (the deterministic failover path) rather than a mid-epoch one
CRASH_SETTLE_S = 0.25


class RemoteHarness:
    """One remote worker pool, ready to be faulted.

    Spawns ``workers`` in-process :class:`WorkerDaemon` threads, threads
    each connection through a :class:`NetFaultProxy` when ``net_specs``
    are given, and builds the :class:`RemoteCoordinator` on top.  Owns
    the teardown of all three layers.
    """

    def __init__(
        self,
        zones,
        workers: int,
        net_specs: Sequence = (),
        net_seed: int = 0,
        policy: RetryPolicy | None = None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        metrics=None,
    ) -> None:
        self.daemons = [WorkerDaemon() for _ in range(workers)]
        for daemon in self.daemons:
            daemon.start()
        self.proxies: list[NetFaultProxy] = []
        addresses = [daemon.address for daemon in self.daemons]
        if net_specs:
            self.proxies = [
                NetFaultProxy(address, net_specs, seed=net_seed + i)
                for i, address in enumerate(addresses)
            ]
            addresses = [proxy.address for proxy in self.proxies]
        try:
            self.coordinator = RemoteCoordinator(
                zones,
                addresses=addresses,
                policy=policy,
                checkpoint_interval=checkpoint_interval,
                metrics=metrics,
            )
        except BaseException:
            self._stop_transport()
            raise

    def crash_worker(self, index: int) -> list[str]:
        """Hard-crash one daemon; returns the zones it hosted.

        The hosted-zone list is captured *before* the crash so a serial
        reference run can script the equivalent ``fail_zone`` /
        ``recover_zone`` pair for each.
        """
        handle = self.coordinator.supervisor.workers[index]
        hosted = sorted(
            zone_id
            for zone_id, worker in self.coordinator._worker_of_zone.items()
            if worker is handle
        )
        self.daemons[index].crash()
        time.sleep(CRASH_SETTLE_S)
        return hosted

    def _stop_transport(self) -> None:
        for proxy in self.proxies:
            proxy.stop()
        for daemon in self.daemons:
            daemon.stop()

    def close(self) -> None:
        self.coordinator.close()
        self._stop_transport()

    def __enter__(self) -> "RemoteHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _zones(sim, params=None):
    return partition_by_location(
        sim.layout.readers,
        scaling_zone_assignment(sim.config.num_shelves),
        sim.layout.registry,
        params=params,
    )


def run_remote(
    milestones: tuple[int, ...] | list[int] = DEFAULT_MILESTONES,
    workers: int = 3,
    cases_per_pallet: int = DEFAULT_CASES_PER_PALLET,
    seed: int = DEFAULT_SEED,
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    policy: RetryPolicy | None = None,
    schedule: Sequence = (),
    net_seed: int = 0,
) -> dict:
    """The remote determinism sweep recorded under ``BENCH_table3.json``'s
    ``remote`` key.

    ``schedule`` may mix :mod:`repro.faults.network` transport specs
    (applied by per-worker proxies) and :class:`WorkerCrash` entries
    (applied by crashing the named daemon just before the given epoch —
    which must be at least 1, so a prior boundary exists to fail over
    at).  Stream-level fault specs are rejected: this sweep measures the
    transport, not ingestion.
    """
    stream_specs, net_specs, crashes = split_net_schedule(schedule)
    if stream_specs:
        raise ValueError(
            f"run_remote takes transport faults only; got stream spec(s) {stream_specs}"
        )
    for crash in crashes:
        if not 0 <= crash.worker < workers:
            raise ValueError(f"worker_crash names worker {crash.worker} of {workers}")
        if crash.at_epoch < 1:
            raise ValueError("worker_crash at_epoch must be >= 1")
    crash_at = {crash.at_epoch: crash.worker for crash in crashes}

    config = table3_config(cases_per_pallet, duration_for(milestones, cases_per_pallet), seed)
    sim = WarehouseSimulator(config).run()

    # --- the remote run (recording what each crash took down) ----------
    scripted: list[tuple[int, list[str]]] = []
    digest = hashlib.sha256()
    pending = sorted(milestones)
    rows: list[dict] = []
    win_wall = 0.0
    win_epochs = 0
    messages = 0
    with RemoteHarness(
        _zones(sim),
        workers,
        net_specs=net_specs,
        net_seed=net_seed,
        policy=policy,
        checkpoint_interval=checkpoint_interval,
    ) as harness:
        coordinator = harness.coordinator
        started = time.perf_counter()
        for readings in sim.stream:
            if readings.epoch in crash_at:
                hosted = harness.crash_worker(crash_at[readings.epoch])
                scripted.append((readings.epoch, hosted))
            t0 = time.perf_counter()
            result = coordinator.process_epoch(readings)
            win_wall += time.perf_counter() - t0
            win_epochs += 1
            messages += len(result.messages)
            digest.update(encode_stream(result.messages))
            if pending and coordinator.tracked_objects >= pending[0]:
                rows.append(
                    {
                        "milestone": pending.pop(0),
                        "objects": coordinator.tracked_objects,
                        "epoch": readings.epoch,
                        "epochs_in_window": win_epochs,
                        "avg_epoch_s": win_wall / win_epochs,
                    }
                )
                win_wall = 0.0
                win_epochs = 0
        total_s = time.perf_counter() - started
        supervisor_stats = dataclasses.asdict(coordinator.supervisor.stats)
        warning_counts = dict(coordinator.quarantine.counts())
        ipc = {
            "bytes_to_workers": coordinator.stats.bytes_to_workers,
            "bytes_from_workers": coordinator.stats.bytes_from_workers,
            "fanout_s": coordinator.stats.fanout_s,
            "fanin_wait_s": coordinator.stats.fanin_wait_s,
        }

    # --- the serial reference, with each crash replayed as a scripted
    # --- failover at the same boundary ---------------------------------
    actions = {epoch: hosted for epoch, hosted in scripted}
    serial = Coordinator(_zones(sim), checkpoint_interval=checkpoint_interval)
    serial_digest = hashlib.sha256()
    serial_messages = 0
    started = time.perf_counter()
    for readings in sim.stream:
        if readings.epoch in actions:
            spliced = []
            for zone_id in actions[readings.epoch]:
                spliced.extend(serial.fail_zone(zone_id, at=readings.epoch - 1))
            for zone_id in actions[readings.epoch]:
                spliced.extend(serial.recover_zone(zone_id, at=readings.epoch - 1))
            serial_messages += len(spliced)
            serial_digest.update(encode_stream(spliced))
        result = serial.process_epoch(readings)
        serial_messages += len(result.messages)
        serial_digest.update(encode_stream(result.messages))
    serial_total_s = time.perf_counter() - started

    return {
        "workers": workers,
        "transport": "tcp",
        "policy": dataclasses.asdict(policy) if policy is not None else None,
        "net_schedule": [type(spec).__name__ for spec in net_specs],
        "crashes": [dataclasses.asdict(crash) for crash in crashes],
        "workload": {
            "milestones": list(milestones),
            "cases_per_pallet": cases_per_pallet,
            "duration": config.duration,
            "seed": seed,
            "checkpoint_interval": checkpoint_interval,
            "zones": len(scaling_zone_assignment(config.num_shelves)),
        },
        "machine": machine_info(),
        "remote": {
            "milestones": rows,
            "messages": messages,
            "total_s": total_s,
            "stream_sha256": digest.hexdigest(),
            "supervisor": supervisor_stats,
            "warnings": warning_counts,
            "ipc": ipc,
        },
        "serial": {
            "messages": serial_messages,
            "total_s": serial_total_s,
            "stream_sha256": serial_digest.hexdigest(),
        },
        "streams_identical": digest.hexdigest() == serial_digest.hexdigest(),
    }

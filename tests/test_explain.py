"""Unit tests for the explanation/diagnostics API."""

import pytest

from repro.core.capture import ReaderInfo
from repro.core.explain import explain_object
from repro.core.pipeline import Spire
from repro.model.locations import UNKNOWN_COLOR
from repro.model.objects import PackagingLevel

from tests.conftest import case, epoch_readings, item, make_deployment

DOCK = ReaderInfo(reader_id=0, color=0)
BELT = ReaderInfo(reader_id=1, color=1, is_special=True, singulation_level=PackagingLevel.CASE)

DEPLOYMENT = make_deployment(DOCK, BELT)


@pytest.fixture
def spire() -> Spire:
    s = Spire(DEPLOYMENT)
    s.process_epoch(epoch_readings(0, {0: [case(1), case(2), item(1)]}))
    s.process_epoch(epoch_readings(1, {1: [case(1), item(1)]}))  # belt confirms
    s.process_epoch(epoch_readings(2, {0: [case(1), case(2), item(1)]}))
    return s


class TestExplainObject:
    def test_unknown_object_returns_none(self, spire):
        assert explain_object(spire, item(99)) is None

    def test_observed_object(self, spire):
        explanation = explain_object(spire, item(1))
        assert explanation.observed_now
        assert explanation.recent_color == DOCK.color
        assert explanation.location_distribution == {DOCK.color: 1.0}
        assert explanation.reported_location == DOCK.color

    def test_confirmation_surfaces(self, spire):
        explanation = explain_object(spire, item(1))
        assert explanation.confirmed_parent == case(1)
        assert explanation.confirmed_at == 1
        confirmed = [c for c in explanation.candidates if c.is_confirmed]
        assert len(confirmed) == 1 and confirmed[0].container == case(1)

    def test_candidates_sorted_by_probability(self, spire):
        explanation = explain_object(spire, item(1))
        probs = [c.probability for c in explanation.candidates]
        assert probs == sorted(probs, reverse=True)
        assert explanation.candidates[0].container == case(1)

    def test_unobserved_object_distribution(self, spire):
        spire.process_epoch(epoch_readings(3, {0: [case(1), case(2)]}))  # item missed
        explanation = explain_object(spire, item(1), now=4)
        assert not explanation.observed_now
        assert sum(explanation.location_distribution.values()) == pytest.approx(1.0)
        assert UNKNOWN_COLOR in explanation.location_distribution

    def test_adaptive_beta_reported(self):
        from repro.core.params import InferenceParams

        spire = Spire(DEPLOYMENT, InferenceParams(adaptive_beta=True))
        spire.process_epoch(epoch_readings(0, {1: [case(1), item(1)]}))
        explanation = explain_object(spire, item(1))
        assert 0.0 <= explanation.effective_beta <= 1.0


class TestRendering:
    def test_render_without_registry(self, spire):
        text = explain_object(spire, item(1)).render()
        assert "object item:1" in text
        assert "candidate containers" in text
        assert "[confirmed]" in text

    def test_render_with_registry(self, spire):
        from repro.model.locations import Location, LocationRegistry

        registry = LocationRegistry([Location(0, "dock"), Location(1, "belt")])
        text = explain_object(spire, item(1)).render(registry)
        assert "dock" in text

    def test_render_object_without_candidates(self, spire):
        text = explain_object(spire, case(2)).render()
        assert "no candidate containers" in text

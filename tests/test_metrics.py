"""Unit tests for the metrics package (accuracy, events, sizing, delay)."""

import pytest

from repro.core.capture import ReaderInfo
from repro.core.pipeline import Spire
from repro.events.messages import (
    EVENT_MESSAGE_BYTES,
    end_location,
    missing,
    start_containment,
    start_location,
)
from repro.metrics.accuracy import AccuracyAccumulator, ScoringPolicy
from repro.metrics.delay import detection_delays
from repro.metrics.events import match_events
from repro.metrics.sizing import (
    compression_ratio,
    containment_only,
    location_only,
    output_bytes,
)
from repro.model.locations import Location
from repro.model.truth import TruthSnapshot
from repro.model.world import PhysicalWorld

from tests.conftest import case, epoch_readings, item, make_deployment

DOCK_LOC = Location(0, "dock")
SHELF_LOC = Location(1, "shelf")
DOCK = ReaderInfo(reader_id=0, color=0)
SHELF = ReaderInfo(reader_id=1, color=1)


def snapshot(epoch, locations, containers=None):
    return TruthSnapshot(epoch=epoch, locations=locations, containers=containers or {})


class TestAccuracy:
    def _spire_with(self, *epochs):
        spire = Spire(make_deployment(DOCK, SHELF))
        for readings in epochs:
            spire.process_epoch(readings)
        return spire

    def test_correct_estimates_score_zero_errors(self):
        spire = self._spire_with(epoch_readings(0, {0: [case(1), item(1)]}))
        acc = AccuracyAccumulator()
        acc.score_epoch(
            spire,
            snapshot(0, {case(1): DOCK_LOC, item(1): DOCK_LOC}, {item(1): case(1)}),
        )
        assert acc.location_error_rate == 0.0
        assert acc.containment_error_rate == 0.0
        assert acc.location_total == 2

    def test_wrong_location_counted(self):
        spire = self._spire_with(epoch_readings(0, {0: [item(1)]}))
        acc = AccuracyAccumulator()
        acc.score_epoch(spire, snapshot(0, {item(1): SHELF_LOC}))
        assert acc.location_errors == 1

    def test_untracked_object_scores_as_unknown(self):
        spire = self._spire_with(epoch_readings(0, {}))
        acc = AccuracyAccumulator()
        acc.score_epoch(spire, snapshot(0, {item(1): DOCK_LOC}))
        # item 1 never observed: estimate unknown vs truth dock -> error
        assert acc.location_errors == 1

    def test_exclusion_filters_locations(self):
        spire = self._spire_with(epoch_readings(0, {0: [item(1)]}))
        acc = AccuracyAccumulator(exclude_colors=frozenset({0}))
        acc.score_epoch(spire, snapshot(0, {item(1): DOCK_LOC}))
        assert acc.location_total == 0

    def test_inferred_only_skips_observed(self):
        spire = self._spire_with(epoch_readings(0, {0: [case(1), item(1)]}))
        acc = AccuracyAccumulator(policy=ScoringPolicy.INFERRED_ONLY)
        acc.score_epoch(
            spire, snapshot(0, {case(1): DOCK_LOC, item(1): DOCK_LOC})
        )
        assert acc.location_total == 0  # both observed this epoch

    def test_hard_only_requires_truth_change(self):
        spire = self._spire_with(
            epoch_readings(0, {0: [case(1), item(1)]}),
            epoch_readings(1, {0: [case(1)]}),  # item missed
        )
        acc = AccuracyAccumulator(policy=ScoringPolicy.HARD_ONLY)
        # item truly still at dock: not a hard case
        acc.score_epoch(spire, snapshot(1, {case(1): DOCK_LOC, item(1): DOCK_LOC}))
        assert acc.location_total == 0
        # item truly moved to the shelf while unobserved: hard case
        acc.score_epoch(spire, snapshot(1, {case(1): DOCK_LOC, item(1): SHELF_LOC}))
        assert acc.location_total == 1

    def test_ghost_objects_scored_against_unknown(self):
        spire = self._spire_with(epoch_readings(0, {0: [item(1)]}))
        acc = AccuracyAccumulator()
        acc.score_epoch(spire, snapshot(0, {}))  # world is empty: ghost
        assert acc.location_total == 1
        assert acc.location_errors == 1  # still estimated at the dock

    def test_containment_skips_trivial_agreement(self):
        spire = self._spire_with(epoch_readings(0, {0: [case(1)]}))
        acc = AccuracyAccumulator()
        acc.score_epoch(spire, snapshot(0, {case(1): DOCK_LOC}))
        assert acc.containment_total == 0  # both sides: no container

    def test_per_level_breakdown(self):
        spire = self._spire_with(epoch_readings(0, {0: [case(1), item(1)]}))
        acc = AccuracyAccumulator()
        acc.score_epoch(
            spire,
            snapshot(0, {case(1): DOCK_LOC, item(1): SHELF_LOC}, {item(1): case(1)}),
        )
        from repro.model.objects import PackagingLevel

        # the case's location is right, the item's is wrong
        assert acc.location_error_rate_for_level(PackagingLevel.CASE) == 0.0
        assert acc.location_error_rate_for_level(PackagingLevel.ITEM) == 1.0
        # unseen level reports a clean 0 over an empty population
        assert acc.location_error_rate_for_level(PackagingLevel.PALLET) == 0.0

    def test_summary_keys(self):
        acc = AccuracyAccumulator()
        assert set(acc.summary()) == {
            "location_error_rate",
            "containment_error_rate",
            "location_total",
            "containment_total",
        }


class TestEventMatching:
    def test_perfect_match(self):
        stream = [start_location(item(1), 0, 5), end_location(item(1), 0, 5, 9)]
        result = match_events(stream, list(stream), tolerance=0)
        assert result.precision == result.recall == result.f_measure == 1.0

    def test_tolerance_window(self):
        out = [start_location(item(1), 0, 7)]
        ref = [start_location(item(1), 0, 5)]
        assert match_events(out, ref, tolerance=1).matched == 0
        assert match_events(out, ref, tolerance=2).matched == 1

    def test_end_events_match_on_ve(self):
        out = [end_location(item(1), 0, 0, 10)]
        ref = [end_location(item(1), 0, 3, 11)]
        assert match_events(out, ref, tolerance=1).matched == 1

    def test_one_to_one_matching(self):
        out = [start_location(item(1), 0, 5), start_location(item(1), 0, 6)]
        ref = [start_location(item(1), 0, 5)]
        result = match_events(out, ref, tolerance=5)
        assert result.matched == 1
        assert result.precision == 0.5 and result.recall == 1.0

    def test_different_objects_never_match(self):
        out = [start_location(item(1), 0, 5)]
        ref = [start_location(item(2), 0, 5)]
        assert match_events(out, ref, tolerance=10).matched == 0

    def test_empty_streams(self):
        result = match_events([], [], tolerance=0)
        assert result.f_measure == 0.0


class TestSizing:
    def test_filters(self):
        msgs = [
            start_location(item(1), 0, 0),
            start_containment(item(1), case(1), 0),
            missing(item(1), 0, 5),
        ]
        assert len(location_only(msgs)) == 2
        assert len(containment_only(msgs)) == 1

    def test_ratio(self):
        msgs = [start_location(item(1), 0, 0)]
        assert compression_ratio(msgs, raw_bytes=EVENT_MESSAGE_BYTES * 4) == 0.25
        assert output_bytes(msgs) == EVENT_MESSAGE_BYTES

    def test_zero_raw_bytes_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio([], raw_bytes=0)


class TestDetectionDelay:
    def test_delay_measured_from_removal(self):
        messages = [missing(item(1), 0, 110)]
        report = detection_delays(messages, {item(1): 100})
        assert report.delays == {item(1): 10}
        assert report.detection_rate == 1.0
        assert report.mean_delay == 10

    def test_earlier_missing_ignored(self):
        messages = [missing(item(1), 0, 50), missing(item(1), 0, 130)]
        report = detection_delays(messages, {item(1): 100})
        assert report.delays == {item(1): 30}

    def test_undetected_objects_reported(self):
        report = detection_delays([], {item(1): 100})
        assert report.undetected == frozenset({item(1)})
        assert report.detection_rate == 0.0

    def test_max_delay(self):
        messages = [missing(item(1), 0, 110), missing(item(2), 0, 160)]
        report = detection_delays(messages, {item(1): 100, item(2): 100})
        assert report.max_delay == 60

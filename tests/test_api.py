"""`SpireSession` facade tests: one constructor over every execution mode.

The session is a composition layer (DESIGN.md §11): whatever mode the
config selects — local :class:`Spire`, serial :class:`Coordinator`,
multi-process :class:`ParallelCoordinator` — processing a stream through
the session must produce exactly what driving the wrapped engine
directly would, and the cross-cutting extras (resilient ingestion,
checkpoints, metrics, trace logs, TCP serving) ride along.
"""

from __future__ import annotations

import asyncio
import json
import re

import pytest

from repro.api import SpireConfig, SpireSession
from repro.core.checkpoint import loads_spire
from repro.core.pipeline import Deployment, Spire
from repro.distributed import Coordinator, ParallelCoordinator, partition_by_location
from repro.events.codec import encode_stream
from repro.events.wellformed import check_well_formed
from repro.serving.client import SpireClient
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator

ZONE_MAP = {
    "inbound": ["entry-door", "receiving-belt"],
    "storage": ["shelf-1", "shelf-2"],
    "outbound": ["packaging-area", "exit-belt", "exit-door"],
}


@pytest.fixture(scope="module")
def sim():
    config = SimulationConfig(
        duration=150,
        pallet_period=60,
        cases_per_pallet_min=2,
        cases_per_pallet_max=3,
        items_per_case=4,
        read_rate=0.9,
        shelf_read_period=10,
        num_shelves=2,
        shelving_time_mean=80,
        shelving_time_jitter=20,
        seed=23,
    )
    return WarehouseSimulator(config).run()


def _messages(results) -> bytes:
    return encode_stream([m for r in results for m in r.messages])


# ---------------------------------------------------------------------------
# construction / mode selection
# ---------------------------------------------------------------------------


def test_config_validates_readers():
    with pytest.raises(ValueError, match="non-empty"):
        SpireSession(SpireConfig())


def test_trace_with_workers_is_rejected(sim, tmp_path):
    config = SpireConfig.from_simulation(
        sim, workers=2, trace_path=tmp_path / "t.jsonl"
    )
    with pytest.raises(ValueError, match="trace_path is not supported with workers"):
        SpireSession(config)


def test_mode_selection(sim):
    local = SpireSession(SpireConfig.from_simulation(sim))
    assert local.mode == "local"
    assert isinstance(local.engine, Spire)
    assert local.coordinator is None

    with SpireSession(SpireConfig.from_simulation(sim, zone_map=ZONE_MAP)) as serial:
        assert serial.mode == "serial"
        assert type(serial.coordinator) is Coordinator
        assert serial.spire is None
        assert set(serial.coordinator.zones) == set(ZONE_MAP)


def test_workers_without_zone_map_builds_one_site_zone(sim):
    with SpireSession(SpireConfig.from_simulation(sim, workers=1)) as session:
        assert session.mode == "parallel"
        assert isinstance(session.coordinator, ParallelCoordinator)
        assert set(session.coordinator.zones) == {"site"}


def test_from_simulation_and_overrides(sim):
    config = SpireConfig.from_simulation(sim, compression_level=1)
    assert list(config.readers) == list(sim.layout.readers)
    assert config.registry is sim.layout.registry
    assert config.compression_level == 1
    assert config.with_overrides(strict=True).strict is True
    assert config.strict is False  # with_overrides does not mutate


# ---------------------------------------------------------------------------
# processing equivalence: session == wrapped engine, per mode
# ---------------------------------------------------------------------------


def test_local_session_matches_plain_spire(sim):
    with SpireSession(SpireConfig.from_simulation(sim)) as session:
        results = session.process(sim.stream)
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    spire = Spire(deployment)
    direct = [spire.process_epoch(readings) for readings in sim.stream]
    assert _messages(results) == _messages(direct)
    assert [r.epoch for r in results] == [r.epoch for r in direct]


def test_serial_session_matches_plain_coordinator(sim):
    with SpireSession(SpireConfig.from_simulation(sim, zone_map=ZONE_MAP)) as session:
        results = session.process(sim.stream)
    zones = partition_by_location(sim.layout.readers, ZONE_MAP, sim.layout.registry)
    direct = Coordinator(zones).run(sim.stream)
    assert _messages(results) == _messages(direct)
    check_well_formed([m for r in results for m in r.messages])


def test_parallel_session_matches_serial_stream(sim):
    with SpireSession(SpireConfig.from_simulation(sim, zone_map=ZONE_MAP)) as serial:
        expected = _messages(serial.process(sim.stream))
    with SpireSession(
        SpireConfig.from_simulation(sim, zone_map=ZONE_MAP, workers=2)
    ) as parallel:
        assert parallel.mode == "parallel"
        assert _messages(parallel.process(sim.stream)) == expected


def test_resilient_ingestion_synthesizes_gaps(sim):
    epochs = list(sim.stream)
    with_gap = epochs[:40] + epochs[43:]  # drop three whole epochs
    with SpireSession(
        SpireConfig.from_simulation(sim, resilient=True, max_delay=2)
    ) as session:
        results = session.process(with_gap)
    # the resilient wrapper re-synthesizes the missing epochs
    assert [r.epoch for r in results] == [e.epoch for e in epochs]


# ---------------------------------------------------------------------------
# queries and fault operations
# ---------------------------------------------------------------------------


def test_site_wide_queries_each_mode(sim):
    tags = sorted(sim.truth.snapshots[-1].locations)[:5]
    assert tags
    answers = []
    for overrides in ({}, {"zone_map": ZONE_MAP}, {"zone_map": ZONE_MAP, "workers": 2}):
        with SpireSession(SpireConfig.from_simulation(sim, **overrides)) as session:
            session.process(sim.stream)
            answers.append(
                [(session.location_of(t), session.container_of(t)) for t in tags]
            )
            owner = session.owner_of(tags[0])
            assert owner == "local" if session.mode == "local" else owner in ZONE_MAP
    assert answers[0] == answers[1] == answers[2]


def test_fault_operations_require_sharding(sim):
    with SpireSession(SpireConfig.from_simulation(sim)) as session:
        with pytest.raises(ValueError, match="sharded session"):
            session.fail_zone("storage")
        with pytest.raises(ValueError, match="sharded session"):
            session.recover_zone("storage")


def test_failover_through_the_session(sim):
    epochs = list(sim.stream)
    config = SpireConfig.from_simulation(sim, zone_map=ZONE_MAP, checkpoint_interval=20)
    with SpireSession(config) as session:
        messages = []
        for i, readings in enumerate(epochs):
            if i == 60:
                messages.extend(session.fail_zone("storage"))
            if i == 90:
                messages.extend(session.recover_zone("storage"))
            messages.extend(session.process_epoch(readings).messages)
    check_well_formed(messages)


# ---------------------------------------------------------------------------
# checkpointing
# ---------------------------------------------------------------------------


def test_checkpoint_local(sim):
    with SpireSession(SpireConfig.from_simulation(sim)) as session:
        session.process(sim.stream)
        blobs = session.checkpoint()
        assert set(blobs) == {"local"}
        restored = loads_spire(blobs["local"])
        tag = sorted(sim.truth.snapshots[-1].locations)[0]
        assert restored.location_of(tag) == session.location_of(tag)


def test_checkpoint_serial_covers_every_zone(sim):
    with SpireSession(SpireConfig.from_simulation(sim, zone_map=ZONE_MAP)) as session:
        session.process(sim.stream)
        blobs = session.checkpoint()
    assert set(blobs) == set(ZONE_MAP)
    assert all(isinstance(b, bytes) and b for b in blobs.values())


def test_checkpoint_parallel_requires_interval(sim):
    epochs = list(sim.stream)[:30]
    with SpireSession(
        SpireConfig.from_simulation(sim, zone_map=ZONE_MAP, workers=2)
    ) as session:
        session.process(epochs)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            session.checkpoint()
    with SpireSession(
        SpireConfig.from_simulation(
            sim, zone_map=ZONE_MAP, workers=2, checkpoint_interval=10
        )
    ) as session:
        session.process(epochs)
        blobs = session.checkpoint()
    assert set(blobs) == set(ZONE_MAP)


# ---------------------------------------------------------------------------
# telemetry
# ---------------------------------------------------------------------------


def test_metrics_disabled_snapshot_is_empty(sim):
    with SpireSession(SpireConfig.from_simulation(sim)) as session:
        session.process(list(sim.stream)[:10])
        assert session.metrics is None
        assert session.metrics_snapshot() == {"series": [], "help": {}}
        assert session.render_metrics() == ""


def test_metrics_enabled_counts_readings(sim):
    epochs = list(sim.stream)
    total = sum(len(tags) for e in epochs for tags in e.by_reader.values())
    with SpireSession(SpireConfig.from_simulation(sim, metrics=True)) as session:
        session.process(epochs)
        snapshot = session.metrics_snapshot()
        readings = [
            e for e in snapshot["series"] if e["name"] == "spire_readings_total"
        ]
        assert sum(e["value"] for e in readings) == total
        assert "spire_readings_total" in session.render_metrics()


def test_trace_log_records_each_epoch(sim, tmp_path):
    path = tmp_path / "trace.jsonl"
    epochs = list(sim.stream)[:20]
    with SpireSession(SpireConfig.from_simulation(sim, trace_path=path)) as session:
        session.process(epochs)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    epoch_records = [r for r in records if r["kind"] == "epoch"]
    assert [r["epoch"] for r in epoch_records] == [e.epoch for e in epochs]
    assert all({"update", "inference"} <= set(r["spans"]) for r in epoch_records)


def test_serial_trace_is_zone_tagged(sim, tmp_path):
    path = tmp_path / "trace.jsonl"
    epochs = list(sim.stream)[:20]
    config = SpireConfig.from_simulation(sim, zone_map=ZONE_MAP, trace_path=path)
    with SpireSession(config) as session:
        session.process(epochs)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    zones = {r["zone"] for r in records if r["kind"] == "epoch"}
    assert zones == set(ZONE_MAP)


# ---------------------------------------------------------------------------
# serving
# ---------------------------------------------------------------------------

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" -?[0-9].*$"  # value (int, float, scientific)
)


def assert_prometheus_well_formed(text: str) -> None:
    """Structural checks on a text-exposition scrape (the CI serving-smoke
    contract): every sample line parses, every series has a # TYPE."""
    assert text.endswith("\n")
    typed = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            name, kind = line.split()[2:4]
            assert kind in {"counter", "gauge", "histogram"}
            typed.add(name)
        elif not line.startswith("#"):
            assert _SAMPLE_LINE.match(line), line
            base = line.split("{")[0].split(" ")[0]
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base.removesuffix(suffix) in typed:
                    base = base.removesuffix(suffix)
            assert base in typed, line


def test_serve_and_pump_over_tcp(sim):
    async def run():
        config = SpireConfig.from_simulation(sim, zone_map=ZONE_MAP, metrics=True)
        with SpireSession(config) as session:
            async with session.serve() as server:
                pumped = await session.pump(server, sim.stream)
                client = await SpireClient.connect(server.host, server.port)
                try:
                    stats = await client.stats()
                    text = await client.metrics()
                finally:
                    await client.close()
        return pumped, stats, text

    pumped, stats, text = asyncio.run(run())
    assert pumped == len(sim.stream)
    assert stats["epochs_published"] == pumped
    # the scrape carries serving counters and zone-labelled substrate ones
    assert f"spire_serving_epochs_published_total {pumped}" in text
    assert 'spire_readings_total{zone="inbound"}' in text
    for core in (
        "spire_serving_queries_total",
        "spire_serving_query_latency_microseconds_count",
        "spire_epochs_total",
        "spire_update_seconds_count",
        "spire_coordinator_epochs_total",
    ):
        assert core in text, core
    assert_prometheus_well_formed(text)

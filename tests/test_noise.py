"""Unit tests for the Gilbert–Elliott burst-loss channel."""

import numpy as np
import pytest

from repro.readers.noise import BurstLossModel
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator

from tests.conftest import item


class TestValidation:
    def test_rates_in_unit_interval(self):
        with pytest.raises(ValueError):
            BurstLossModel(good_read_rate=1.5)
        with pytest.raises(ValueError):
            BurstLossModel(p_good_to_bad=-0.1)

    def test_good_must_dominate_bad(self):
        with pytest.raises(ValueError):
            BurstLossModel(good_read_rate=0.3, bad_read_rate=0.8)

    def test_bursts_must_end(self):
        with pytest.raises(ValueError):
            BurstLossModel(p_bad_to_good=0.0)

    def test_from_average_bounds(self):
        with pytest.raises(ValueError):
            BurstLossModel.from_average(0.99, good_read_rate=0.9)
        with pytest.raises(ValueError):
            BurstLossModel.from_average(0.8, mean_burst=0.5)


class TestStationaryBehaviour:
    def test_from_average_hits_target_rate(self):
        for target in (0.6, 0.8, 0.95):
            model = BurstLossModel.from_average(target, mean_burst=5.0)
            assert model.average_read_rate == pytest.approx(target, abs=0.01)

    def test_empirical_rate_matches_target(self):
        model = BurstLossModel.from_average(0.8, mean_burst=4.0)
        rng = np.random.default_rng(1)
        tag = item(1)
        hits = sum(
            1 for _ in range(20_000) if model.observe(0, [tag], rng)
        )
        assert hits / 20_000 == pytest.approx(0.8, abs=0.02)

    def test_losses_are_correlated(self):
        """Consecutive misses cluster far beyond the i.i.d. expectation."""
        model = BurstLossModel.from_average(0.8, mean_burst=8.0, bad_read_rate=0.0)
        rng = np.random.default_rng(2)
        tag = item(1)
        outcomes = [bool(model.observe(0, [tag], rng)) for _ in range(30_000)]
        # P(miss | previous miss) for the burst channel >> 1 - rate
        misses_after_miss = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if not a and not b
        )
        misses = outcomes.count(False)
        conditional = misses_after_miss / max(1, misses - 1)
        assert conditional > 0.5  # i.i.d. at 0.8 would give ~0.2

    def test_channels_independent_per_tag(self):
        model = BurstLossModel(p_good_to_bad=1.0, p_bad_to_good=0.01, bad_read_rate=0.0)
        rng = np.random.default_rng(3)
        model.observe(0, [item(1)], rng)
        assert model.tags_in_burst == 1
        model.forget(item(1))
        assert model.tags_in_burst == 0


class TestSimulatorIntegration:
    def _config(self, burst):
        return SimulationConfig(
            duration=400,
            pallet_period=100,
            cases_per_pallet_min=2,
            cases_per_pallet_max=2,
            items_per_case=4,
            read_rate=0.8,
            shelf_read_period=10,
            num_shelves=2,
            shelving_time_mean=80,
            shelving_time_jitter=10,
            burst_mean_length=burst,
            seed=4,
        )

    def test_invalid_burst_config_rejected(self):
        with pytest.raises(ValueError):
            self._config(0.5)

    def test_bursty_trace_keeps_average_volume(self):
        iid = WarehouseSimulator(self._config(0.0)).run()
        bursty = WarehouseSimulator(self._config(6.0)).run()
        ratio = bursty.stream.total_readings / iid.stream.total_readings
        assert 0.85 < ratio < 1.15  # same average rate, different structure

    def test_bursty_losses_harder_for_inference(self):
        """Bursts of misses defeat single-miss smoothing: errors should not
        *decrease* when losses become correlated at the same average rate."""
        from repro.experiments.runner import run_spire
        from repro.metrics.accuracy import ScoringPolicy

        iid = run_spire(
            WarehouseSimulator(self._config(0.0)).run(),
            policies=(ScoringPolicy.ALL,),
        )
        bursty = run_spire(
            WarehouseSimulator(self._config(8.0)).run(),
            policies=(ScoringPolicy.ALL,),
        )
        iid_err = iid.accuracy[ScoringPolicy.ALL].location_error_rate
        bursty_err = bursty.accuracy[ScoringPolicy.ALL].location_error_rate
        assert bursty_err > iid_err - 0.02

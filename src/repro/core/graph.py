"""The time-varying colored graph model (Section III-A).

Nodes are RFID-tagged objects, arranged in layers by packaging level; a
node's *color* is the location where it was observed in the current epoch
(``None`` when unobserved), and uncolored nodes remember their most recent
color and when they were last seen.  Directed edges encode *possible*
containment (parent → child) and carry a bit-vector of recent co-location
evidence.  Each node additionally remembers its last special-reader
confirmed parent, when that confirmation happened, and how many conflicting
observations have accumulated since.

Change tracking (see DESIGN.md §8): every node carries a monotone
``version`` counter bumped whenever an input of its *containment decision*
changes value (edge set, co-location history, confirmation state), and the
graph keeps a per-epoch **dirty set** of nodes whose color state, edges or
read evidence changed this epoch.  Incremental inference reuses a node's
cached decision while its version is unchanged; the dirty set drives
activity-proportional bookkeeping and diagnostics.
"""

from __future__ import annotations

import heapq
import sys
from typing import Iterable, Iterator

from repro.model.locations import UNKNOWN_COLOR
from repro.model.objects import PackagingLevel, TagId

_MIN_LEVEL = min(PackagingLevel).value
_MAX_LEVEL = max(PackagingLevel).value


class GraphEdge:
    """A possible containment relationship ``parent contains child``.

    ``history`` is the ``recent_colocations`` bit-vector of §III-A stored as
    an int: bit 0 is the most recent epoch with evidence, bit ``i`` the
    evidence from ``i`` evidence-epochs ago.  A bit is pushed whenever an
    epoch colors at least one endpoint (Fig. 4 step 4): 1 if both endpoints
    share a color, 0 otherwise.  ``filled`` counts pushed bits (saturating
    at the configured history size) so weighting can tell genuine zeros from
    never-written positions.
    """

    __slots__ = (
        "parent",
        "child",
        "history",
        "filled",
        "created_at",
        "update_time",
        "prob",
        "confidence",
    )

    def __init__(self, parent: "GraphNode", child: "GraphNode", now: int) -> None:
        self.parent = parent
        self.child = child
        self.history = 0
        self.filled = 0
        self.created_at = now
        self.update_time = now - 1  # statistics not yet updated this epoch
        self.prob = 0.0        # normalised Eq. 2 probability (set by edge inference)
        self.confidence = 0.0  # unnormalised Eq. 2 value (used for pruning)

    def push_history(self, co_located: bool, size: int) -> bool:
        """Shift the co-location bit-vector and record this epoch's bit.

        Returns True when the stored ``(history, filled)`` pair actually
        changed value — an all-zero saturated history shifted by another
        zero is a no-op, and change tracking must not dirty the child then.
        """
        old = self.history
        new = ((old << 1) | int(co_located)) & ((1 << size) - 1)
        self.history = new
        if self.filled < size:
            self.filled += 1
            return True
        return new != old

    def history_bits(self, size: int) -> list[bool]:
        """The bit-vector as a list, most recent first (for tests/debugging)."""
        return [bool((self.history >> i) & 1) for i in range(size)]

    def other(self, node: "GraphNode") -> "GraphNode":
        """The endpoint of this edge that is not ``node``."""
        return self.child if node is self.parent else self.parent

    def __repr__(self) -> str:
        return f"GraphEdge({self.parent.tag} -> {self.child.tag})"


class GraphNode:
    """One RFID-tagged object in the graph.

    ``color`` is the observed location color of the *current* epoch (``None``
    when unobserved this epoch); ``recent_color``/``seen_at`` is the
    (most recent color, seen at) memory of §III-A.  ``parents`` maps the tag
    of each possible container to the connecting edge; ``children`` likewise
    for possible contents.

    ``version`` counts value changes of the node's containment-decision
    inputs (parent edge set, parent edge histories, confirmation state);
    ``decision_*`` cache the containment decision computed at
    ``decision_version`` (see :class:`repro.core.iterative.IterativeInference`).
    ``prev_color`` is the color held at the end of the *previous* epoch,
    maintained by :meth:`Graph.begin_epoch` for dirty-set accounting.
    """

    __slots__ = (
        "tag",
        "level",
        "color",
        "prev_color",
        "recent_color",
        "seen_at",
        "parents",
        "children",
        "confirmed_parent",
        "confirmed_at",
        "confirmed_conflicts",
        "created_at",
        "version",
        "decision_version",
        "decision_container",
        "decision_prob",
    )

    def __init__(self, tag: TagId, now: int) -> None:
        self.tag = tag
        self.level: int = tag.level.value
        self.color: int | None = None
        self.prev_color: int | None = None
        self.recent_color: int | None = None
        self.seen_at = now
        self.parents: dict[TagId, GraphEdge] = {}
        self.children: dict[TagId, GraphEdge] = {}
        self.confirmed_parent: TagId | None = None
        self.confirmed_at = -1
        self.confirmed_conflicts = 0
        self.created_at = now
        self.version = 0
        self.decision_version = -1
        self.decision_container: TagId | None = None
        self.decision_prob = 0.0

    @property
    def is_colored(self) -> bool:
        return self.color is not None

    def set_confirmed_parent(self, parent: TagId, now: int) -> None:
        """Record a special-reader confirmation that ``parent`` contains this object."""
        self.confirmed_parent = parent
        self.confirmed_at = now
        self.confirmed_conflicts = 0

    def record_conflict(self) -> None:
        """Count an observation conflicting with the last confirmation."""
        self.confirmed_conflicts += 1

    def edges(self) -> Iterator[GraphEdge]:
        """All incident edges (parent edges first)."""
        yield from self.parents.values()
        yield from self.children.values()

    def degree(self) -> int:
        return len(self.parents) + len(self.children)

    def __repr__(self) -> str:
        color = self.color if self.color is not None else "-"
        return f"GraphNode({self.tag}, color={color})"


#: Approximate per-node / per-edge memory footprint in bytes, measured once
#: from live instances (slots object + the two per-node dicts).  Used by
#: :meth:`Graph.memory_bytes`, the deterministic stand-in for the paper's
#: JVM heap measurements in Fig. 10.
_NODE_BYTES = (
    sys.getsizeof(GraphNode(TagId(PackagingLevel.ITEM, 1), 0))
    + 2 * sys.getsizeof({})
    + 64  # tag + bookkeeping entries in the graph-level indexes
)
_EDGE_BYTES = (
    sys.getsizeof(
        GraphEdge(
            GraphNode(TagId(PackagingLevel.CASE, 1), 0),
            GraphNode(TagId(PackagingLevel.ITEM, 1), 0),
            0,
        )
    )
    + 2 * 104  # two dict entries (parent.children / child.parents)
)


class Graph:
    """The time-varying colored graph with its layer/color indexes.

    The graph is mutated in an epoch rhythm: :meth:`begin_epoch` clears all
    node colors (observed objects will be re-colored by the capture step),
    then :class:`repro.core.capture.GraphUpdater` applies each reader's
    reading set.  An index from ``(layer, color)`` to the colored nodes
    backs Fig. 4's "closest level above/below containing nodes colored C"
    queries in O(#levels).
    """

    def __init__(self) -> None:
        self._nodes: dict[TagId, GraphNode] = {}
        self._colored: set[GraphNode] = set()
        # level -> color -> set of nodes currently colored that color
        self._by_level_color: dict[int, dict[int, set[GraphNode]]] = {
            level: {} for level in range(_MIN_LEVEL, _MAX_LEVEL + 1)
        }
        self._edge_count = 0
        #: nodes whose color state, edges or read evidence changed this
        #: epoch (cleared by :meth:`begin_epoch`)
        self._dirty: set[GraphNode] = set()
        #: nodes colored in the previous epoch (for lost-color detection)
        self._prev_colored: list[GraphNode] = []
        # lazy min-heap of (seen_at, seq, tag): candidates for staleness
        # pruning, ordered by last-seen epoch.  Entries are pushed on node
        # creation and on explicit deferral; stale entries whose node was
        # refreshed or removed are discarded on pop (see :meth:`pop_stale`).
        self._expiry: list[tuple[int, int, TagId]] = []
        self._expiry_seq = 0
        #: per-tag "not stale before" floors set by defer_expiry, masking
        #: earlier heap entries for the same tag
        self._expiry_hold: dict[TagId, int] = {}

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------

    def __contains__(self, tag: TagId) -> bool:
        return tag in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def get(self, tag: TagId) -> GraphNode | None:
        return self._nodes.get(tag)

    def node(self, tag: TagId) -> GraphNode:
        """Node for ``tag``; raises ``KeyError`` if absent."""
        return self._nodes[tag]

    def nodes(self) -> Iterator[GraphNode]:
        return iter(self._nodes.values())

    def colored_nodes(self) -> Iterable[GraphNode]:
        """Nodes observed (colored) in the current epoch."""
        return self._colored

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def edges(self) -> Iterator[GraphEdge]:
        """All edges, each yielded once (from its parent endpoint)."""
        for node in self._nodes.values():
            yield from node.children.values()

    def memory_bytes(self) -> int:
        """Deterministic estimate of the graph's resident size in bytes."""
        return self.node_count * _NODE_BYTES + self._edge_count * _EDGE_BYTES

    # ------------------------------------------------------------------
    # epoch lifecycle and coloring
    # ------------------------------------------------------------------

    def begin_epoch(self) -> None:
        """Uncolor every node; uncolored nodes keep (recent_color, seen_at).

        Also rolls the per-epoch change tracking: each previously colored
        node's color is remembered as ``prev_color`` (consumed by
        :meth:`set_color` and :meth:`finalize_epoch` for dirty-set
        accounting) and the dirty set is cleared.
        """
        for node in self._prev_colored:
            node.prev_color = None
        prev = list(self._colored)
        for node in prev:
            node.prev_color = node.color
            node.color = None
        self._prev_colored = prev
        for color_index in self._by_level_color.values():
            color_index.clear()
        self._colored.clear()
        self._dirty.clear()

    def finalize_epoch(self) -> None:
        """Close the epoch's dirty-set accounting.

        A node colored last epoch but not this one *lost* its color — a
        color-state change :meth:`set_color` cannot see (it is never called
        for the node), so it is caught here by comparing against
        ``prev_color``.
        """
        dirty = self._dirty
        for node in self._prev_colored:
            if node.color is None:
                dirty.add(node)

    def get_or_create(self, tag: TagId, now: int) -> GraphNode:
        """Node for ``tag``, creating it on first observation (Fig. 4 step 1)."""
        node = self._nodes.get(tag)
        if node is None:
            node = GraphNode(tag, now)
            self._nodes[tag] = node
            self._dirty.add(node)
            self._push_expiry(node.seen_at, tag)
        return node

    def set_color(self, node: GraphNode, color: int, now: int) -> bool:
        """Color ``node`` for the current epoch.

        Returns True when ``color`` is a *new* color for the node — i.e. it
        differs from the node's most recent color — which is what gates edge
        creation in Fig. 4 (see the step-2 optimisation in §III-B).
        """
        if node.color == color:
            return False
        if node.color is not None:
            # re-colored within the epoch (dedup normally prevents this;
            # last writer wins)
            self._by_level_color[node.level][node.color].discard(node)
        is_new = node.recent_color != color
        node.color = color
        node.recent_color = color
        node.seen_at = now
        if node.prev_color != color:
            self._dirty.add(node)
        self._by_level_color[node.level].setdefault(color, set()).add(node)
        self._colored.add(node)
        return is_new

    def colored_at(self, level: int, color: int) -> set[GraphNode]:
        """Nodes at ``level`` currently colored ``color`` (may be empty)."""
        return self._by_level_color.get(level, {}).get(color, set())

    def closest_colored_level(self, level: int, color: int, direction: int) -> int | None:
        """Closest level above (+1) or below (-1) ``level`` with ``color`` nodes."""
        step = 1 if direction > 0 else -1
        candidate = level + step
        while _MIN_LEVEL <= candidate <= _MAX_LEVEL:
            if self.colored_at(candidate, color):
                return candidate
            candidate += step
        return None

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------

    def add_edge(self, parent: GraphNode, child: GraphNode, now: int) -> GraphEdge:
        """Create (or return the existing) edge ``parent -> child``."""
        if parent.level <= child.level:
            raise ValueError(
                f"edges must point down packaging levels: "
                f"{parent.tag} (level {parent.level}) -> {child.tag} (level {child.level})"
            )
        edge = parent.children.get(child.tag)
        if edge is not None:
            return edge
        edge = GraphEdge(parent, child, now)
        parent.children[child.tag] = edge
        child.parents[parent.tag] = edge
        self._edge_count += 1
        # the child's parent set is a containment-decision input; the
        # parent's child set only feeds (always-fresh) node inference
        self.mark_changed(child)
        self._dirty.add(parent)
        return edge

    def remove_edge(self, edge: GraphEdge) -> None:
        """Drop ``edge`` from both endpoints."""
        removed = edge.parent.children.pop(edge.child.tag, None)
        edge.child.parents.pop(edge.parent.tag, None)
        if removed is not None:
            self._edge_count -= 1
            self.mark_changed(edge.child)
            self._dirty.add(edge.parent)

    def remove_node(self, tag: TagId) -> None:
        """Remove the node for ``tag`` and all its incident edges.

        Used when an object exits the physical world through a proper
        channel (§IV-C graph pruning).
        """
        node = self._nodes.pop(tag, None)
        if node is None:
            return
        for edge in list(node.edges()):
            self.remove_edge(edge)
        if node.color is not None:
            self._by_level_color[node.level][node.color].discard(node)
        self._colored.discard(node)
        self._dirty.discard(node)
        self._expiry_hold.pop(tag, None)

    # ------------------------------------------------------------------
    # change tracking (DESIGN.md §8)
    # ------------------------------------------------------------------

    def mark_changed(self, node: GraphNode) -> None:
        """Record a *value* change of a containment-decision input of ``node``.

        Bumps the node's version (invalidating its cached decision) and adds
        it to the epoch's dirty set.
        """
        node.version += 1
        self._dirty.add(node)

    def mark_dirty(self, node: GraphNode) -> None:
        """Add ``node`` to the epoch's dirty set without invalidating its
        cached containment decision (for changes, like read evidence or
        suppression transitions, that only feed always-fresh passes)."""
        self._dirty.add(node)

    def dirty_nodes(self) -> Iterable[GraphNode]:
        """Nodes whose color state, edges or evidence changed this epoch."""
        return self._dirty

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    def dirty_with_neighbors(self) -> set[GraphNode]:
        """The dirty set plus its 1-hop neighborhood — the inference
        frontier of this epoch (every node outside it is guaranteed to
        reuse its cached containment decision on a partial epoch)."""
        frontier = set(self._dirty)
        for node in self._dirty:
            for edge in node.parents.values():
                frontier.add(edge.parent)
            for edge in node.children.values():
                frontier.add(edge.child)
        return frontier

    def mark_recent_colors_dirty(self, colors: Iterable[int]) -> None:
        """Dirty every node whose remembered color is in ``colors``.

        Used on reader-health suppression transitions: the decay behaviour
        of all objects last seen at an affected location changes, so they
        join the epoch's dirty set.  This is an O(total nodes) scan, but it
        runs only when the suppressed-color *set* changes (outage onset or
        recovery), never on the steady-state per-epoch path.
        """
        wanted = set(colors)
        if not wanted:
            return
        dirty = self._dirty
        for node in self._nodes.values():
            if node.recent_color in wanted:
                dirty.add(node)

    # ------------------------------------------------------------------
    # expiry-ordered staleness tracking
    # ------------------------------------------------------------------

    def _push_expiry(self, at: int, tag: TagId) -> None:
        self._expiry_seq += 1
        heapq.heappush(self._expiry, (at, self._expiry_seq, tag))

    def defer_expiry(self, node: GraphNode, until: int) -> None:
        """Re-queue ``node`` for a staleness check no earlier than ``until``.

        Callers keeping a node that :meth:`pop_stale` surfaced must either
        remove it or defer it, otherwise it falls out of expiry tracking.
        The hold also masks any earlier heap entries still queued for the
        same tag.
        """
        self._expiry_hold[node.tag] = until
        self._push_expiry(until, node.tag)

    def pop_stale(self, cutoff: int) -> list[GraphNode]:
        """Nodes not seen since ``cutoff`` (inclusive), cheapest-first.

        Pops only expired heap entries — cost is proportional to the number
        of candidates due, not to the graph size.  Entries whose node was
        removed are dropped; entries whose node was observed after ``cutoff``
        are re-queued at their true last-seen epoch.  The heap may hold
        several entries per tag (re-created or deferred nodes); duplicates
        within one call are skipped and later calls drop them lazily.
        """
        out: list[GraphNode] = []
        handled: set[TagId] = set()
        heap = self._expiry
        nodes = self._nodes
        holds = self._expiry_hold
        while heap and heap[0][0] <= cutoff:
            _at, _seq, tag = heapq.heappop(heap)
            if tag in handled:
                continue
            node = nodes.get(tag)
            if node is None:
                holds.pop(tag, None)
                continue
            handled.add(tag)
            if holds.get(tag, 0) > cutoff:
                # deferred past the cutoff; its hold entry is still queued
                continue
            if node.seen_at > cutoff:
                self._push_expiry(node.seen_at, tag)
            else:
                out.append(node)
        return out

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert structural consistency; used by property-based tests."""
        edge_total = 0
        for node in self._nodes.values():
            for tag, edge in node.children.items():
                assert edge.parent is node and edge.child.tag == tag
                assert edge.child.parents.get(node.tag) is edge, "asymmetric edge"
                assert edge.parent.level > edge.child.level, "edge level ordering"
                edge_total += 1
            for tag, edge in node.parents.items():
                assert edge.child is node and edge.parent.tag == tag
            if node.color is not None:
                assert node in self._by_level_color[node.level][node.color]
                assert node in self._colored
                assert node.recent_color == node.color
        assert edge_total == self._edge_count, "edge count drift"
        for level, colors in self._by_level_color.items():
            for color, nodes in colors.items():
                for node in nodes:
                    assert node.color == color and node.level == level
        # two colored endpoints of an edge must share the color (§III-A)
        for node in self._nodes.values():
            for edge in node.children.values():
                if edge.parent.is_colored and edge.child.is_colored:
                    assert edge.parent.color == edge.child.color, (
                        f"edge {edge} connects different colors"
                    )

"""Ground-truth history recording.

SPIRE's evaluation needs the ground truth in two forms:

* **per-epoch snapshots** of every object's location and container, used to
  score inference error rates (Expts 1–4); and
* a **compressed ground-truth event stream** — the ground truth pushed
  through the same level-1 range compressor SPIRE uses — used as the
  reference for event precision/recall/F-measure (Expt 7, Section VI-D).

:class:`GroundTruthRecorder` captures snapshots cheaply (it stores compact
dicts, not world copies) and can replay them into any compressor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.model.locations import Location, UNKNOWN_LOCATION
from repro.model.objects import TagId
from repro.model.world import PhysicalWorld


@dataclass(frozen=True)
class TruthSnapshot:
    """Ground truth at one epoch.

    Attributes:
        epoch: The epoch this snapshot was taken at.
        locations: Location of every object present in the world (objects at
            the unknown location — e.g. stolen ones — map to
            :data:`~repro.model.locations.UNKNOWN_LOCATION`).
        containers: Direct container of every contained object; objects with
            no container are absent from this mapping.
    """

    epoch: int
    locations: dict[TagId, Location]
    containers: dict[TagId, TagId]

    def location_of(self, tag: TagId) -> Location:
        """Location of ``tag``; unknown location if not in the world."""
        return self.locations.get(tag, UNKNOWN_LOCATION)

    def container_of(self, tag: TagId) -> TagId | None:
        """Direct container of ``tag`` at this epoch, if any."""
        return self.containers.get(tag)

    def tags(self) -> Iterable[TagId]:
        """All objects present in the world at this epoch."""
        return self.locations.keys()


class GroundTruthRecorder:
    """Accumulates per-epoch :class:`TruthSnapshot` records from a world.

    The simulator calls :meth:`capture` once per epoch after all world
    mutations for that epoch have been applied.  Departed objects (proper
    exits) simply stop appearing in later snapshots; vanished objects appear
    with the unknown location until the simulator disposes of them.
    """

    def __init__(self) -> None:
        self._snapshots: list[TruthSnapshot] = []
        self._vanished_at: dict[TagId, int] = {}
        self._exited_at: dict[TagId, int] = {}

    def capture(self, world: PhysicalWorld, epoch: int) -> TruthSnapshot:
        """Record and return the ground truth of ``world`` at ``epoch``."""
        locations: dict[TagId, Location] = {}
        containers: dict[TagId, TagId] = {}
        for tag in world:
            locations[tag] = world.location_of(tag)
            parent = world.container_of(tag)
            if parent is not None:
                containers[tag] = parent
        snapshot = TruthSnapshot(epoch=epoch, locations=locations, containers=containers)
        self._snapshots.append(snapshot)
        return snapshot

    def note_vanished(self, tag: TagId, epoch: int) -> None:
        """Record that ``tag`` improperly disappeared at ``epoch`` (anomaly)."""
        self._vanished_at.setdefault(tag, epoch)

    def note_exited(self, tag: TagId, epoch: int) -> None:
        """Record that ``tag`` left through a proper exit at ``epoch``."""
        self._exited_at.setdefault(tag, epoch)

    @property
    def snapshots(self) -> list[TruthSnapshot]:
        """All captured snapshots, in epoch order."""
        return self._snapshots

    @property
    def vanished(self) -> dict[TagId, int]:
        """Tags that vanished improperly, mapped to their vanish epoch."""
        return dict(self._vanished_at)

    @property
    def exited(self) -> dict[TagId, int]:
        """Tags that exited properly, mapped to their exit epoch."""
        return dict(self._exited_at)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[TruthSnapshot]:
        return iter(self._snapshots)

    def at_epoch(self, epoch: int) -> TruthSnapshot:
        """Snapshot taken at exactly ``epoch``; raises ``KeyError`` if absent."""
        for snap in self._snapshots:
            if snap.epoch == epoch:
                return snap
        raise KeyError(f"no ground-truth snapshot for epoch {epoch}")

"""Resilient ingestion front-end: re-sequencing, dedup, gap synthesis.

:class:`ResilientStream` sits between an unreliable transport (e.g. a
:class:`~repro.faults.injector.FaultInjector`, or a real network) and the
strictly-ordered pipeline.  It restores the contract
:class:`~repro.core.pipeline.Spire` assumes — epochs exactly once, in
order, gap-free — by:

* holding arriving batches in a **bounded reorder buffer** and releasing
  them in epoch order once the **watermark** passes (epoch ``e`` is
  released only after a batch for an epoch beyond ``e + max_delay``
  arrives, so any batch that shows up at most ``max_delay`` epochs behind
  the frontier is re-sequenced losslessly);
* **suppressing duplicates** — a batch for an epoch already released (or
  already buffered) is dropped with a warning;
* **synthesizing empty epochs** for bounded gaps, so a dropped batch
  degrades into "no reader interrogated" (which inference already treats
  as uncertainty) instead of a hole in the epoch sequence;
* **quarantining** readings from reader ids outside the deployment, and
  whole batches that arrive behind the watermark, with structured
  :class:`~repro.faults.warnings.IngestWarning` records instead of
  exceptions.

Iterate the stream to drain it; call :meth:`flush` semantics are built into
iteration (the buffer empties when the source ends).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.faults.warnings import IngestWarning, Quarantine, WarningKind
from repro.readers.stream import EpochReadings

__all__ = ["ResilientStream"]


class ResilientStream:
    """Re-sequencing, deduplicating, gap-filling wrapper over a faulty source.

    Args:
        source: Iterable of :class:`EpochReadings` in arbitrary arrival
            order (bounded delay).
        max_delay: Watermark lag in epochs.  A batch arriving more than
            ``max_delay`` epochs after a younger batch is late and is
            quarantined; anything within the bound is re-sequenced.
        known_readers: Reader ids the deployment maps.  Readings from any
            other id are quarantined.  ``None`` disables the check.
        first_epoch: Epoch the output sequence starts at (gaps before the
            first arrival are synthesized from here).  ``None`` starts at
            the first epoch that arrives.
        metrics: Optional :class:`repro.obs.MetricRegistry`; counts
            batches released, epochs synthesized, and (via the
            quarantine) warnings and withheld readings by kind.
    """

    def __init__(
        self,
        source: Iterable[EpochReadings],
        max_delay: int = 0,
        known_readers: Iterable[int] | None = None,
        first_epoch: int | None = None,
        metrics=None,
    ) -> None:
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if metrics is None:
            from repro.obs.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self._source = source
        self._max_delay = max_delay
        self._known = frozenset(known_readers) if known_readers is not None else None
        self._first_epoch = first_epoch
        self.quarantine = Quarantine()
        self.quarantine.attach_metrics(metrics)
        self._m_released = metrics.counter(
            "spire_ingest_batches_released_total",
            "Real (non-synthesized) epoch batches released in order",
        )
        self._m_synthesized = metrics.counter(
            "spire_ingest_synthesized_epochs_total",
            "Empty epochs synthesized to fill bounded gaps",
        )
        self._buffer: dict[int, EpochReadings] = {}
        self._next_epoch: int | None = first_epoch
        #: epochs released with real (non-synthesized) content, pruned to a
        #: bounded recency window — used to tell duplicates from late data
        self._released_real: set[int] = set()
        #: count of synthesized empty epochs (for reports)
        self.synthesized_epochs = 0

    # ------------------------------------------------------------------

    @property
    def warnings(self) -> list[IngestWarning]:
        return self.quarantine.warnings

    def __iter__(self) -> Iterator[EpochReadings]:
        for batch in self._source:
            batch = self._screen_readers(batch)
            accepted = self._accept(batch)
            if not accepted:
                continue
            # release an epoch only once a batch more than max_delay epochs
            # newer has arrived: a batch delayed exactly max_delay epochs
            # (arriving just after its epoch + max_delay) is still in time
            watermark = max(self._buffer) - self._max_delay - 1
            yield from self._release_until(watermark)
        # source exhausted: drain the buffer completely
        if self._buffer:
            yield from self._release_until(max(self._buffer))

    # ------------------------------------------------------------------

    def _screen_readers(self, batch: EpochReadings) -> EpochReadings:
        """Strip (and quarantine) readings from unknown reader ids."""
        if self._known is None:
            return batch
        bad = [rid for rid in batch.by_reader if rid not in self._known]
        if not bad:
            return batch
        clean = EpochReadings(
            epoch=batch.epoch,
            by_reader={
                rid: list(tags) for rid, tags in batch.by_reader.items() if rid in self._known
            },
        )
        for rid in bad:
            for tag in batch.by_reader[rid]:
                self.quarantine.hold(tag, rid, batch.epoch, WarningKind.UNKNOWN_READER)
            self.quarantine.warn(
                WarningKind.UNKNOWN_READER,
                batch.epoch,
                reader_id=rid,
                detail=f"{len(batch.by_reader[rid])} reading(s) quarantined",
            )
        return clean

    def _accept(self, batch: EpochReadings) -> bool:
        """Admit one batch to the reorder buffer; False if suppressed."""
        epoch = batch.epoch
        if self._next_epoch is None:
            self._next_epoch = epoch
        if epoch < self._next_epoch:
            # behind the emission frontier: duplicate of released data, or
            # data that arrived later than the watermark allows
            if epoch in self._released_real:
                self.quarantine.warn(
                    WarningKind.DUPLICATE_BATCH,
                    epoch,
                    detail="batch for an already-released epoch suppressed",
                )
            else:
                for reading in batch.readings():
                    self.quarantine.hold(
                        reading.tag, reading.reader_id, epoch, WarningKind.LATE_BATCH
                    )
                self.quarantine.warn(
                    WarningKind.LATE_BATCH,
                    epoch,
                    detail=(
                        f"arrived behind the watermark (frontier {self._next_epoch}); "
                        f"{batch.reading_count} reading(s) quarantined"
                    ),
                )
            return False
        if epoch in self._buffer:
            self.quarantine.warn(
                WarningKind.DUPLICATE_BATCH,
                epoch,
                detail="batch for a buffered epoch suppressed",
            )
            return False
        self._buffer[epoch] = batch
        return True

    def _release_until(self, watermark: int) -> Iterator[EpochReadings]:
        """Emit every epoch up to ``watermark`` in order, filling gaps."""
        assert self._next_epoch is not None
        while self._next_epoch <= watermark:
            epoch = self._next_epoch
            batch = self._buffer.pop(epoch, None)
            if batch is None:
                gap_end = min(watermark, self._gap_end(epoch, watermark))
                self.quarantine.warn(
                    WarningKind.GAP_SYNTHESIZED,
                    epoch,
                    detail=f"synthesized empty epochs [{epoch}, {gap_end}]",
                )
                while self._next_epoch <= gap_end:
                    self.synthesized_epochs += 1
                    self._m_synthesized.inc()
                    yield EpochReadings(epoch=self._next_epoch)
                    self._next_epoch += 1
                continue
            self._released_real.add(epoch)
            self._next_epoch += 1
            self._m_released.inc()
            yield batch
        self._prune_released()

    def _gap_end(self, start: int, watermark: int) -> int:
        """Last epoch of the gap run beginning at ``start``."""
        epoch = start
        while epoch + 1 <= watermark and (epoch + 1) not in self._buffer:
            epoch += 1
        return epoch

    def _prune_released(self) -> None:
        """Keep the duplicate-detection window bounded."""
        assert self._next_epoch is not None
        horizon = self._next_epoch - (4 * self._max_delay + 16)
        if len(self._released_real) > 8 * (self._max_delay + 4):
            self._released_real = {e for e in self._released_real if e >= horizon}

"""Package-level contract tests: exports, version, docstring example."""

import doctest

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing attribute {name}"

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_module_docstring_example_runs(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted >= 1

    def test_star_import_is_clean(self):
        namespace: dict = {}
        exec("from repro import *", namespace)  # noqa: S102 - deliberate
        for name in repro.__all__:
            assert name in namespace

"""Tests for zone-partitioned distributed operation."""

import pytest

from repro.core.params import InferenceParams
from repro.distributed.coordinator import Coordinator, Zone, partition_by_location
from repro.events.wellformed import check_well_formed
from repro.model.locations import UNKNOWN_COLOR
from repro.model.objects import PackagingLevel
from repro.readers.reader import Reader, ReaderKind
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator

from tests.conftest import case, epoch_readings, item


def two_zone_setup():
    """Two zones with one reader each, sharing the global color space."""
    from repro.model.locations import Location, LocationKind, LocationRegistry

    registry = LocationRegistry()
    dock = registry.create("dock", LocationKind.ENTRY_DOOR)
    shelf = registry.create("shelf", LocationKind.SHELF)
    reader_a = Reader(0, dock)
    reader_b = Reader(1, shelf)
    zones = [
        Zone.build("zone-a", [reader_a], registry),
        Zone.build("zone-b", [reader_b], registry),
    ]
    return Coordinator(zones), dock, shelf


class TestConstruction:
    def test_duplicate_zone_id_rejected(self):
        coordinator, *_ = two_zone_setup()
        zone = next(iter(coordinator.zones.values()))
        with pytest.raises(ValueError, match="duplicate zone id"):
            Coordinator([zone, zone])

    def test_reader_in_two_zones_rejected(self):
        from repro.model.locations import Location, LocationRegistry

        registry = LocationRegistry()
        loc = registry.create("dock")
        reader = Reader(0, loc)
        with pytest.raises(ValueError, match="assigned to both"):
            Coordinator(
                [
                    Zone.build("a", [reader], registry),
                    Zone.build("b", [reader], registry),
                ]
            )

    def test_empty_coordinator_rejected(self):
        with pytest.raises(ValueError, match="at least one zone"):
            Coordinator([])

    def test_partition_by_location(self):
        config = SimulationConfig(duration=10, num_shelves=2)
        from repro.simulator.layout import WarehouseLayout

        layout = WarehouseLayout.build(config)
        zones = partition_by_location(
            layout.readers,
            {
                "inbound": ["entry-door", "receiving-belt"],
                "storage": ["shelf-1", "shelf-2"],
                "outbound": ["packaging-area", "exit-belt", "exit-door"],
            },
            layout.registry,
        )
        assert {z.zone_id for z in zones} == {"inbound", "storage", "outbound"}
        total = sum(len(z.reader_ids) for z in zones)
        assert total == len(layout.readers)

    def test_partition_unassigned_location_rejected(self):
        config = SimulationConfig(duration=10)
        from repro.simulator.layout import WarehouseLayout

        layout = WarehouseLayout.build(config)
        with pytest.raises(ValueError, match="assigned to no zone"):
            partition_by_location(layout.readers, {"only": ["entry-door"]}, layout.registry)


class TestHandoff:
    def test_ownership_follows_observations(self):
        coordinator, dock, shelf = two_zone_setup()
        coordinator.process_epoch(epoch_readings(0, {0: [item(1)]}))
        assert coordinator.owner_of(item(1)) == "zone-a"
        result = coordinator.process_epoch(epoch_readings(1, {1: [item(1)]}))
        assert coordinator.owner_of(item(1)) == "zone-b"
        assert result.handoffs == [(item(1), "zone-a", "zone-b")]

    def test_location_query_follows_owner(self):
        coordinator, dock, shelf = two_zone_setup()
        coordinator.process_epoch(epoch_readings(0, {0: [item(1)]}))
        assert coordinator.location_of(item(1)) == dock.color
        coordinator.process_epoch(epoch_readings(1, {1: [item(1)]}))
        assert coordinator.location_of(item(1)) == shelf.color

    def test_unknown_object_query(self):
        coordinator, *_ = two_zone_setup()
        assert coordinator.location_of(item(9)) == UNKNOWN_COLOR
        assert coordinator.container_of(item(9)) is None
        assert coordinator.owner_of(item(9)) is None

    def test_confirmation_survives_handoff(self):
        """A belt confirmation in zone A keeps steering containment in zone B."""
        from repro.model.locations import LocationKind, LocationRegistry

        registry = LocationRegistry()
        belt = registry.create("belt", LocationKind.BELT)
        shelf = registry.create("shelf", LocationKind.SHELF)
        belt_reader = Reader(
            0, belt, kind=ReaderKind.SPECIAL, singulation_level=PackagingLevel.CASE
        )
        shelf_reader = Reader(1, shelf)
        coordinator = Coordinator(
            [
                Zone.build("inbound", [belt_reader], registry),
                Zone.build("storage", [shelf_reader], registry),
            ]
        )
        # belt (zone inbound) confirms case 1 contains item 1
        coordinator.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        assert coordinator.container_of(item(1)) == case(1)
        # both migrate to the shelf zone, together with a decoy case
        coordinator.process_epoch(epoch_readings(1, {1: [case(1), case(2), item(1)]}))
        storage = coordinator.zones["storage"].spire
        node = storage.graph.node(item(1))
        assert node.confirmed_parent == case(1)  # knowledge survived
        # the confirmed case wins over the co-located decoy
        for epoch in range(2, 6):
            coordinator.process_epoch(
                epoch_readings(epoch, {1: [case(1), case(2), item(1)]})
            )
        assert coordinator.container_of(item(1)) == case(1)

    def test_merged_stream_well_formed_across_handoffs(self):
        coordinator, dock, shelf = two_zone_setup()
        messages = []
        plan = [
            {0: [case(1), item(1)]},
            {0: [case(1), item(1)]},
            {1: [case(1), item(1)]},   # migrate a -> b
            {1: [case(1), item(1)]},
            {0: [item(1)], 1: [case(1)]},  # split across zones
            {0: [item(1)]},
        ]
        for epoch, by_reader in enumerate(plan):
            messages.extend(coordinator.process_epoch(epoch_readings(epoch, by_reader)).messages)
        check_well_formed(messages)


class TestAgainstMonolithic:
    def test_distributed_tracks_full_trace(self):
        """Three-zone deployment over the standard warehouse trace: the
        merged output stays well-formed and final estimates broadly agree
        with the single-substrate run."""
        config = SimulationConfig(
            duration=500,
            pallet_period=120,
            cases_per_pallet_min=2,
            cases_per_pallet_max=2,
            items_per_case=4,
            read_rate=0.95,
            shelf_read_period=10,
            num_shelves=2,
            shelving_time_mean=100,
            shelving_time_jitter=20,
            seed=17,
        )
        sim = WarehouseSimulator(config).run()
        zones = partition_by_location(
            sim.layout.readers,
            {
                "inbound": ["entry-door", "receiving-belt"],
                "storage": ["shelf-1", "shelf-2"],
                "outbound": ["packaging-area", "exit-belt", "exit-door"],
            },
            sim.layout.registry,
        )
        coordinator = Coordinator(zones)
        messages = []
        for readings in sim.stream:
            messages.extend(coordinator.process_epoch(readings).messages)
        check_well_formed(messages)
        assert coordinator.tracked_objects > 0

        # compare location answers with the monolithic run on live objects
        from repro.core.pipeline import Deployment, Spire

        mono = Spire(Deployment.from_readers(sim.layout.readers, sim.layout.registry))
        mono.run(sim.stream)
        final = sim.truth.snapshots[-1]
        agreements = total = 0
        for tag in final.locations:
            total += 1
            if coordinator.location_of(tag) == mono.location_of(tag):
                agreements += 1
        assert total > 0
        assert agreements / total > 0.85

"""Locations of the physical world.

Locations are the pre-defined fixed areas of Section II: entry door, belts,
shelves, packaging area, exit door.  Each location doubles as a *color* in
the time-varying colored graph model (Section III-A), so locations carry a
small integer ``color`` that graph nodes reference.  The special ``unknown``
location (color ``None`` in the graph) is represented by the singleton
:data:`UNKNOWN_LOCATION`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable


class LocationKind(Enum):
    """Functional role of a location inside a deployment.

    The kind drives simulator behaviour (what happens to objects there) and
    reader semantics (belt readers are *special readers* that confirm
    containment; exit doors are *proper exit channels* that remove objects
    from the monitored world).
    """

    ENTRY_DOOR = "entry_door"
    BELT = "belt"
    SHELF = "shelf"
    PACKAGING = "packaging"
    EXIT_DOOR = "exit_door"
    UNKNOWN = "unknown"
    GENERIC = "generic"


@dataclass(frozen=True)
class Location:
    """A fixed, named location; equality/hash by ``color``.

    Attributes:
        color: Small non-negative integer unique within a deployment; used
            as the node color in the graph model.  The unknown location uses
            color ``-1`` and must never be assigned to a reader.
        name: Human-readable name, e.g. ``"shelf-3"``.
        kind: Functional role (see :class:`LocationKind`).
    """

    color: int
    name: str
    kind: LocationKind = LocationKind.GENERIC

    def __post_init__(self) -> None:
        if self.kind is LocationKind.UNKNOWN and self.color != -1:
            raise ValueError("the unknown location must use color -1")
        if self.kind is not LocationKind.UNKNOWN and self.color < 0:
            raise ValueError(f"location color must be non-negative, got {self.color}")

    @property
    def is_exit(self) -> bool:
        """True for proper exit channels (objects leave the world here)."""
        return self.kind is LocationKind.EXIT_DOOR

    def __str__(self) -> str:
        return self.name


UNKNOWN_LOCATION = Location(color=-1, name="unknown", kind=LocationKind.UNKNOWN)
"""The special "unknown" location of Section II.

An object resides here when it is in transit between monitored locations or
has left the world improperly (e.g. was stolen).
"""

UNKNOWN_COLOR = UNKNOWN_LOCATION.color
"""Color used throughout the library for the unknown location (§III-A)."""


class LocationRegistry:
    """Deployment-wide registry mapping colors to locations.

    A registry is built once per deployment (by the simulator or by user
    code describing a real site) and shared by readers, the graph model and
    the output formatter.  The unknown location is always registered.
    """

    def __init__(self, locations: Iterable[Location] = ()) -> None:
        self._by_color: dict[int, Location] = {UNKNOWN_LOCATION.color: UNKNOWN_LOCATION}
        self._by_name: dict[str, Location] = {UNKNOWN_LOCATION.name: UNKNOWN_LOCATION}
        for loc in locations:
            self.add(loc)

    def add(self, location: Location) -> Location:
        """Register a location; colors and names must be unique."""
        if location.color in self._by_color:
            raise ValueError(f"duplicate location color {location.color}")
        if location.name in self._by_name:
            raise ValueError(f"duplicate location name {location.name!r}")
        self._by_color[location.color] = location
        self._by_name[location.name] = location
        return location

    def create(self, name: str, kind: LocationKind = LocationKind.GENERIC) -> Location:
        """Create and register a location with the next free color."""
        color = max((c for c in self._by_color if c >= 0), default=-1) + 1
        return self.add(Location(color=color, name=name, kind=kind))

    def by_color(self, color: int) -> Location:
        """Look up a location by its color; raises ``KeyError`` if absent."""
        return self._by_color[color]

    def by_name(self, name: str) -> Location:
        """Look up a location by name; raises ``KeyError`` if absent."""
        return self._by_name[name]

    def known_locations(self) -> list[Location]:
        """All registered locations except the unknown location."""
        return [loc for c, loc in sorted(self._by_color.items()) if c >= 0]

    def __contains__(self, location: Location) -> bool:
        return self._by_color.get(location.color) == location

    def __len__(self) -> int:
        return len(self._by_color) - 1  # exclude "unknown"

    def __iter__(self):
        return iter(self.known_locations())

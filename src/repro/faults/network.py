"""Seeded network fault injection for the remote worker transport.

The stream-level injector (:mod:`repro.faults.injector`) perturbs what
readers *report*; this module perturbs how coordinator and worker *talk*.
:class:`NetFaultProxy` sits between a :class:`~repro.distributed.remote.RemoteCoordinator`
and a worker daemon as a TCP shim that understands the wire framing
(:mod:`repro.distributed.wire`): it reassembles length-prefixed frames per
direction and then drops, delays, duplicates or blackholes whole frames
according to a seeded schedule — the transport-level analogues of the
stream faults, in the same ``{"kind": ..., ...}`` schedule format
(``docs/FAULTS.md``).

Determinism: every decision comes from a ``random.Random`` seeded per
``(seed, direction)`` and is indexed by the **per-direction frame
counter**, not wall-clock time, so a given ``(schedule, seed)`` perturbs
the same frames on every run.  The retry/heartbeat layer above is what
turns those perturbations back into an intact request stream — which is
exactly what the equivalence tests assert.

:class:`WorkerCrash` rides in the same schedule lists but is applied by
the *driver* (the chaos CLI, a test), not the proxy: it names a worker to
kill outright at an epoch boundary, exercising zone failover rather than
the retry path.  :func:`split_net_schedule` separates a mixed schedule
into its stream, network and crash parts.
"""

from __future__ import annotations

import select
import socket
import threading
import time
from dataclasses import dataclass
from random import Random
from typing import Sequence

# NOTE: repro.distributed.wire is imported lazily inside the forwarder —
# importing it here would close a cycle (repro.core.pipeline pulls in
# repro.faults for the health monitor, and repro.distributed pulls in
# repro.core for checkpoints)

__all__ = [
    "NetDelay",
    "NetDrop",
    "NetDup",
    "NetPartition",
    "WorkerCrash",
    "NetFaultSpec",
    "ALL_NET_FAULT_KINDS",
    "NetFaultProxy",
    "split_net_schedule",
]


@dataclass(frozen=True)
class NetDelay:
    """Each frame in window ``[start, end)`` (per-direction frame index)
    is held ``seconds`` before forwarding, with probability ``rate``."""

    rate: float
    seconds: float = 0.05
    start: int = 0
    end: int | None = None


@dataclass(frozen=True)
class NetDrop:
    """Each frame in the window is silently discarded with probability
    ``rate`` — a lost request or reply; the retry layer must resend."""

    rate: float
    start: int = 0
    end: int | None = None


@dataclass(frozen=True)
class NetDup:
    """Each frame in the window is forwarded twice with probability
    ``rate`` — the daemon's reply cache (or the coordinator's reply
    dedup) must absorb the duplicate."""

    rate: float
    start: int = 0
    end: int | None = None


@dataclass(frozen=True)
class NetPartition:
    """Every frame with index in ``[start, start + duration)`` is
    blackholed in both directions — a finite partition the retries must
    ride out (or, if longer than the retry budget, a worker death)."""

    start: int
    duration: int


@dataclass(frozen=True)
class WorkerCrash:
    """Kill worker ``worker`` at epoch ``at_epoch`` (driver-applied)."""

    worker: int
    at_epoch: int


NetFaultSpec = NetDelay | NetDrop | NetDup | NetPartition

#: every transport fault kind the proxy implements (tests iterate this)
ALL_NET_FAULT_KINDS: tuple[type, ...] = (NetDelay, NetDrop, NetDup, NetPartition)

_NET_SPEC_TYPES = (NetDelay, NetDrop, NetDup, NetPartition)


def split_net_schedule(schedule: Sequence) -> tuple[list, list, list]:
    """Split a mixed schedule into (stream specs, net specs, crashes).

    Lets one JSON schedule file drive reading-stream chaos, transport
    chaos and scripted worker crashes together; each consumer takes its
    slice (:class:`~repro.faults.injector.FaultInjector` also ignores
    spec types it does not know, so passing the full list there is safe).
    """
    stream_specs, net_specs, crashes = [], [], []
    for spec in schedule:
        if isinstance(spec, _NET_SPEC_TYPES):
            net_specs.append(spec)
        elif isinstance(spec, WorkerCrash):
            crashes.append(spec)
        else:
            stream_specs.append(spec)
    return stream_specs, net_specs, crashes


def _in_window(index: int, start: int, end: int | None) -> bool:
    return index >= start and (end is None or index < end)


class _Direction:
    """Per-direction fault state: frame counter plus a seeded RNG.

    The two directions of one proxied connection perturb independently
    (distinct seeds), matching how real asymmetric paths fail.
    """

    def __init__(self, label: str, schedule: Sequence[NetFaultSpec], seed: int) -> None:
        self.label = label
        self.schedule = schedule
        self.rng = Random((seed << 1) ^ (0 if label == "up" else 1))
        self.frames = 0

    def plan(self, frame: bytes) -> list[tuple[float, bytes]]:
        """Fault decisions for one frame: a list of (delay_s, frame) to
        forward (empty = dropped), deterministic in the frame index."""
        index = self.frames
        self.frames += 1
        delay = 0.0
        copies = 1
        for spec in self.schedule:
            if isinstance(spec, NetPartition):
                if _in_window(index, spec.start, spec.start + spec.duration):
                    return []
            elif isinstance(spec, NetDrop):
                if _in_window(index, spec.start, spec.end) and self.rng.random() < spec.rate:
                    return []
            elif isinstance(spec, NetDelay):
                if _in_window(index, spec.start, spec.end) and self.rng.random() < spec.rate:
                    delay += spec.seconds
            elif isinstance(spec, NetDup):
                if _in_window(index, spec.start, spec.end) and self.rng.random() < spec.rate:
                    copies = 2
        return [(delay, frame)] * copies


class NetFaultProxy:
    """A frame-aware TCP shim injecting transport faults on one worker.

    Listens on its own port and forwards to ``upstream``; point the
    coordinator at :attr:`address` instead of the daemon.  Each accepted
    connection gets two forwarder threads (one per direction) that
    reassemble frames and apply the schedule frame-by-frame.  Reconnects
    (the retry layer's go-back-N) open fresh connections through the same
    proxy; the per-direction frame counters and RNGs are **proxy-global**,
    so the fault pattern keeps advancing across reconnects instead of
    replaying.
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        schedule: Sequence[NetFaultSpec],
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = upstream
        self._up = _Direction("up", list(schedule), seed)
        self._down = _Direction("down", list(schedule), seed)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._lock = threading.Lock()  # serializes fault decisions per direction
        self._threads: list[threading.Thread] = []
        self._socks: list[socket.socket] = []
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"net-proxy-{self.port}", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _peer = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            try:
                server = socket.create_connection(self.upstream, timeout=5)
            except OSError:
                client.close()
                continue
            for sock in (client, server):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._socks += [client, server]
            pair = [
                threading.Thread(
                    target=self._pump, args=(client, server, self._up), daemon=True
                ),
                threading.Thread(
                    target=self._pump, args=(server, client, self._down), daemon=True
                ),
            ]
            for thread in pair:
                thread.start()
            self._threads += pair

    def _pump(self, source: socket.socket, sink: socket.socket, direction: _Direction) -> None:
        """Forward one direction frame-by-frame until either side closes."""
        from repro.distributed import wire

        decoder = wire.FrameDecoder()
        try:
            while not self._stopping.is_set():
                # ValueError: the socket was closed under us (fd == -1)
                readable, _, _ = select.select([source], [], [], 0.25)
                if not readable:
                    continue
                chunk = source.recv(65536)
                if not chunk:
                    break
                for frame in decoder.feed(chunk):
                    with self._lock:
                        plan = direction.plan(frame)
                    for delay, payload in plan:
                        if delay > 0:
                            time.sleep(delay)
                        sink.sendall(wire.encode_frame(payload))
        except (OSError, ValueError, wire.WireError):
            pass
        finally:
            # half-close propagation: a dead direction kills the pair, so
            # the endpoints see the hangup and the retry layer reconnects
            for sock in (source, sink):
                try:
                    sock.close()
                except OSError:
                    pass

    def stop(self) -> None:
        self._stopping.set()
        with self._lock:
            socks = [self._listener, *self._socks]
        for sock in socks:
            # shutdown() first: the accept/forwarder threads hold
            # references, so close() alone would not wake them
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self._thread.join(timeout=5)
        for thread in self._threads:
            thread.join(timeout=5)

    def __enter__(self) -> "NetFaultProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# JSON schedule registration
# ---------------------------------------------------------------------------

# ``schedule_from_dict`` accepts the transport kinds alongside the stream
# kinds, so one schedule file drives both layers; the registration lives
# here (not in injector.py) to keep the injector import-light
from repro.faults import injector as _injector  # noqa: E402

_injector._KIND_TO_SPEC.update(
    {
        "net_delay": NetDelay,
        "net_drop": NetDrop,
        "net_dup": NetDup,
        "net_partition": NetPartition,
        "worker_crash": WorkerCrash,
    }
)

"""Parallel-vs-serial equivalence suite (DESIGN.md §9, docs/SCALING.md).

The load-bearing property of :class:`ParallelCoordinator` is **exact
equivalence**: the merged event stream must be byte-identical to the
serial :class:`Coordinator`'s on the same input — across clean runs,
chaos-injected runs, mid-run zone failure and recovery (including a real
worker-process kill), and checkpoint round-trips — under 2 and 4 workers.
"""

from __future__ import annotations

import io

import pytest

from repro.core.checkpoint import load_checkpoint
from repro.distributed import Coordinator, ParallelCoordinator, partition_by_location
from repro.events.codec import encode_stream
from repro.events.wellformed import check_well_formed
from repro.faults import DelayBatches, DropBatches, FaultInjector, ResilientStream
from repro.faults.warnings import Quarantine, WarningKind
from repro.model.locations import LocationKind, LocationRegistry
from repro.readers.reader import Reader
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator

ASSIGNMENT = {
    "inbound": ["entry-door", "receiving-belt"],
    "shelf-a": ["shelf-1", "shelf-2"],
    "shelf-b": ["shelf-3", "shelf-4"],
    "outbound": ["packaging-area", "exit-belt", "exit-door"],
}


def _config(seed: int, duration: int = 150) -> SimulationConfig:
    return SimulationConfig(
        duration=duration,
        pallet_period=100,
        cases_per_pallet_min=2,
        cases_per_pallet_max=3,
        items_per_case=4,
        read_rate=0.9,
        shelf_read_period=10,
        num_shelves=4,
        shelving_time_mean=100,
        shelving_time_jitter=30,
        seed=seed,
    )


def _epochs(config: SimulationConfig, chaos_seed: int | None = None) -> list:
    """Simulate one trace; optionally push it through seeded chaos."""
    sim = WarehouseSimulator(config).run()
    if chaos_seed is None:
        return sim, list(sim.stream)
    schedule = [DropBatches(rate=0.03), DelayBatches(rate=0.05, max_delay=3)]
    injector = FaultInjector(sim.stream, schedule, seed=chaos_seed)
    resilient = ResilientStream(
        injector,
        max_delay=3,
        known_readers=[r.reader_id for r in sim.layout.readers],
    )
    return sim, list(resilient)


def _zones(sim):
    return partition_by_location(sim.layout.readers, ASSIGNMENT, sim.layout.registry)


def _run(coordinator, epochs, actions: dict | None = None) -> bytes:
    """Drive a coordinator over the epochs, interleaving failover actions.

    ``actions`` maps an epoch index to a callable taking the coordinator
    and returning messages to splice into the merged stream (the serial
    failover contract).  Returns the encoded merged stream.
    """
    parts = []
    for i, readings in enumerate(epochs):
        if actions and i in actions:
            parts.append(encode_stream(actions[i](coordinator)))
        parts.append(encode_stream(coordinator.process_epoch(readings).messages))
    if hasattr(coordinator, "close"):
        coordinator.close()
    return b"".join(parts)


def _serial_and_parallel(seed, workers, chaos_seed=None, actions=None, interval=10):
    config = _config(seed)
    sim, epochs = _epochs(config, chaos_seed)
    serial = _run(Coordinator(_zones(sim), checkpoint_interval=interval), epochs, actions)
    sim2, epochs2 = _epochs(config, chaos_seed)
    parallel = _run(
        ParallelCoordinator(_zones(sim2), checkpoint_interval=interval, workers=workers),
        epochs2,
        actions,
    )
    return serial, parallel


class TestCleanEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_clean_run_byte_identical(self, workers):
        serial, parallel = _serial_and_parallel(seed=11, workers=workers)
        assert parallel == serial
        assert len(serial) > 0

    def test_single_worker_byte_identical(self):
        serial, parallel = _serial_and_parallel(seed=7, workers=1)
        assert parallel == serial

    def test_no_failover_mode(self):
        """Without checkpoint_interval the parallel loop still matches."""
        config = _config(seed=3)
        sim, epochs = _epochs(config)
        serial = _run(Coordinator(_zones(sim)), epochs)
        sim2, epochs2 = _epochs(config)
        parallel = _run(ParallelCoordinator(_zones(sim2), workers=2), epochs2)
        assert parallel == serial

    def test_handoffs_owners_and_queries_match(self):
        config = _config(seed=29)
        sim, epochs = _epochs(config)
        serial = Coordinator(_zones(sim), checkpoint_interval=10)
        serial_results = [serial.process_epoch(r) for r in epochs]
        sim2, epochs2 = _epochs(config)
        with ParallelCoordinator(
            _zones(sim2), checkpoint_interval=10, workers=4
        ) as parallel:
            parallel_results = [parallel.process_epoch(r) for r in epochs2]
            assert [r.handoffs for r in parallel_results] == [
                r.handoffs for r in serial_results
            ]
            assert parallel.tracked_objects == serial.tracked_objects
            for tag in list(serial._owner)[:25]:
                assert parallel.owner_of(tag) == serial.owner_of(tag)
                assert parallel.location_of(tag) == serial.location_of(tag)
                assert parallel.container_of(tag) == serial.container_of(tag)


class TestChaosEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_chaos_run_byte_identical(self, workers):
        serial, parallel = _serial_and_parallel(seed=13, workers=workers, chaos_seed=99)
        assert parallel == serial

    def test_chaos_stream_well_formed(self):
        config = _config(seed=13)
        sim, epochs = _epochs(config, chaos_seed=99)
        with ParallelCoordinator(
            _zones(sim), checkpoint_interval=10, workers=2
        ) as coordinator:
            messages = []
            for readings in epochs:
                messages.extend(coordinator.process_epoch(readings).messages)
        check_well_formed(messages)


class TestFailoverEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_fail_recover_mid_run_byte_identical(self, workers):
        actions = {
            60: lambda c: c.fail_zone("shelf-a"),
            100: lambda c: c.recover_zone("shelf-a"),
        }
        serial, parallel = _serial_and_parallel(seed=23, workers=workers, actions=actions)
        assert parallel == serial

    def test_worker_kill_byte_identical(self):
        """A real worker-process crash recovers to the same byte stream."""
        config = _config(seed=23)
        sim, epochs = _epochs(config)
        serial_actions = {
            60: lambda c: c.fail_zone("shelf-a"),
            100: lambda c: c.recover_zone("shelf-a"),
        }
        serial = _run(
            Coordinator(_zones(sim), checkpoint_interval=10), epochs, serial_actions
        )
        kill_actions = {
            60: lambda c: c.fail_zone("shelf-a", kill_worker=True),
            100: lambda c: c.recover_zone("shelf-a"),
        }
        sim2, epochs2 = _epochs(config)
        parallel = _run(
            ParallelCoordinator(_zones(sim2), checkpoint_interval=10, workers=2),
            epochs2,
            kill_actions,
        )
        assert parallel == serial

    def test_fail_recover_under_chaos(self):
        actions = {
            50: lambda c: c.fail_zone("shelf-b"),
            90: lambda c: c.recover_zone("shelf-b"),
        }
        serial, parallel = _serial_and_parallel(
            seed=31, workers=4, chaos_seed=7, actions=actions
        )
        assert parallel == serial


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_checkpoint_restores_serial_state(self, workers):
        """A checkpoint blob produced *inside* a worker restores to the
        same substrate state the serial coordinator would have saved."""
        config = _config(seed=41)
        sim, epochs = _epochs(config)
        serial = Coordinator(_zones(sim), checkpoint_interval=10)
        for readings in epochs:
            serial.process_epoch(readings)
        sim2, epochs2 = _epochs(config)
        with ParallelCoordinator(
            _zones(sim2), checkpoint_interval=10, workers=workers
        ) as parallel:
            for readings in epochs2:
                parallel.process_epoch(readings)
            assert parallel.stats.checkpoints > 0
            for zone_id in serial.zones:
                serial_ckpt = serial._checkpoints[zone_id]
                parallel_ckpt = parallel._checkpoints[zone_id]
                assert parallel_ckpt.epoch == serial_ckpt.epoch
                a = load_checkpoint(io.BytesIO(serial_ckpt.data))
                b = load_checkpoint(io.BytesIO(parallel_ckpt.data))
                assert b.graph.node_count == a.graph.node_count
                assert b.graph.edge_count == a.graph.edge_count
                assert sorted(map(str, b.estimates)) == sorted(map(str, a.estimates))

    def test_pickle_codec_equivalence(self):
        """checkpoint_codec='pickle' (the legacy path) stays equivalent."""
        config = _config(seed=5, duration=80)
        sim, epochs = _epochs(config)
        serial = _run(
            Coordinator(_zones(sim), checkpoint_interval=10, checkpoint_codec="pickle"),
            epochs,
        )
        sim2, epochs2 = _epochs(config)
        parallel = _run(
            ParallelCoordinator(
                _zones(sim2), checkpoint_interval=10, checkpoint_codec="pickle", workers=2
            ),
            epochs2,
        )
        assert parallel == serial


class TestObservability:
    def test_stats_counters_populate(self):
        config = _config(seed=19, duration=60)
        sim, epochs = _epochs(config)
        with ParallelCoordinator(
            _zones(sim), checkpoint_interval=10, workers=2
        ) as coordinator:
            for readings in epochs:
                coordinator.process_epoch(readings)
            stats = coordinator.stats
        assert stats.epochs == len(epochs)
        assert stats.bytes_to_workers > 0
        assert stats.bytes_from_workers > 0
        assert stats.checkpoints > 0
        assert set(stats.busy_s) == set(ASSIGNMENT)
        assert all(n > 0 for n in stats.zone_epochs.values())
        assert len(stats.summary_lines()) >= 4 + len(ASSIGNMENT)


class TestPartitioning:
    def test_empty_zone_raises_by_default(self):
        registry = LocationRegistry()
        dock = registry.create("dock", LocationKind.ENTRY_DOOR)
        with pytest.raises(ValueError, match="no readers"):
            partition_by_location(
                [Reader(0, dock)], {"a": ["dock"], "ghost": []}, registry
            )

    def test_empty_zone_kept_with_quarantine(self):
        registry = LocationRegistry()
        dock = registry.create("dock", LocationKind.ENTRY_DOOR)
        quarantine = Quarantine()
        zones = partition_by_location(
            [Reader(0, dock)], {"a": ["dock"], "ghost": []}, registry, quarantine=quarantine
        )
        assert [z.zone_id for z in zones] == ["a", "ghost"]
        assert quarantine.counts() == {WarningKind.EMPTY_ZONE: 1}

    def test_zone_order_is_assignment_order(self):
        registry = LocationRegistry()
        dock = registry.create("dock", LocationKind.ENTRY_DOOR)
        shelf = registry.create("shelf", LocationKind.SHELF)
        zones = partition_by_location(
            [Reader(0, dock), Reader(1, shelf)],
            {"zzz": ["dock"], "aaa": ["shelf"]},
            registry,
        )
        assert [z.zone_id for z in zones] == ["zzz", "aaa"]

    def test_workers_clamped_to_zones(self):
        registry = LocationRegistry()
        dock = registry.create("dock", LocationKind.ENTRY_DOOR)
        zones = partition_by_location([Reader(0, dock)], {"a": ["dock"]}, registry)
        with ParallelCoordinator(zones, workers=8) as coordinator:
            assert coordinator.num_workers == 1

    def test_bad_worker_count_rejected(self):
        registry = LocationRegistry()
        dock = registry.create("dock", LocationKind.ENTRY_DOOR)
        zones = partition_by_location([Reader(0, dock)], {"a": ["dock"]}, registry)
        with pytest.raises(ValueError, match="workers"):
            ParallelCoordinator(zones, workers=0)


class _FakeProcess:
    """Stands in for a worker process during kill-escalation tests."""

    def __init__(self, dies_on: str | None) -> None:
        self.dies_on = dies_on  # which signal finally works (None: neither)
        self.calls: list[str] = []
        self.pid = 4242

    def is_alive(self) -> bool:
        return self.dies_on not in self.calls

    def terminate(self) -> None:
        self.calls.append("terminate")

    def kill(self) -> None:
        self.calls.append("kill")

    def join(self, timeout=None) -> None:
        self.calls.append("join")


class _FakePipe:
    def __init__(self) -> None:
        self.closed = False

    def close(self) -> None:
        self.closed = True


def _fake_worker(dies_on: str | None):
    from repro.distributed.parallel import _Worker

    worker = object.__new__(_Worker)
    worker.index = 3
    worker.process = _FakeProcess(dies_on)
    worker.conn = _FakePipe()
    return worker


class TestKillEscalation:
    def test_terminate_suffices(self):
        worker = _fake_worker(dies_on="terminate")
        warnings: list[str] = []
        worker.kill(warn=warnings.append)
        assert worker.process.calls == ["terminate", "join"]
        assert warnings == []
        assert worker.conn.closed

    def test_sigkill_follows_ignored_terminate(self):
        worker = _fake_worker(dies_on="kill")
        warnings: list[str] = []
        worker.kill(warn=warnings.append)
        assert worker.process.calls == ["terminate", "join", "kill", "join"]
        assert warnings == []
        assert worker.conn.closed

    def test_unkillable_process_lands_in_quarantine(self):
        worker = _fake_worker(dies_on=None)
        warnings: list[str] = []
        worker.kill(warn=warnings.append)
        assert worker.process.calls == ["terminate", "join", "kill", "join"]
        assert len(warnings) == 1
        assert "survived" in warnings[0] and "4242" in warnings[0]
        assert worker.conn.closed  # the pipe never leaks


class TestWorkerErrorFailover:
    def test_mid_epoch_error_raises_worker_failure_and_recovers(self):
        """A worker exception mid-epoch surfaces as WorkerFailure with the
        splice messages and traceback; recovery resumes a well-formed run."""
        from repro.core.pipeline import Spire
        from repro.distributed.parallel import WorkerFailure
        from repro.events.codec import decode_stream

        config = _config(seed=17)
        sim, epochs = _epochs(config)
        target = epochs[60].epoch
        original = Spire.process_epoch

        def poisoned(self, readings):
            if readings.epoch == target:
                raise RuntimeError("injected worker fault")
            return original(self, readings)

        # patch before construction: forked workers inherit the poison
        Spire.process_epoch = poisoned
        try:
            coordinator = ParallelCoordinator(
                _zones(sim), checkpoint_interval=10, workers=2
            )
            try:
                parts = []
                failure = None
                for i, readings in enumerate(epochs):
                    try:
                        parts.append(
                            encode_stream(coordinator.process_epoch(readings).messages)
                        )
                    except WorkerFailure as exc:
                        assert i == 60 and failure is None
                        failure = exc
                        parts.append(encode_stream(exc.messages))
                        # heal before recovery: the respawned workers fork
                        # from the (now-restored) parent
                        Spire.process_epoch = original
                        for zone_id in exc.failed_zones:
                            parts.append(
                                encode_stream(coordinator.recover_zone(zone_id))
                            )
                assert failure is not None
                assert "injected worker fault" in str(failure)
                assert sorted(failure.failed_zones) == sorted(ASSIGNMENT)
                counts = coordinator.quarantine.counts()
                assert counts[WarningKind.ZONE_FAILED] == len(ASSIGNMENT)
                assert counts[WarningKind.ZONE_RECOVERED] == len(ASSIGNMENT)
            finally:
                coordinator.close()
        finally:
            Spire.process_epoch = original
        from repro.events.wellformed import check_well_formed

        check_well_formed(list(decode_stream(b"".join(parts))))

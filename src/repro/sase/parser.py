"""Recursive-descent parser for the pattern language.

Grammar (EBNF; keywords are case-insensitive, bindings case-sensitive)::

    pattern     = [ "PATTERN" ] seq [ "ONCE" "PER" "EPOCH" ]
                  [ "WHERE" expr ] [ "WITHIN" integer unit ]
                  [ "RETURN" ret-item { "," ret-item } ] ;
    seq         = "SEQ" "(" element { "," element } ")" ;
    element     = [ "!" ] event-class [ "+" ] identifier ;
    event-class = class-name | "(" class-name { "|" class-name } ")" ;
    class-name  = "arrival" | "departure" | "missing" | "contain"
                | "uncontain" | "location" | "containment" | "any" ;
    unit        = "EPOCHS" | "SECONDS" ;
    ret-item    = expr [ "AS" identifier ] ;
    expr        = and-expr { "OR" and-expr } ;
    and-expr    = not-expr { "AND" not-expr } ;
    not-expr    = "NOT" not-expr | comparison ;
    comparison  = sum [ ( "==" | "!=" | "<" | "<=" | ">" | ">=" ) sum ] ;
    sum         = term { ( "+" | "-" ) term } ;
    term        = integer | string | tag-literal | "now"
                | identifier "." attribute
                | function "(" [ expr { "," expr } ] ")"
                | "(" expr ")" ;
    tag-literal = packaging-level ":" integer ;          (* e.g. case:3 *)

Every syntax error names what was expected and where
(:class:`~repro.sase.errors.PatternSyntaxError` carries the offset).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.model.objects import PackagingLevel, TagId
from repro.sase.ast import (
    And,
    Attr,
    BinOp,
    Cmp,
    Element,
    EVENT_ATTRS,
    EVENT_CLASSES,
    Expr,
    Func,
    KNOWN_FUNCS,
    Literal,
    Not,
    Now,
    Or,
    PatternAST,
    ReturnItem,
)
from repro.sase.errors import PatternSyntaxError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op>==|!=|<=|>=|[<>(),!+|.:\-])
    """,
    re.VERBOSE,
)

#: words that may not be used as binding names (they would shadow the
#: keyword/function namespace and make predicates unreadable)
_RESERVED = frozenset(
    {"pattern", "seq", "where", "within", "return", "and", "or", "not", "as",
     "once", "per", "epoch", "now"}
) | KNOWN_FUNCS

_LEVEL_NAMES = frozenset(level.name.lower() for level in PackagingLevel)


@dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'ident' | 'string' | 'op' | 'eof'
    text: str
    pos: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise PatternSyntaxError(
                f"unexpected character {source[pos]!r}", offset=pos
            )
        if match.lastgroup != "ws":
            tokens.append(_Token(match.lastgroup, match.group(), pos))
        pos = match.end()
    tokens.append(_Token("eof", "<end of pattern>", len(source)))
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0

    # -- token plumbing -------------------------------------------------

    def peek(self, ahead: int = 0) -> _Token:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def error(self, expected: str, token: _Token | None = None) -> PatternSyntaxError:
        token = token if token is not None else self.peek()
        return PatternSyntaxError(
            f"expected {expected}, got {token.text!r}", offset=token.pos
        )

    def expect_op(self, op: str, context: str) -> _Token:
        token = self.peek()
        if token.kind != "op" or token.text != op:
            raise self.error(f"{op!r} {context}", token)
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "ident" and token.text.upper() == word

    def take_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str, context: str) -> None:
        if not self.take_keyword(word):
            raise self.error(f"keyword {word} {context}")

    # -- pattern clauses ------------------------------------------------

    def parse(self) -> PatternAST:
        self.take_keyword("PATTERN")  # the leading keyword is optional
        elements = self.parse_seq()
        once = False
        if self.take_keyword("ONCE"):
            self.expect_keyword("PER", "after ONCE")
            self.expect_keyword("EPOCH", "after ONCE PER")
            once = True
        where = None
        if self.take_keyword("WHERE"):
            where = self.parse_expr()
        within = None
        unit = "epochs"
        if self.take_keyword("WITHIN"):
            token = self.peek()
            if token.kind != "number":
                raise self.error("a window length (integer) after WITHIN", token)
            within = int(self.advance().text)
            unit = self.parse_unit()
        returns: list[ReturnItem] = []
        if self.take_keyword("RETURN"):
            returns.append(self.parse_return_item())
            while self.peek().kind == "op" and self.peek().text == ",":
                self.advance()
                returns.append(self.parse_return_item())
        token = self.peek()
        if token.kind != "eof":
            raise self.error(
                "end of pattern (clause order is SEQ, ONCE PER EPOCH, WHERE, "
                "WITHIN, RETURN)",
                token,
            )
        return PatternAST(
            elements=tuple(elements),
            where=where,
            within=within,
            within_unit=unit,
            once_per_epoch=once,
            returns=tuple(returns),
        )

    def parse_unit(self) -> str:
        token = self.peek()
        if token.kind == "ident":
            unit = token.text.upper()
            if unit in ("EPOCH", "EPOCHS"):
                self.advance()
                return "epochs"
            if unit in ("SECOND", "SECONDS"):
                self.advance()
                return "seconds"
        raise self.error("a window unit: EPOCHS or SECONDS", token)

    def parse_seq(self) -> list[Element]:
        self.expect_keyword("SEQ", "to open the sequence clause")
        self.expect_op("(", "after SEQ")
        elements = [self.parse_element()]
        while self.peek().kind == "op" and self.peek().text == ",":
            self.advance()
            elements.append(self.parse_element())
        self.expect_op(")", "to close SEQ(...)")
        return elements

    def parse_element(self) -> Element:
        negated = False
        if self.peek().kind == "op" and self.peek().text == "!":
            self.advance()
            negated = True
        classes = self.parse_event_class()
        kleene = False
        if self.peek().kind == "op" and self.peek().text == "+":
            self.advance()
            kleene = True
        token = self.peek()
        if token.kind != "ident":
            raise self.error("a binding name after the event class", token)
        if token.text.lower() in _RESERVED:
            raise PatternSyntaxError(
                f"binding name {token.text!r} is reserved", offset=token.pos
            )
        binding = self.advance().text
        return Element(binding=binding, classes=classes, negated=negated, kleene=kleene)

    def parse_event_class(self) -> tuple[str, ...]:
        token = self.peek()
        if token.kind == "op" and token.text == "(":
            self.advance()
            names = [self.parse_class_name()]
            while self.peek().kind == "op" and self.peek().text == "|":
                self.advance()
                names.append(self.parse_class_name())
            self.expect_op(")", "to close the event-class union")
            deduped = tuple(dict.fromkeys(names))
            return deduped
        return (self.parse_class_name(),)

    def parse_class_name(self) -> str:
        token = self.peek()
        if token.kind == "ident" and token.text.lower() in EVENT_CLASSES:
            return self.advance().text.lower()
        raise self.error(
            "an event class (one of " + ", ".join(sorted(EVENT_CLASSES)) + ")", token
        )

    def parse_return_item(self) -> ReturnItem:
        expr = self.parse_expr()
        name = None
        if self.take_keyword("AS"):
            token = self.peek()
            if token.kind != "ident":
                raise self.error("an alias name after AS", token)
            name = self.advance().text
        return ReturnItem(expr=expr, name=name)

    # -- expressions ----------------------------------------------------

    def parse_expr(self) -> Expr:
        parts = [self.parse_and()]
        while self.at_keyword("OR"):
            self.advance()
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def parse_and(self) -> Expr:
        parts = [self.parse_not()]
        while self.at_keyword("AND"):
            self.advance()
            parts.append(self.parse_not())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_not(self) -> Expr:
        if self.take_keyword("NOT"):
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_sum()
        token = self.peek()
        if token.kind == "op" and token.text in ("==", "!=", "<", "<=", ">", ">="):
            op = self.advance().text
            return Cmp(op, left, self.parse_sum())
        return left

    def parse_sum(self) -> Expr:
        left = self.parse_term()
        while self.peek().kind == "op" and self.peek().text in ("+", "-"):
            op = self.advance().text
            left = BinOp(op, left, self.parse_term())
        return left

    def parse_term(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            return Literal(int(self.advance().text))
        if token.kind == "string":
            return Literal(self.advance().text[1:-1])
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")", "to close the parenthesized expression")
            return inner
        if token.kind == "ident":
            return self.parse_ident_term()
        raise self.error("a value: number, 'string', level:serial tag, "
                         "binding.attr, function(...), or (expr)", token)

    def parse_ident_term(self) -> Expr:
        token = self.advance()
        word = token.text
        follower = self.peek()
        if word.lower() == "now":
            return Now()
        # tag literal: a packaging level, a colon, a serial
        if (
            word.lower() in _LEVEL_NAMES
            and follower.kind == "op"
            and follower.text == ":"
        ):
            self.advance()
            serial = self.peek()
            if serial.kind != "number":
                raise self.error(f"a serial number after {word}:", serial)
            self.advance()
            return Literal(TagId(PackagingLevel[word.upper()], int(serial.text)))
        if follower.kind == "op" and follower.text == "(":
            if word not in KNOWN_FUNCS:
                raise PatternSyntaxError(
                    f"unknown function {word!r}; available: "
                    + ", ".join(sorted(KNOWN_FUNCS)),
                    offset=token.pos,
                )
            self.advance()
            args: list[Expr] = []
            if not (self.peek().kind == "op" and self.peek().text == ")"):
                args.append(self.parse_expr())
                while self.peek().kind == "op" and self.peek().text == ",":
                    self.advance()
                    args.append(self.parse_expr())
            self.expect_op(")", f"to close the {word}(...) call")
            return Func(word, tuple(args))
        if follower.kind == "op" and follower.text == ".":
            self.advance()
            attr = self.peek()
            if attr.kind != "ident" or attr.text.lower() not in EVENT_ATTRS:
                raise self.error(
                    "an event attribute (one of " + ", ".join(EVENT_ATTRS) + ")", attr
                )
            self.advance()
            return Attr(binding=word, name=attr.text.lower())
        raise self.error(
            f"'.', '(' or ':' after {word!r} (bare names are not values)", follower
        )


def parse_pattern_source(source: str) -> PatternAST:
    """Parse pattern text into a :class:`~repro.sase.ast.PatternAST`.

    Raises :class:`~repro.sase.errors.PatternSyntaxError` with the
    offending offset on malformed input.
    """
    if not source or not source.strip():
        raise PatternSyntaxError("empty pattern source")
    return _Parser(source).parse()

"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_tag
from repro.model.objects import PackagingLevel, TagId


SIM_ARGS = [
    "--duration", "240",
    "--pallet-period", "80",
    "--cases-per-pallet", "2",
    "--items-per-case", "3",
    "--shelf-period", "10",
    "--shelving-time", "60",
    "--seed", "5",
]


class TestParseTag:
    def test_valid_specs(self):
        assert parse_tag("item:5") == TagId(PackagingLevel.ITEM, 5)
        assert parse_tag("CASE:3") == TagId(PackagingLevel.CASE, 3)
        assert parse_tag("pallet:1") == TagId(PackagingLevel.PALLET, 1)

    @pytest.mark.parametrize("bad", ["item", "crate:1", "item:x", "item:1:2"])
    def test_invalid_specs(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_tag(bad)


class TestSimulate:
    def test_writes_trace_and_sidecar(self, tmp_path, capsys):
        trace = tmp_path / "trace.bin"
        rc = main(["simulate", *SIM_ARGS, "-o", str(trace)])
        assert rc == 0
        assert trace.exists() and trace.stat().st_size > 0
        sidecar = json.loads((tmp_path / "trace.bin.json").read_text())
        assert sidecar["duration"] == 240
        out = capsys.readouterr().out
        assert "readings" in out and "pallets" in out


class TestInterpretAndQuery:
    @pytest.fixture
    def trace(self, tmp_path):
        path = tmp_path / "trace.bin"
        assert main(["simulate", *SIM_ARGS, "-o", str(path)]) == 0
        return path

    def test_interpret_writes_events(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        rc = main(["interpret", str(trace), "-o", str(events), "--compression", "1"])
        assert rc == 0
        assert events.exists() and events.stat().st_size > 0
        assert "interpreted" in capsys.readouterr().out

    def test_interpret_requires_sidecar(self, trace, tmp_path, capsys):
        (tmp_path / "trace.bin.json").unlink()
        rc = main(["interpret", str(trace), "-o", str(tmp_path / "e.bin")])
        assert rc == 2
        assert "sidecar" in capsys.readouterr().err

    def test_query_point(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        main(["interpret", str(trace), "-o", str(events), "--compression", "1"])
        rc = main(["query", str(events), "--object", "case:1", "--at", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "location" in out

    def test_query_path(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        main(["interpret", str(trace), "-o", str(events), "--compression", "1"])
        rc = main(["query", str(events), "--object", "case:1", "--path"])
        assert rc == 0
        assert "L" in capsys.readouterr().out

    def test_query_level2_with_decompress(self, trace, tmp_path, capsys):
        events = tmp_path / "events2.bin"
        main(["interpret", str(trace), "-o", str(events), "--compression", "2"])
        rc = main(
            ["query", str(events), "--object", "item:1", "--at", "20", "--decompress"]
        )
        assert rc == 0

    def test_query_requires_at_or_path(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        main(["interpret", str(trace), "-o", str(events)])
        rc = main(["query", str(events), "--object", "case:1"])
        assert rc == 2


class TestDecompress:
    def test_decompress_expands_level2(self, tmp_path, capsys):
        trace = tmp_path / "trace.bin"
        main(["simulate", *SIM_ARGS, "-o", str(trace)])
        events = tmp_path / "events2.bin"
        main(["interpret", str(trace), "-o", str(events), "--compression", "2"])
        expanded = tmp_path / "events1.bin"
        rc = main(["decompress", str(events), "-o", str(expanded)])
        assert rc == 0
        assert expanded.stat().st_size >= events.stat().st_size
        # the expanded stream is directly queriable without --decompress
        rc = main(["query", str(expanded), "--object", "item:1", "--path"])
        assert rc == 0


class TestEvaluate:
    def test_evaluate_prints_metrics(self, capsys):
        rc = main(["evaluate", *SIM_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "location error" in out
        assert "compression ratio" in out

    def test_evaluate_with_smurf(self, capsys):
        rc = main(["evaluate", *SIM_ARGS, "--smurf"])
        assert rc == 0
        assert "SMURF baseline" in capsys.readouterr().out


class TestChaos:
    def test_chaos_reports_degradation(self, capsys):
        rc = main(["chaos", *SIM_ARGS, "--outage-start", "80",
                   "--outage-epochs", "40", "--fault-seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault schedule" in out
        assert "degradation" in out
        assert "well-formedness (fault-free): ok" in out
        assert "well-formedness (faulted): ok" in out

    def test_chaos_schedule_file(self, tmp_path, capsys):
        schedule = tmp_path / "faults.json"
        schedule.write_text(json.dumps([
            {"kind": "drop_batches", "rate": 0.05},
            {"kind": "duplicate_batches", "rate": 0.05},
        ]))
        rc = main(["chaos", *SIM_ARGS, "--schedule", str(schedule)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DropBatches" in out and "DuplicateBatches" in out

    def test_chaos_max_degradation_gate(self, capsys):
        # a negative bound no run can satisfy forces the failure path
        rc = main(["chaos", *SIM_ARGS, "--max-degradation", "-101"])
        assert rc == 1
        assert "exceeds" in capsys.readouterr().err

"""Unit tests for simulation configuration (Table II) and inference params."""

import pytest

from repro.core.params import InferenceParams
from repro.simulator.config import SimulationConfig


class TestSimulationConfig:
    def test_defaults_match_paper_accuracy_workload(self):
        cfg = SimulationConfig()
        assert cfg.duration == 3 * 3600        # 3 hours
        assert cfg.pallet_period == 600        # 6 pallets per hour
        assert cfg.cases_per_pallet_min == 5
        assert cfg.items_per_case == 20
        assert cfg.read_rate == 0.85
        assert cfg.shelf_read_period == 60     # once per minute
        assert cfg.shelving_time_mean == 3600  # 1 hour

    @pytest.mark.parametrize(
        "field,value",
        [
            ("duration", 0),
            ("pallet_period", 0),
            ("cases_per_pallet_min", 0),
            ("items_per_case", -1),
            ("read_rate", 1.5),
            ("shelf_read_period", 0),
            ("num_shelves", 0),
            ("dock_dwell", 0),
            ("belt_dwell", 0),
            ("shelving_time_mean", 0),
            ("shelving_time_jitter", -1),
            ("anomaly_period", -5),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SimulationConfig(**{field: value})

    def test_cases_range_order_enforced(self):
        with pytest.raises(ValueError):
            SimulationConfig(cases_per_pallet_min=8, cases_per_pallet_max=5)

    def test_objects_per_pallet_max(self):
        cfg = SimulationConfig(cases_per_pallet_max=5, items_per_case=20)
        assert cfg.objects_per_pallet_max == 1 + 5 * 21

    def test_frozen(self):
        cfg = SimulationConfig()
        with pytest.raises(AttributeError):
            cfg.duration = 10  # type: ignore[misc]


class TestInferenceParams:
    def test_paper_defaults(self):
        params = InferenceParams()
        assert params.history_size == 32   # S
        assert params.alpha == 0.0
        assert params.beta == 0.4
        assert params.gamma == 0.4
        assert params.theta == 1.25
        assert params.prune_threshold == 0.25
        assert params.partial_hops == 1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("history_size", 0),
            ("alpha", -0.5),
            ("beta", 1.1),
            ("gamma", -0.1),
            ("theta", -1.0),
            ("prune_threshold", -0.1),
            ("partial_hops", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            InferenceParams(**{field: value})

    def test_with_overrides(self):
        params = InferenceParams().with_overrides(beta=0.9, theta=2.0)
        assert params.beta == 0.9 and params.theta == 2.0
        assert params.gamma == 0.4  # untouched

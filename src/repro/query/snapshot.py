"""Snapshot and restore of a populated :class:`EventStreamIndex`.

The serving layer keeps one long-lived index per stream; rebuilding it
from the event file on every process start (what ``repro-spire query``
used to do on every invocation) replays the whole stream.  A snapshot is
a flat binary image of the per-object interval histories — the same
field-batched, no-object-walk approach as the fast substrate checkpoint
codec (:mod:`repro.core.fastcheckpoint`), sharing its magic-envelope and
atomic-write conventions from :mod:`repro.core.checkpoint` — from which
the index (including its secondary indexes) is restored without touching
the stream.

The header carries provenance: a fingerprint of the source event bytes
plus the decompress flag, so a cache consumer can tell whether the
snapshot still matches the stream file it claims to index (see the
``--index-cache`` option of ``repro-spire query``), and the number of
messages indexed, so an index restored from a snapshot of a stream
prefix can be extended with the suffix.
"""

from __future__ import annotations

import hashlib
import os
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.events.messages import INFINITY
from repro.model.objects import TagId
from repro.query.index import EventStreamIndex, Interval, _ObjectHistory

_MAGIC = b"SPIREqidx"
SNAPSHOT_VERSION = 1

#: ``Ve`` sentinel for an open interval (mirrors the wire protocol's
#: :data:`repro.distributed.wire.NONE_SENTINEL` convention)
_INF_SENTINEL = -(1 << 62)

_HEADER = struct.Struct("<H B 32s Q I")  # version, flags, fingerprint, msgs, n objects
_OBJECT = struct.Struct("<Q I I I")  # tag key, n locations, n containments, n missing
_INTERVAL = struct.Struct("<q q q")  # value (color or tag key), vs, ve
_I64 = struct.Struct("<q")

_FLAG_DECOMPRESS = 1


class SnapshotError(RuntimeError):
    """Raised when an index snapshot cannot be written or restored."""


@dataclass(frozen=True)
class SnapshotMeta:
    """Provenance stored in a snapshot header."""

    fingerprint: bytes
    decompress: bool
    messages_indexed: int


def fingerprint_stream(data: bytes) -> bytes:
    """Provenance fingerprint of raw (encoded) event-stream bytes."""
    return hashlib.sha256(data).digest()


def _encode_ve(ve: float) -> int:
    return _INF_SENTINEL if ve == INFINITY else int(ve)


def _decode_ve(ve: int) -> float:
    return INFINITY if ve == _INF_SENTINEL else ve


def dumps_index(
    index: EventStreamIndex,
    fingerprint: bytes = b"\x00" * 32,
    decompress: bool = False,
) -> bytes:
    """Serialise a populated index to snapshot bytes."""
    if len(fingerprint) != 32:
        raise SnapshotError(f"fingerprint must be 32 bytes, got {len(fingerprint)}")
    histories = index._objects
    parts = [
        _MAGIC,
        _HEADER.pack(
            SNAPSHOT_VERSION,
            _FLAG_DECOMPRESS if decompress else 0,
            fingerprint,
            index.messages_indexed,
            len(histories),
        ),
    ]
    for obj in sorted(histories):
        history = histories[obj]
        parts.append(
            _OBJECT.pack(
                obj.key(),
                len(history.locations),
                len(history.containers),
                len(history.missing_at),
            )
        )
        for interval in history.locations:
            parts.append(_INTERVAL.pack(interval.value, interval.vs, _encode_ve(interval.ve)))
        for interval in history.containers:
            parts.append(
                _INTERVAL.pack(interval.value.key(), interval.vs, _encode_ve(interval.ve))
            )
        for report in history.missing_at:
            parts.append(_I64.pack(report))
    return b"".join(parts)


def loads_index(data: bytes) -> tuple[EventStreamIndex, SnapshotMeta]:
    """Restore an index (and its provenance) from snapshot bytes."""
    if data[: len(_MAGIC)] != _MAGIC:
        raise SnapshotError("not an index snapshot (bad magic)")
    offset = len(_MAGIC)
    try:
        version, flags, fingerprint, messages_indexed, n_objects = _HEADER.unpack_from(
            data, offset
        )
    except struct.error as exc:
        raise SnapshotError(f"truncated snapshot header: {exc}") from exc
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} not supported (expected {SNAPSHOT_VERSION})"
        )
    offset += _HEADER.size
    index = EventStreamIndex()
    try:
        for _ in range(n_objects):
            key, n_loc, n_cont, n_missing = _OBJECT.unpack_from(data, offset)
            offset += _OBJECT.size
            history = _ObjectHistory.empty()
            for _ in range(n_loc):
                value, vs, ve = _INTERVAL.unpack_from(data, offset)
                offset += _INTERVAL.size
                history.locations.append(Interval(value, vs, _decode_ve(ve)))
            for _ in range(n_cont):
                value, vs, ve = _INTERVAL.unpack_from(data, offset)
                offset += _INTERVAL.size
                history.containers.append(Interval(TagId.from_key(value), vs, _decode_ve(ve)))
            for _ in range(n_missing):
                (report,) = _I64.unpack_from(data, offset)
                offset += _I64.size
                history.missing_at.append(report)
            index._objects[TagId.from_key(key)] = history
    except struct.error as exc:
        raise SnapshotError(f"truncated snapshot body: {exc}") from exc
    if offset != len(data):
        raise SnapshotError(f"{len(data) - offset} trailing byte(s) after snapshot body")
    index.messages_indexed = messages_indexed
    index._rebuild_secondaries()
    meta = SnapshotMeta(
        fingerprint=fingerprint,
        decompress=bool(flags & _FLAG_DECOMPRESS),
        messages_indexed=messages_indexed,
    )
    return index, meta


def save_index(
    index: EventStreamIndex,
    path: str | Path,
    fingerprint: bytes = b"\x00" * 32,
    decompress: bool = False,
) -> int:
    """Atomically write a snapshot file; returns bytes written.

    Same write-temp-then-rename discipline as the substrate checkpoints:
    a crash mid-write never leaves a truncated snapshot behind.
    """
    path = Path(path)
    data = dumps_index(index, fingerprint=fingerprint, decompress=decompress)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent or Path("."), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fp:
            fp.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(data)


def load_index(path: str | Path) -> tuple[EventStreamIndex, SnapshotMeta]:
    """Restore an index from a snapshot file."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    return loads_index(data)

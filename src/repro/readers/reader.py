"""Fixed RFID reader model.

A reader is mounted at one location and interrogates periodically.  Each
interrogation is an independent Bernoulli trial per present tag with success
probability ``read_rate`` — the standard model for RFID loss (paper
references [9], [18], [19]).  Optionally, a per-tag Gilbert–Elliott burst
model correlates consecutive misses: the paper attributes read loss to
occluding metal and tag contention ([10], [11]), both of which persist
across epochs rather than flipping a fresh coin each time.

Two reader behaviours matter to SPIRE beyond plain observation:

* **Special readers** (belt readers) scan containers *one at a time*, so
  domain knowledge lets SPIRE treat their readings as containment
  confirmations (Section II's running example, Section III-B step 3).
* **Exit readers** sit at proper exit channels; objects they observe are
  leaving the monitored world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

from repro.model.locations import Location
from repro.model.objects import PackagingLevel, TagId


class ReaderKind(Enum):
    """Observation semantics of a reader."""

    NORMAL = "normal"
    #: Special reader (Section II): scans one top-level container at a time,
    #: so co-read tags are known to belong to that container's subtree.
    SPECIAL = "special"
    #: Reader at a proper exit channel; observed objects leave the world.
    EXIT = "exit"


@dataclass
class Reader:
    """A fixed reader: identity, placement, duty cycle and loss model.

    Attributes:
        reader_id: Unique small integer id within a deployment.
        location: Where the reader (and anything it reads) is.
        period: Interrogation period in epochs; a reader with ``period=10``
            interrogates at epochs 0, 10, 20, …  The paper expresses this as
            a frequency (Table II); period is simply ``round(1/frequency)``
            in epochs.
        read_rate: Per-tag probability that an interrogation detects a
            present tag (0.5–1.0 in the paper's experiments).
        kind: Observation semantics (normal / special / exit).
        singulation_level: For special readers, the packaging level of the
            containers the reader scans one at a time (a receiving belt
            singulates CASEs, an exit belt singulates PALLETs).  Required
            when ``kind`` is SPECIAL; this is the domain knowledge that lets
            SPIRE treat the reader's readings as containment confirmations.
        phase: Offset of the interrogation schedule, so co-located reader
            groups need not fire in lock-step.
    """

    reader_id: int
    location: Location
    period: int = 1
    read_rate: float = 1.0
    kind: ReaderKind = ReaderKind.NORMAL
    singulation_level: "PackagingLevel | None" = None
    phase: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1 epoch, got {self.period}")
        if not 0.0 <= self.read_rate <= 1.0:
            raise ValueError(f"read_rate must be in [0, 1], got {self.read_rate}")
        if self.location.color < 0:
            raise ValueError("a reader cannot be placed at the unknown location")
        if self.kind is ReaderKind.SPECIAL and self.singulation_level is None:
            raise ValueError("special readers must declare a singulation_level")

    @property
    def is_special(self) -> bool:
        """True if this reader confirms containment (belt-style singulation)."""
        return self.kind is ReaderKind.SPECIAL

    @property
    def is_exit(self) -> bool:
        """True for readers at proper exit channels."""
        return self.kind is ReaderKind.EXIT

    def interrogates_at(self, epoch: int) -> bool:
        """Does this reader fire at ``epoch``?"""
        return (epoch - self.phase) % self.period == 0

    def observe(
        self,
        present: Sequence[TagId],
        rng: np.random.Generator,
        epoch: int,
    ) -> list[TagId]:
        """Simulate one interrogation over the ``present`` tags.

        Returns the subset of tags detected this epoch.  Callers should
        check :meth:`interrogates_at` first; observing when the reader is
        not scheduled returns an empty list.
        """
        if not self.interrogates_at(epoch) or not present:
            return []
        if self.read_rate >= 1.0:
            return list(present)
        hits = rng.random(len(present)) < self.read_rate
        return [tag for tag, hit in zip(present, hits) if hit]


def readers_at(readers: Iterable[Reader], location: Location) -> list[Reader]:
    """All readers mounted at ``location``."""
    return [r for r in readers if r.location == location]


def schedule_lcm(readers: Iterable[Reader]) -> int:
    """Least common multiple of all reader periods.

    Section IV-D: complete inference runs every ``lcm(periods)`` epochs;
    partial inference runs otherwise.
    """
    lcm = 1
    for reader in readers:
        lcm = np.lcm(lcm, reader.period)
    return int(lcm)

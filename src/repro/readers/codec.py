"""Binary codec for raw readings.

Backs the :data:`~repro.readers.stream.RAW_READING_BYTES` accounting with a
real wire format, so recorded traces can be persisted and replayed:

``level(1) | serial low(4) | serial high(2) | reader(2) | timestamp(4) |
seq(2) | 1 reserved byte`` — 16 bytes per reading, little-endian.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator

from repro.model.objects import PackagingLevel, TagId
from repro.readers.stream import RAW_READING_BYTES, EpochReadings, Reading, ReadingStream

WIRE_FORMAT = struct.Struct("<BIHHLHx")

_SERIAL_MAX = (1 << 48) - 1


class ReadingCodecError(ValueError):
    """Raised when a reading cannot be encoded or bytes cannot be decoded."""


def encode_reading(reading: Reading) -> bytes:
    """Encode one raw reading to its 16-byte wire form."""
    if not 0 <= reading.tag.serial <= _SERIAL_MAX:
        raise ReadingCodecError(f"serial {reading.tag.serial} out of 48-bit range")
    if not 0 <= reading.reader_id < (1 << 16):
        raise ReadingCodecError(f"reader id {reading.reader_id} out of 16-bit range")
    if not 0 <= reading.timestamp < (1 << 32):
        raise ReadingCodecError(f"timestamp {reading.timestamp} out of 32-bit range")
    seq = min(reading.seq, (1 << 16) - 1)
    return WIRE_FORMAT.pack(
        reading.tag.level.value,
        reading.tag.serial & 0xFFFFFFFF,
        (reading.tag.serial >> 32) & 0xFFFF,
        reading.reader_id,
        reading.timestamp,
        seq,
    )


def decode_reading(data: bytes) -> Reading:
    """Decode one 16-byte wire-form reading."""
    if len(data) != WIRE_FORMAT.size:
        raise ReadingCodecError(f"expected {WIRE_FORMAT.size} bytes, got {len(data)}")
    level, low, high, reader_id, timestamp, seq = WIRE_FORMAT.unpack(data)
    try:
        tag = TagId(PackagingLevel(level), (high << 32) | low)
    except ValueError as exc:
        raise ReadingCodecError(f"invalid packaging level {level}") from exc
    return Reading(tag=tag, reader_id=reader_id, timestamp=timestamp, seq=seq)


def encode_epoch(readings: EpochReadings) -> bytes:
    """Encode all readings of one epoch."""
    return b"".join(encode_reading(r) for r in readings.readings())


def write_trace(stream: ReadingStream | Iterable[EpochReadings], fp: BinaryIO) -> int:
    """Persist a whole trace; returns bytes written."""
    written = 0
    for epoch_readings in stream:
        written += fp.write(encode_epoch(epoch_readings))
    return written


def read_trace(fp: BinaryIO) -> ReadingStream:
    """Load a trace persisted by :func:`write_trace`.

    Epoch grouping is reconstructed from the reading timestamps; epochs
    with no readings at all are restored as empty entries between the
    observed timestamps so replay semantics (one entry per epoch) hold.
    """
    size = WIRE_FORMAT.size
    readings: list[Reading] = []
    while True:
        chunk = fp.read(size)
        if not chunk:
            break
        if len(chunk) != size:
            raise ReadingCodecError("truncated trace: partial record at EOF")
        readings.append(decode_reading(chunk))

    stream = ReadingStream()
    if not readings:
        return stream
    last_epoch = readings[-1].timestamp
    by_epoch: dict[int, EpochReadings] = {}
    for reading in readings:
        epoch = by_epoch.setdefault(reading.timestamp, EpochReadings(epoch=reading.timestamp))
        epoch.add(reading.reader_id, [reading.tag])
    for epoch_number in range(readings[0].timestamp, last_epoch + 1):
        stream.append(by_epoch.get(epoch_number, EpochReadings(epoch=epoch_number)))
    return stream


assert WIRE_FORMAT.size == RAW_READING_BYTES, "wire format must match the sizing constant"


# ----------------------------------------------------------------------
# grouped epoch frames (the distributed fan-out hot path)
# ----------------------------------------------------------------------
#
# :func:`write_trace` flattens an epoch into per-reading records, which is
# right for durable traces but loses the ``by_reader`` grouping — and the
# pipeline's dedup semantics depend on the *order* readers and tags were
# added in.  An epoch frame preserves that order exactly, so a decoded
# frame is processed byte-identically to the original object:
#
# ``epoch(8) | n_readers(4)`` then per reader ``reader(2) | n_tags(4)``
# followed by ``n_tags`` packed 64-bit tag keys (:meth:`TagId.key`).

_FRAME_HEADER = struct.Struct("<qI")
_FRAME_READER = struct.Struct("<HI")


def encode_epoch_frame(readings: EpochReadings) -> bytes:
    """Encode one epoch with its reader grouping and ordering intact."""
    parts = [_FRAME_HEADER.pack(readings.epoch, len(readings.by_reader))]
    for reader_id, tags in readings.by_reader.items():
        if not 0 <= reader_id < (1 << 16):
            raise ReadingCodecError(f"reader id {reader_id} out of 16-bit range")
        parts.append(_FRAME_READER.pack(reader_id, len(tags)))
        parts.append(struct.pack(f"<{len(tags)}Q", *(tag.key() for tag in tags)))
    return b"".join(parts)


def decode_epoch_frame(data: bytes, offset: int = 0) -> tuple[EpochReadings, int]:
    """Decode one epoch frame starting at ``offset``.

    Returns the readings and the offset just past the frame, so frames can
    be concatenated back-to-back on a pipe.
    """
    try:
        epoch, n_readers = _FRAME_HEADER.unpack_from(data, offset)
        offset += _FRAME_HEADER.size
        readings = EpochReadings(epoch=epoch)
        for _ in range(n_readers):
            reader_id, n_tags = _FRAME_READER.unpack_from(data, offset)
            offset += _FRAME_READER.size
            keys = struct.unpack_from(f"<{n_tags}Q", data, offset)
            offset += 8 * n_tags
            readings.add(reader_id, [TagId.from_key(key) for key in keys])
    except struct.error as exc:
        raise ReadingCodecError(f"truncated epoch frame: {exc}") from exc
    return readings, offset

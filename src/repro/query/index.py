"""Interval index over compressed event streams.

:class:`EventStreamIndex` replays a well-formed level-1 stream (or a
level-2 stream, decompressed on demand) into per-object interval histories
and answers point and range queries:

* ``location_of(obj, t)`` / ``container_of(obj, t)`` — state at a time;
* ``contents_of(container, t)`` / ``objects_at(place, t)`` — inverses;
* ``top_level_container(obj, t)`` — containment-chain walk;
* ``path(obj)`` — the object's full location trajectory (tracking/path
  queries in the sense of the RFID-database literature);
* ``visitors(place, t1, t2)`` — every object present during a window;
* ``missing_reports(obj)`` — when the object was reported missing.

The index is **incremental**: build it from a finished stream, or keep
calling :meth:`extend` as more messages arrive (messages must keep
arriving in stream order).  Each ``extend`` maintains, besides the
per-object histories, per-place and per-container *secondary indexes*
(:class:`_SecondaryIndex`) in O(messages applied) — the inverse queries
(``objects_at``, ``contents_of``, ``visitors``) consult only the
intervals recorded at that place/container, found by bisection, instead
of scanning every object the stream ever mentioned.  This is what makes
the index servable: the standing-query engine of :mod:`repro.serving`
extends it once per epoch and answers point queries between epochs.

A populated index can be snapshotted to bytes and restored without
replaying the stream — see :mod:`repro.query.snapshot`.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, NamedTuple

from repro.compression.decompress import decompress_stream
from repro.events.messages import INFINITY, EventKind, EventMessage
from repro.model.objects import TagId


class Interval(NamedTuple):
    """A value holding over ``[vs, ve)``; ``ve`` is ``inf`` while open."""

    value: object
    vs: int
    ve: float

    def contains(self, t: int) -> bool:
        """Does this interval cover time ``t``?"""
        return self.vs <= t < self.ve


@dataclass
class _ObjectHistory:
    locations: list[Interval]
    containers: list[Interval]
    missing_at: list[int]

    @staticmethod
    def empty() -> "_ObjectHistory":
        """A fresh, empty per-object history."""
        return _ObjectHistory(locations=[], containers=[], missing_at=[])


def _at(intervals: list[Interval], t: int):
    """Value of the interval covering ``t``, or ``None``."""
    index = bisect_right(intervals, t, key=lambda iv: iv.vs) - 1
    if index >= 0 and intervals[index].contains(t):
        return intervals[index].value
    return None


# cells are mutable [vs, ve, obj] triples so closing an interval updates the
# vs-sorted list in place without knowing the cell's position
_VS, _VE, _OBJ = 0, 1, 2


@dataclass
class _SecondaryIndex:
    """All intervals recorded at one place (or inside one container).

    Two sorted views of the same intervals allow output-sensitive point
    and window lookups by bisection:

    * ``by_start`` — every interval as a mutable ``[vs, ve, obj]`` cell,
      sorted by ``vs`` (cells are appended when the start message arrives,
      so stream order keeps the list sorted; ``ve`` is patched in place
      when the end message arrives);
    * ``by_end`` — the *closed* intervals as ``(ve, obj, vs)`` tuples,
      sorted by ``ve`` (appended at close time, which is stream order).

    A point query at ``t`` scans whichever candidate set is smaller: the
    ``vs <= t`` prefix of ``by_start``, or the ``ve > t`` suffix of
    ``by_end`` plus the (few) still-open cells.  Either way the scan is
    bounded by the intervals at this one place — never by the total
    object population.
    """

    by_start: list[list] = field(default_factory=list)
    by_end: list[tuple[int, TagId, int]] = field(default_factory=list)
    open: dict[TagId, list] = field(default_factory=dict)
    #: open cells displaced by a later open interval of the same object at
    #: the same place (only ill-formed streams produce these; kept so the
    #: suffix-scan branch sees exactly the same intervals as the prefix)
    shadowed: list[list] = field(default_factory=list)

    def add_start(self, obj: TagId, vs: int) -> None:
        cell = [vs, INFINITY, obj]
        if self.by_start and self.by_start[-1][_VS] > vs:
            insort(self.by_start, cell, key=lambda c: c[_VS])
        else:
            self.by_start.append(cell)
        displaced = self.open.get(obj)
        if displaced is not None:
            self.shadowed.append(displaced)
        self.open[obj] = cell

    def close(self, obj: TagId, ve: int) -> None:
        cell = self.open.pop(obj)
        cell[_VE] = ve
        entry = (ve, obj, cell[_VS])
        if self.by_end and self.by_end[-1][0] > ve:
            insort(self.by_end, entry)
        else:
            self.by_end.append(entry)

    # ------------------------------------------------------------------
    # candidate enumeration (callers verify / deduplicate as needed)
    # ------------------------------------------------------------------

    def candidates_at(self, t: int) -> list[TagId]:
        """Objects with an interval here covering ``t`` (may repeat)."""
        return self.candidates_overlapping(t, t)

    def candidates_overlapping(self, t1: int, t2: int) -> list[TagId]:
        """Objects with an interval here satisfying ``vs <= t2 < ve or
        vs <= t2 and ve > t1`` (i.e. overlapping the closed window)."""
        n_prefix = bisect_right(self.by_start, t2, key=lambda c: c[_VS])
        first_live = bisect_right(self.by_end, (t1, _MAX_TAG, 0))
        n_suffix = len(self.by_end) - first_live + len(self.open) + len(self.shadowed)
        if n_prefix <= n_suffix:
            return [c[_OBJ] for c in self.by_start[:n_prefix] if c[_VE] > t1]
        out = [obj for ve, obj, vs in self.by_end[first_live:] if vs <= t2]
        out.extend(obj for obj, cell in self.open.items() if cell[_VS] <= t2)
        out.extend(c[_OBJ] for c in self.shadowed if c[_VS] <= t2)
        return out


#: greatest possible tag in tuple order, for bisecting ``(ve, obj, vs)``
#: entries strictly by their ``ve`` component
_MAX_TAG = (float("inf"),)


class EventStreamIndex:
    """Queryable, incrementally maintained index over an event stream."""

    def __init__(
        self,
        messages: Iterable[EventMessage] = (),
        decompress: bool = False,
    ) -> None:
        """Build an index.

        Set ``decompress=True`` when ``messages`` is a level-2 stream: the
        level-2 decompression routine (§V-C) runs first so contained
        objects' location histories are explicit.
        """
        self._objects: dict[TagId, _ObjectHistory] = defaultdict(_ObjectHistory.empty)
        self._places: dict[int, _SecondaryIndex] = defaultdict(_SecondaryIndex)
        self._containers: dict[TagId, _SecondaryIndex] = defaultdict(_SecondaryIndex)
        #: messages applied so far (snapshot bookkeeping / cache metadata)
        self.messages_indexed = 0
        if decompress:
            messages = decompress_stream(list(messages))
        self.extend(messages)

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def extend(self, messages: Iterable[EventMessage]) -> None:
        """Apply more messages (in stream order)."""
        applied = 0
        for msg in messages:
            history = self._objects[msg.obj]
            if msg.kind is EventKind.START_LOCATION:
                history.locations.append(Interval(msg.place, msg.vs, INFINITY))
                self._places[msg.place].add_start(msg.obj, msg.vs)
            elif msg.kind is EventKind.END_LOCATION:
                self._close(history.locations, msg.place, msg.vs, int(msg.ve), msg)
                self._places[msg.place].close(msg.obj, int(msg.ve))
            elif msg.kind is EventKind.START_CONTAINMENT:
                history.containers.append(Interval(msg.container, msg.vs, INFINITY))
                self._containers[msg.container].add_start(msg.obj, msg.vs)
            elif msg.kind is EventKind.END_CONTAINMENT:
                self._close(history.containers, msg.container, msg.vs, int(msg.ve), msg)
                self._containers[msg.container].close(msg.obj, int(msg.ve))
            elif msg.kind is EventKind.MISSING:
                history.missing_at.append(msg.vs)
            applied += 1
        self.messages_indexed += applied

    @staticmethod
    def _close(intervals: list[Interval], value, vs: int, ve: int, msg: EventMessage) -> None:
        if not intervals:
            raise ValueError(f"end message without a matching start: {msg}")
        last = intervals[-1]
        if last.ve != INFINITY or last.value != value or last.vs != vs:
            raise ValueError(f"end message does not match the open interval: {msg}")
        intervals[-1] = Interval(value, vs, ve)

    def _rebuild_secondaries(self) -> None:
        """Rebuild the per-place/per-container indexes from the histories.

        Used after a snapshot restore: the restored structures are
        query-equivalent to the live ones (tie order among equal ``vs`` /
        ``ve`` may differ, which no query observes).
        """
        self._places = defaultdict(_SecondaryIndex)
        self._containers = defaultdict(_SecondaryIndex)
        for kind in ("locations", "containers"):
            per_value: dict = defaultdict(list)
            for obj, history in self._objects.items():
                for interval in getattr(history, kind):
                    per_value[interval.value].append((interval.vs, interval.ve, obj))
            target = self._places if kind == "locations" else self._containers
            for value, entries in per_value.items():
                secondary = target[value]
                entries.sort(key=lambda e: e[0])
                for vs, ve, obj in entries:
                    secondary.add_start(obj, vs)
                    if ve != INFINITY:
                        secondary.close(obj, int(ve))
                secondary.by_end.sort()

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------

    def objects(self) -> list[TagId]:
        """Every object the stream ever mentioned."""
        return sorted(self._objects)

    def location_of(self, obj: TagId, t: int) -> int | None:
        """Location color of ``obj`` at time ``t`` (``None`` if unreported)."""
        history = self._objects.get(obj)
        if history is None:
            return None
        return _at(history.locations, t)

    def container_of(self, obj: TagId, t: int) -> TagId | None:
        """Direct container of ``obj`` at time ``t``."""
        history = self._objects.get(obj)
        if history is None:
            return None
        return _at(history.containers, t)

    def top_level_container(self, obj: TagId, t: int) -> TagId:
        """Outermost container of ``obj`` at time ``t`` (``obj`` if none)."""
        current = obj
        seen = {obj}
        while True:
            parent = self.container_of(current, t)
            if parent is None or parent in seen:
                return current
            seen.add(parent)
            current = parent

    def is_missing(self, obj: TagId, t: int) -> bool:
        """Was ``obj`` in reported-missing state at time ``t``?

        True when a Missing report precedes ``t`` and no location interval
        covers ``t``.
        """
        history = self._objects.get(obj)
        if history is None:
            return False
        if _at(history.locations, t) is not None:
            return False
        index = bisect_right(history.missing_at, t) - 1
        if index < 0:
            return False
        # missing from the report until the next location interval starts
        report = history.missing_at[index]
        after = bisect_right(history.locations, report, key=lambda iv: iv.vs)
        return not (after < len(history.locations) and history.locations[after].vs <= t)

    # ------------------------------------------------------------------
    # inverse and range queries (secondary-index backed)
    # ------------------------------------------------------------------

    def contents_of(self, container: TagId, t: int) -> list[TagId]:
        """Objects directly contained in ``container`` at time ``t``."""
        secondary = self._containers.get(container)
        if secondary is None:
            return []
        return sorted(
            {
                obj
                for obj in secondary.candidates_at(t)
                if _at(self._objects[obj].containers, t) == container
            }
        )

    def objects_at(self, place: int, t: int) -> list[TagId]:
        """Objects reported at location ``place`` at time ``t``."""
        secondary = self._places.get(place)
        if secondary is None:
            return []
        return sorted(
            {
                obj
                for obj in secondary.candidates_at(t)
                if _at(self._objects[obj].locations, t) == place
            }
        )

    def visitors(self, place: int, t1: int, t2: int) -> list[TagId]:
        """Objects with any location interval at ``place`` overlapping [t1, t2]."""
        secondary = self._places.get(place)
        if secondary is None:
            return []
        return sorted(set(secondary.candidates_overlapping(t1, t2)))

    def path(self, obj: TagId) -> list[Interval]:
        """The object's full location trajectory, in time order."""
        history = self._objects.get(obj)
        return list(history.locations) if history else []

    def containment_history(self, obj: TagId) -> list[Interval]:
        """All containment intervals of ``obj``, in time order."""
        history = self._objects.get(obj)
        return list(history.containers) if history else []

    def missing_reports(self, obj: TagId) -> list[int]:
        """Epochs at which ``obj`` was reported missing."""
        history = self._objects.get(obj)
        return list(history.missing_at) if history else []

    def containment_tree(self, root: TagId, t: int) -> dict:
        """The containment tree under ``root`` at time ``t``.

        Returns ``{"tag": root, "children": [subtrees...]}``, children in
        tag order.  Use :meth:`top_level_container` first to find the root
        of an arbitrary object's tree.
        """
        children = [
            self.containment_tree(child, t) for child in self.contents_of(root, t)
        ]
        return {"tag": root, "children": children}

    def render_tree(self, root: TagId, t: int, registry=None) -> str:
        """ASCII rendering of the containment tree under ``root`` at ``t``."""

        def place(tag: TagId) -> str:
            color = self.location_of(tag, t)
            if color is None:
                return ""
            name = registry.by_color(color).name if registry is not None else f"L{color}"
            return f"  @ {name}"

        lines: list[str] = []

        def walk(node: dict, prefix: str, is_last: bool, is_root: bool) -> None:
            tag = node["tag"]
            if is_root:
                lines.append(f"{tag}{place(tag)}")
                child_prefix = ""
            else:
                connector = "`-- " if is_last else "|-- "
                lines.append(f"{prefix}{connector}{tag}{place(tag)}")
                child_prefix = prefix + ("    " if is_last else "|   ")
            children = node["children"]
            for index, child in enumerate(children):
                walk(child, child_prefix, index == len(children) - 1, False)

        walk(self.containment_tree(root, t), "", True, True)
        return "\n".join(lines)

    def dwell_time(self, obj: TagId, place: int, horizon: int | None = None) -> int:
        """Total epochs ``obj`` was reported at ``place``.

        Open intervals are truncated at ``horizon`` (required if any
        interval at ``place`` is still open).
        """
        total = 0
        for interval in self.path(obj):
            if interval.value != place:
                continue
            ve = interval.ve
            if ve == INFINITY:
                if horizon is None:
                    raise ValueError(
                        f"open interval at place {place}; pass a horizon to truncate"
                    )
                ve = horizon
            total += max(0, int(ve) - interval.vs)
        return total

"""End-to-end integration scenarios across the full substrate."""

import pytest

from repro.compression.decompress import decompress_stream
from repro.core.params import InferenceParams
from repro.events.messages import EventKind
from repro.events.wellformed import check_well_formed
from repro.experiments.runner import ground_truth_stream, run_smurf, run_spire
from repro.metrics.accuracy import ScoringPolicy
from repro.metrics.delay import detection_delays
from repro.metrics.events import match_events
from repro.metrics.sizing import location_only
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator


@pytest.fixture(scope="module")
def anomaly_sim():
    config = SimulationConfig(
        duration=900,
        pallet_period=200,
        cases_per_pallet_min=3,
        cases_per_pallet_max=3,
        items_per_case=4,
        read_rate=0.9,
        shelf_read_period=15,
        num_shelves=2,
        shelving_time_mean=180,
        shelving_time_jitter=30,
        anomaly_period=120,
        seed=23,
    )
    return WarehouseSimulator(config).run()


class TestAnomalyDetection:
    # detection is measured on level-1 output: level-2 suppresses contained
    # objects' Missing events by design (they reappear on decompression)

    def test_removals_are_detected_as_missing(self, anomaly_sim):
        report = run_spire(
            anomaly_sim, params=InferenceParams(theta=1.5), compression_level=1, score=False
        )
        detection = detection_delays(report.messages, anomaly_sim.truth.vanished)
        assert detection.detection_rate > 0.7
        assert detection.mean_delay > 0

    def test_higher_theta_detects_faster(self, anomaly_sim):
        slow = run_spire(
            anomaly_sim, params=InferenceParams(theta=0.6), compression_level=1, score=False
        )
        fast = run_spire(
            anomaly_sim, params=InferenceParams(theta=3.0), compression_level=1, score=False
        )
        d_slow = detection_delays(slow.messages, anomaly_sim.truth.vanished)
        d_fast = detection_delays(fast.messages, anomaly_sim.truth.vanished)
        assert d_slow.delays and d_fast.delays
        assert d_fast.mean_delay <= d_slow.mean_delay


class TestSpireVsSmurf:
    def test_spire_location_accuracy_beats_smurf(self, small_sim):
        spire = run_spire(small_sim, policies=(ScoringPolicy.ALL,))
        smurf = run_smurf(small_sim)
        spire_err = spire.accuracy[ScoringPolicy.ALL].location_error_rate
        assert spire_err <= smurf.accuracy.location_error_rate + 0.02

    def test_spire_fmeasure_beats_smurf_at_low_read_rate(self):
        """The paper's Fig. 11(a) gap is largest at low read rates, where
        SMURF's smoothing cannot bridge consecutive missed readings but
        SPIRE's containment propagation can."""
        config = SimulationConfig(
            duration=600,
            pallet_period=150,
            cases_per_pallet_min=3,
            cases_per_pallet_max=3,
            items_per_case=4,
            read_rate=0.6,
            shelf_read_period=20,
            num_shelves=2,
            shelving_time_mean=120,
            shelving_time_jitter=30,
            seed=11,
        )
        sim = WarehouseSimulator(config).run()
        spire = run_spire(sim, compression_level=1, score=False)
        smurf = run_smurf(sim, score=False)
        reference = location_only(ground_truth_stream(sim))
        tolerance = 2 * config.shelf_read_period
        spire_f = match_events(location_only(spire.messages), reference, tolerance).f_measure
        smurf_f = match_events(location_only(smurf.messages), reference, tolerance).f_measure
        assert spire_f > smurf_f


class TestCompressionEndToEnd:
    def test_substantial_data_reduction(self, small_sim):
        report = run_spire(small_sim, compression_level=2, score=False)
        assert report.compression_ratio < 0.5

    def test_level2_stream_decompresses_cleanly(self, small_sim):
        report = run_spire(small_sim, compression_level=2, score=False)
        decompressed = decompress_stream(report.messages)
        check_well_formed(decompressed)
        # decompression adds back the suppressed child locations
        child_locations = {
            m.obj
            for m in decompressed
            if m.kind is EventKind.START_LOCATION
        }
        compressed_locations = {
            m.obj for m in report.messages if m.kind is EventKind.START_LOCATION
        }
        assert child_locations >= compressed_locations

    def test_containment_output_present(self, small_sim):
        report = run_spire(small_sim, compression_level=2, score=False)
        kinds = {m.kind for m in report.messages}
        assert EventKind.START_CONTAINMENT in kinds
        assert EventKind.END_CONTAINMENT in kinds


class TestReadRateSensitivity:
    @pytest.mark.parametrize("read_rate", [0.7, 1.0])
    def test_errors_shrink_with_read_rate(self, read_rate):
        config = SimulationConfig(
            duration=600,
            pallet_period=150,
            cases_per_pallet_min=3,
            cases_per_pallet_max=3,
            items_per_case=4,
            read_rate=read_rate,
            shelf_read_period=20,
            num_shelves=2,
            shelving_time_mean=120,
            shelving_time_jitter=20,
            seed=31,
        )
        sim = WarehouseSimulator(config).run()
        report = run_spire(sim, policies=(ScoringPolicy.ALL,))
        acc = report.accuracy[ScoringPolicy.ALL]
        threshold = 0.10 if read_rate == 1.0 else 0.30
        assert acc.location_error_rate < threshold
        assert acc.containment_error_rate < threshold

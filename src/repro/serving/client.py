"""Asyncio client for the serving front-end.

:class:`SpireClient` opens one TCP connection, runs a background reader
task that demultiplexes the server's frames — replies resolve the future
registered under their request id; subscription events (single or
batched, see ``FLAG_BATCH_EVENTS``) are routed to their
:class:`ClientSubscription` handle *and* mirrored onto the legacy
``notifications`` queue as ``(sub_id, Notification)`` pairs — and exposes
typed helpers for every query kind.  Requests may be pipelined; ids are
assigned per-connection.

    async with SpireClient.connect(host, port) as client:
        sub = await client.subscribe("PATTERN SEQ(arrival a) WHERE a.place == 3")
        where = await client.location_of(tag, epoch)
        note = await sub.next(timeout=5)
        await sub.cancel()

``subscribe()`` accepts a legacy :class:`~repro.serving.patterns.PatternSpec`,
a :class:`~repro.serving.patterns.Pattern` instance (its spec is sent),
or SASE pattern source text — one method for both generations of the
API.  The per-handle queue and the shared ``notifications`` queue are two
views of the same stream; consume a given subscription through one of
them, not both.
"""

from __future__ import annotations

import asyncio
import warnings
from collections import deque

from repro.distributed.wire import FrameDecoder, WireError, encode_frame
from repro.model.objects import TagId
from repro.query.index import Interval
from repro.serving import protocol
from repro.serving.patterns import (
    NOTIFY_SUBSCRIPTION_EVICTED,
    PATTERN_SASE,
    Notification,
    PatternSpec,
)


class ServingError(RuntimeError):
    """The server answered a request with an error reply."""


class ClientSubscription:
    """Handle for one standing query on one client connection.

    Returned by :meth:`SpireClient.subscribe`.  Notifications for the
    subscription land in a bounded per-handle queue (drop-oldest, the
    client-side mirror of the server's backpressure) consumed with
    :meth:`next`; :meth:`cancel` unsubscribes.  If the server evicts the
    subscription (tiered backpressure), the eviction notice is the last
    notification delivered and subsequent :meth:`next` calls raise
    :class:`ServingError`.
    """

    def __init__(
        self, client: "SpireClient", sub_id: int, pattern, max_queue: int
    ) -> None:
        self._client = client
        self.id = sub_id
        #: whatever was passed to subscribe(): spec, Pattern, or source text
        self.pattern = pattern
        self.max_queue = max_queue
        self.evicted = False
        self.cancelled = False
        #: notifications dropped client-side (handle not consumed fast enough)
        self.dropped = 0
        self._queue: deque[Notification] = deque()
        self._wakeup = asyncio.Event()

    def _deliver(self, note: Notification) -> None:
        if note.kind == NOTIFY_SUBSCRIPTION_EVICTED:
            self.evicted = True
        if len(self._queue) >= self.max_queue:
            self._queue.popleft()
            self.dropped += 1
        self._queue.append(note)
        self._wakeup.set()

    def __len__(self) -> int:
        """Notifications buffered and ready for :meth:`next`."""
        return len(self._queue)

    async def next(self, timeout: float | None = None) -> Notification:
        """Await this subscription's next notification.

        Raises :class:`asyncio.TimeoutError` on timeout and
        :class:`ServingError` once the subscription is cancelled or
        evicted and its queue is drained.
        """
        while not self._queue:
            if self.cancelled:
                raise ServingError(f"subscription {self.id} is cancelled")
            if self.evicted:
                raise ServingError(f"subscription {self.id} was evicted by the server")
            self._wakeup.clear()
            if timeout is None:
                await self._wakeup.wait()
            else:
                await asyncio.wait_for(self._wakeup.wait(), timeout)
        return self._queue.popleft()

    async def cancel(self) -> bool:
        """Unsubscribe; returns whether the server still knew the id."""
        if self.cancelled:
            return False
        self.cancelled = True
        self._wakeup.set()
        self._client._routes.pop(self.id, None)
        if self.evicted:
            return False  # the server already dropped it
        return await self._client.unsubscribe(self.id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "evicted" if self.evicted else "cancelled" if self.cancelled else "live"
        return f"ClientSubscription(id={self.id}, {state}, queued={len(self._queue)})"


class SpireClient:
    """One connection to a :class:`~repro.serving.server.SpireServer`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_request = 1
        #: sub_id -> ClientSubscription receiving that subscription's events
        self._routes: dict[int, ClientSubscription] = {}
        #: accepted OP_CONFIGURE flags (0 until negotiated)
        self.features = 0
        self.notifications: asyncio.Queue[tuple[int, Notification]] = asyncio.Queue()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, batch_events: bool = True
    ) -> "SpireClient":
        """Open a connection; negotiates batched event frames by default.

        A server that predates ``OP_CONFIGURE`` answers with an error
        reply, which downgrades the connection to per-event frames.
        """
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        if batch_events:
            try:
                await client.configure(protocol.FLAG_BATCH_EVENTS)
            except ServingError:
                pass
        return client

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._writer.close()
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()

    async def __aenter__(self) -> "SpireClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                chunk = await self._reader.read(65536)
                if not chunk:
                    break
                for payload in self._decoder.feed(chunk):
                    self._on_frame(payload)
        except (ConnectionError, WireError, asyncio.CancelledError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ServingError("connection closed"))

    def _on_frame(self, payload: bytes) -> None:
        kind = protocol.frame_type(payload)
        if kind == protocol.FRAME_EVENT:
            sub_id, note = protocol.decode_event(payload)
            self._dispatch_event(sub_id, note)
            return
        if kind == protocol.FRAME_EVENT_BATCH:
            _, groups = protocol.decode_event_batch(payload)
            for sub_ids, notes in groups:
                for sub_id in sub_ids:
                    for note in notes:
                        self._dispatch_event(sub_id, note)
            return
        if kind == protocol.FRAME_REPLY:
            request_id, status, body = protocol.decode_reply(payload)
            future = self._pending.pop(request_id, None)
            if future is None or future.done():
                return
            if status == protocol.STATUS_OK:
                future.set_result(body)
            else:
                future.set_exception(ServingError(body.decode("utf-8", "replace")))

    def _dispatch_event(self, sub_id: int, note: Notification) -> None:
        handle = self._routes.get(sub_id)
        if handle is not None:
            handle._deliver(note)
        self.notifications.put_nowait((sub_id, note))

    async def _request(self, encode, *args) -> bytes:
        request_id = self._next_request
        self._next_request += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(encode_frame(encode(request_id, *args)))
        await self._writer.drain()
        return await future

    async def _query(self, kind: int, **kwargs) -> bytes:
        return await self._request(
            lambda rid: protocol.encode_query(rid, kind, **kwargs)
        )

    # ------------------------------------------------------------------
    # one-shot queries
    # ------------------------------------------------------------------

    async def location_of(self, obj: TagId, t: int) -> int | None:
        return protocol.decode_scalar(
            await self._query(protocol.Q_LOCATION, obj=obj, t1=t)
        )

    async def container_of(self, obj: TagId, t: int) -> TagId | None:
        return protocol.decode_tag_value(
            await self._query(protocol.Q_CONTAINER, obj=obj, t1=t)
        )

    async def contents_of(self, container: TagId, t: int) -> list[TagId]:
        return protocol.decode_tag_list(
            await self._query(protocol.Q_CONTENTS, obj=container, t1=t)
        )

    async def objects_at(self, place: int, t: int) -> list[TagId]:
        return protocol.decode_tag_list(
            await self._query(protocol.Q_OBJECTS_AT, place=place, t1=t)
        )

    async def visitors(self, place: int, t1: int, t2: int) -> list[TagId]:
        return protocol.decode_tag_list(
            await self._query(protocol.Q_VISITORS, place=place, t1=t1, t2=t2)
        )

    async def path(self, obj: TagId) -> list[Interval]:
        return protocol.decode_path(await self._query(protocol.Q_PATH, obj=obj))

    async def top_level_container(self, obj: TagId, t: int) -> TagId | None:
        return protocol.decode_tag_value(
            await self._query(protocol.Q_TOP_LEVEL, obj=obj, t1=t)
        )

    async def dwell_time(
        self, obj: TagId, place: int, horizon: int | None = None
    ) -> int | None:
        return protocol.decode_scalar(
            await self._query(protocol.Q_DWELL, obj=obj, place=place, t1=horizon)
        )

    async def is_missing(self, obj: TagId, t: int) -> bool:
        return bool(
            protocol.decode_scalar(
                await self._query(protocol.Q_IS_MISSING, obj=obj, t1=t)
            )
        )

    # ------------------------------------------------------------------
    # subscriptions / diagnostics
    # ------------------------------------------------------------------

    async def configure(self, flags: int) -> int:
        """Negotiate per-connection features; returns the accepted flags."""
        body = await self._request(lambda rid: protocol.encode_configure(rid, flags))
        self.features = protocol.decode_configured(body)
        return self.features

    async def subscribe(self, pattern, max_queue: int = 1024) -> ClientSubscription:
        """Register a standing query; returns its subscription handle.

        ``pattern`` may be:

        * SASE pattern **source text** (``str``) — compiled server-side;
        * a legacy :class:`~repro.serving.patterns.PatternSpec` (a
          :data:`~repro.serving.patterns.PATTERN_SASE` spec routes its
          source text);
        * any :class:`~repro.serving.patterns.Pattern` instance (its
          ``spec()`` is sent — the server instantiates its own copy).

        The handle's :meth:`~ClientSubscription.next` awaits matches;
        ``(sub_id, note)`` pairs also land on the legacy
        ``notifications`` queue.  A compile failure raises
        :class:`ServingError` carrying the compiler's message.
        """
        source: str | None = None
        spec: PatternSpec | None = None
        if isinstance(pattern, str):
            source = pattern
        elif isinstance(pattern, PatternSpec):
            spec = pattern
        elif hasattr(pattern, "spec"):
            spec = pattern.spec()
        else:
            raise TypeError(
                f"subscribe() wants pattern source text, a PatternSpec, or a "
                f"Pattern; got {type(pattern).__name__}"
            )
        if spec is not None and spec.kind == PATTERN_SASE:
            if not spec.source:
                raise ValueError("PATTERN_SASE spec requires source text")
            source = spec.source
        if source is not None:
            body = await self._request(
                lambda rid: protocol.encode_subscribe_pattern(rid, source, max_queue)
            )
        else:
            body = await self._request(
                lambda rid: protocol.encode_subscribe(rid, spec, max_queue)
            )
        sub_id = protocol.decode_subscribed(body)
        handle = ClientSubscription(self, sub_id, pattern, max_queue)
        self._routes[sub_id] = handle
        return handle

    async def subscribe_pattern(self, source: str, max_queue: int = 1024) -> int:
        """Deprecated: use :meth:`subscribe` with source text.

        Kept as a thin shim for the pre-v2 API; returns the bare
        subscription id (consume via ``next_notification``).
        """
        warnings.warn(
            "SpireClient.subscribe_pattern() is deprecated; use "
            "subscribe(source) and the returned handle",
            DeprecationWarning,
            stacklevel=2,
        )
        handle = await self.subscribe(source, max_queue=max_queue)
        return handle.id

    async def unsubscribe(self, sub_id: int) -> bool:
        body = await self._request(
            lambda rid: protocol.encode_unsubscribe(rid, sub_id)
        )
        self._routes.pop(sub_id, None)
        return protocol.decode_subscribed(body) == sub_id

    async def stats(self) -> dict:
        body = await self._request(protocol.encode_stats_request)
        return protocol.decode_stats_body(body)

    async def metrics(self) -> str:
        """Fetch the server's Prometheus text exposition (``METRICS`` op)."""
        body = await self._request(protocol.encode_metrics_request)
        return protocol.decode_metrics_body(body)

    async def next_notification(
        self, timeout: float | None = None
    ) -> tuple[int, Notification]:
        """Await the next subscription match as ``(sub_id, notification)``.

        The connection-wide view: every subscription's events land here
        (as well as on their handles).  Prefer the per-handle
        :meth:`ClientSubscription.next` for new code.
        """
        if timeout is None:
            return await self.notifications.get()
        return await asyncio.wait_for(self.notifications.get(), timeout)

"""Additional property-based tests: conflicts, query index, codecs."""

from __future__ import annotations

import copy

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.compression.level1 import RangeCompressor
from repro.core.conflicts import resolve_conflicts
from repro.core.interpretation import Estimate, InterpretationResult, LocationSource
from repro.events.codec import CodecError, decode_message, encode_message
from repro.events.messages import INFINITY, EventKind
from repro.model.locations import UNKNOWN_COLOR
from repro.model.objects import PackagingLevel, TagId
from repro.query.index import EventStreamIndex

items = st.builds(TagId, level=st.just(PackagingLevel.ITEM), serial=st.integers(1, 5))
cases = st.builds(TagId, level=st.just(PackagingLevel.CASE), serial=st.integers(1, 3))
pallets = st.builds(TagId, level=st.just(PackagingLevel.PALLET), serial=st.integers(1, 2))


@st.composite
def interpretation_results(draw):
    """A random InterpretationResult with level-consistent containments."""
    result = InterpretationResult(epoch=0, complete=draw(st.booleans()))
    pool_p = draw(st.lists(pallets, max_size=2, unique=True))
    pool_c = draw(st.lists(cases, min_size=1, max_size=3, unique=True))
    pool_i = draw(st.lists(items, min_size=1, max_size=5, unique=True))

    def estimate(tag, container_pool):
        source = draw(st.sampled_from([LocationSource.OBSERVED, LocationSource.INFERRED]))
        location = draw(st.integers(-1, 3))
        if source is LocationSource.OBSERVED and location == UNKNOWN_COLOR:
            location = draw(st.integers(0, 3))
        container = draw(st.sampled_from([None] + container_pool)) if container_pool else None
        return Estimate(
            tag=tag,
            location=location,
            location_prob=1.0 if source is LocationSource.OBSERVED else 0.5,
            source=source,
            container=container,
            container_prob=0.5 if container else 0.0,
        )

    for tag in pool_p:
        result.add(estimate(tag, []))
    for tag in pool_c:
        result.add(estimate(tag, pool_p))
    for tag in pool_i:
        result.add(estimate(tag, pool_c))
    return result


def _snapshot(result: InterpretationResult):
    return {
        e.tag: (e.location, e.container, e.source) for e in result
    }


@settings(max_examples=120, deadline=None)
@given(interpretation_results())
def test_conflict_resolution_is_idempotent(result):
    """Resolving an already-resolved result changes nothing."""
    resolve_conflicts(result)
    first = _snapshot(result)
    changed = resolve_conflicts(result)
    assert changed == 0
    assert _snapshot(result) == first


@settings(max_examples=120, deadline=None)
@given(interpretation_results())
def test_conflict_resolution_never_touches_observed_locations(result):
    observed_before = {
        e.tag: e.location for e in result if e.source is LocationSource.OBSERVED
    }
    resolve_conflicts(result)
    for estimate in result:
        if estimate.tag in observed_before:
            assert estimate.location == observed_before[estimate.tag]


@settings(max_examples=120, deadline=None)
@given(interpretation_results())
def test_conflict_resolution_leaves_no_observed_parent_conflicts(result):
    """After resolution, no chosen containment pairs an *observed* parent
    with a child at a different location."""
    resolve_conflicts(result)
    for estimate in result:
        if estimate.container is None:
            continue
        parent = result.get(estimate.container)
        if parent is None:
            continue
        if parent.observed:
            assert estimate.location == parent.location or estimate.observed


# ---------------------------------------------------------------------------
# query index vs. brute-force replay
# ---------------------------------------------------------------------------


@st.composite
def object_timelines(draw):
    """Per-epoch location reports for a couple of objects."""
    epochs = draw(st.integers(2, 12))
    pool = draw(st.lists(items, min_size=1, max_size=3, unique=True))
    timeline = []
    for epoch in range(epochs):
        row = {}
        for tag in pool:
            row[tag] = draw(st.integers(-1, 2))
        timeline.append(row)
    return timeline


@settings(max_examples=100, deadline=None)
@given(object_timelines())
def test_index_agrees_with_reported_state_replay(timeline):
    """At every epoch, the index's answer equals the compressor's reported
    state at that epoch (the index is a faithful inverse of compression)."""
    compressor = RangeCompressor()
    messages = []
    reported: list[dict] = []  # per-epoch reported location per tag
    current: dict = {}
    for epoch, row in enumerate(timeline):
        for tag, location in sorted(row.items()):
            messages.extend(compressor.observe(tag, location, None, epoch))
            state = compressor.state_of(tag)
            current[tag] = state.location[0] if state.location else None
        reported.append(dict(current))

    index = EventStreamIndex(messages)
    for epoch, expected in enumerate(reported):
        for tag, place in expected.items():
            assert index.location_of(tag, epoch) == place, (
                f"epoch {epoch}, tag {tag}"
            )


# ---------------------------------------------------------------------------
# codec fuzzing
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=25, max_size=25))
def test_decoder_never_crashes_on_arbitrary_bytes(data):
    """Arbitrary 25-byte blocks either decode to a valid message or raise
    CodecError / ValueError — never anything else."""
    try:
        msg = decode_message(data)
    except (CodecError, ValueError):
        return
    # decoded successfully: it must re-encode to *some* canonical form
    assert msg.kind in EventKind
    round_tripped = decode_message(encode_message(msg))
    assert round_tripped == msg

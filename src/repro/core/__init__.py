"""SPIRE core: graph model, data capture, probabilistic inference, pipeline.

The three key techniques of the paper live here:

* :mod:`repro.core.graph` — the time-varying colored graph model (§III-A);
* :mod:`repro.core.capture` — stream-driven graph construction (§III-B,
  Fig. 4);
* :mod:`repro.core.edge_inference` / :mod:`repro.core.node_inference` /
  :mod:`repro.core.iterative` — the probabilistic interpretation algorithm
  (§IV), with partial/complete scheduling (§IV-D);
* :mod:`repro.core.conflicts` — conflict resolution between location and
  containment inference (§IV-E, Table I);
* :mod:`repro.core.pipeline` — the end-to-end substrate of Fig. 2
  (dedup → capture → inference → conflict resolution → compression).
"""

from repro.core.graph import Graph, GraphNode, GraphEdge, UNKNOWN_COLOR
from repro.core.params import InferenceParams
from repro.core.capture import GraphUpdater, ReaderInfo
from repro.core.interpretation import Estimate, InterpretationResult
from repro.core.iterative import IterativeInference
from repro.core.conflicts import resolve_conflicts
from repro.core.pipeline import Spire, EpochOutput, Deployment

__all__ = [
    "Graph",
    "GraphNode",
    "GraphEdge",
    "UNKNOWN_COLOR",
    "InferenceParams",
    "GraphUpdater",
    "ReaderInfo",
    "Estimate",
    "InterpretationResult",
    "IterativeInference",
    "resolve_conflicts",
    "Spire",
    "EpochOutput",
    "Deployment",
]

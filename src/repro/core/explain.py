"""Diagnostics: explain how SPIRE arrived at an object's estimate.

Monitoring operators distrust black-box inferences; :func:`explain_object`
exposes the evidence behind one object's current estimate — its observation
memory, every candidate container with the Eq. 1/2 numbers, the last
special-reader confirmation, and the Eq. 3/4 location distribution — as a
plain data object that renders to a readable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.edge_inference import effective_beta, history_weight, infer_edges
from repro.core.graph import UNKNOWN_COLOR, GraphNode
from repro.core.node_inference import infer_node
from repro.core.pipeline import Spire
from repro.model.locations import LocationRegistry
from repro.model.objects import TagId


@dataclass(frozen=True)
class CandidateContainer:
    """One possible container of the object, with its evidence."""

    container: TagId
    probability: float
    confidence: float
    history_weight: float
    history_bits: tuple[bool, ...]
    is_confirmed: bool


@dataclass(frozen=True)
class Explanation:
    """Everything behind one object's current estimate.

    Attributes:
        tag: The object.
        observed_now: Whether a reader saw the object this epoch.
        recent_color / seen_at: The node's observation memory (§III-A).
        effective_beta: The beta edge inference used at this node (differs
            from the configured beta when the adaptive heuristic is on).
        candidates: Every candidate container with Eq. 1/2 evidence,
            most probable first.
        confirmed_parent / confirmed_at / confirmed_conflicts: The last
            special-reader confirmation and its conflict count.
        location_distribution: Eq. 3/4 color distribution
            (``UNKNOWN_COLOR`` key included) from the node's point of view,
            using currently-observed neighbours only.
        reported_location / reported_container: What the estimate store
            currently answers for the §II queries.
    """

    tag: TagId
    observed_now: bool
    recent_color: int | None
    seen_at: int
    effective_beta: float
    candidates: tuple[CandidateContainer, ...]
    confirmed_parent: TagId | None
    confirmed_at: int
    confirmed_conflicts: int
    location_distribution: dict[int, float]
    reported_location: int
    reported_container: TagId | None

    def render(self, registry: LocationRegistry | None = None) -> str:
        """Human-readable multi-line report."""

        def loc(color: int | None) -> str:
            if color is None:
                return "-"
            if color == UNKNOWN_COLOR:
                return "unknown"
            if registry is not None:
                return registry.by_color(color).name
            return f"L{color}"

        lines = [f"object {self.tag}"]
        status = "observed this epoch" if self.observed_now else "unobserved"
        lines.append(f"  status: {status}; last seen at {loc(self.recent_color)} (t={self.seen_at})")
        lines.append(f"  reported: location={loc(self.reported_location)} "
                     f"container={self.reported_container or '-'}")
        if self.confirmed_parent is not None:
            lines.append(
                f"  confirmed container: {self.confirmed_parent} at t={self.confirmed_at} "
                f"({self.confirmed_conflicts} conflicting observations since)"
            )
        if self.candidates:
            lines.append(f"  candidate containers (beta={self.effective_beta:.2f}):")
            for cand in self.candidates:
                marker = " [confirmed]" if cand.is_confirmed else ""
                bits = "".join("1" if b else "0" for b in cand.history_bits[:16])
                lines.append(
                    f"    {str(cand.container):12s} p={cand.probability:.3f} "
                    f"conf={cand.confidence:.3f} w={cand.history_weight:.3f} "
                    f"history={bits}{marker}"
                )
        else:
            lines.append("  no candidate containers")
        if self.location_distribution:
            lines.append("  location belief:")
            for color, prob in sorted(
                self.location_distribution.items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"    {loc(color):16s} {prob:.3f}")
        return "\n".join(lines)


def explain_object(spire: Spire, tag: TagId, now: int | None = None) -> Explanation | None:
    """Build an :class:`Explanation` for ``tag`` from ``spire``'s state.

    Returns ``None`` when SPIRE has never seen the object.  ``now``
    defaults to one epoch past the node's last update, matching the view
    the most recent inference pass had.
    """
    node = spire.graph.get(tag)
    if node is None:
        return None
    params = spire.params

    best = infer_edges(node, params)
    candidates = tuple(
        sorted(
            (
                CandidateContainer(
                    container=edge.parent.tag,
                    probability=edge.prob,
                    confidence=edge.confidence,
                    history_weight=history_weight(edge, params),
                    history_bits=tuple(edge.history_bits(params.history_size)),
                    is_confirmed=edge.parent.tag == node.confirmed_parent,
                )
                for edge in node.parents.values()
            ),
            key=lambda c: -c.probability,
        )
    )

    if now is None:
        now = node.seen_at + 1
    effective_colors: dict[GraphNode, int] = {
        neighbour: neighbour.color
        for edge in node.edges()
        for neighbour in (edge.other(node),)
        if neighbour.color is not None
    }
    if node.is_colored:
        distribution = {node.color: 1.0}
    else:
        belief = infer_node(node, effective_colors, now, params, spire.inference.color_periods)
        distribution = belief.distribution

    current = spire.estimates.get(tag)
    return Explanation(
        tag=tag,
        observed_now=node.is_colored,
        recent_color=node.recent_color,
        seen_at=node.seen_at,
        effective_beta=effective_beta(node, params),
        candidates=candidates,
        confirmed_parent=node.confirmed_parent,
        confirmed_at=node.confirmed_at,
        confirmed_conflicts=node.confirmed_conflicts,
        location_distribution=distribution,
        reported_location=current.location if current else UNKNOWN_COLOR,
        reported_container=current.container if current else None,
    )

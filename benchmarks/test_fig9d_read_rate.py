"""Fig. 9(d) — inference error vs. read rate (Expt 3).

Reproduces: location and containment error rates as the read rate of every
reader sweeps 0.5 -> 1.0 (shelf readers at 1/min).  Expected shape: both
errors below ~10 % for read rates >= 0.8; as the read rate drops, location
inference stays comparatively accurate (it exploits the last reported
location) while containment inference degrades faster (it loses belt
confirmations and consistent co-location history).
"""

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy

from benchmarks._shared import Table, accuracy_config, get_spire

READ_RATES = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def run_experiment() -> dict:
    results = {}
    for rate in READ_RATES:
        report = get_spire(
            accuracy_config(read_rate=rate, shelf_read_period=60),
            params=InferenceParams(),
            policies=(ScoringPolicy.ALL,),
        )
        acc = report.accuracy[ScoringPolicy.ALL]
        results[rate] = (acc.location_error_rate, acc.containment_error_rate)
    return results


@pytest.mark.benchmark(group="fig9d")
def test_fig9d_error_vs_read_rate(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Fig. 9(d): inference error rate vs. read rate",
        ["read rate", "location error", "containment error"],
    )
    for rate in READ_RATES:
        table.add(rate, *results[rate])
    table.show()

    # Paper headline: both error rates stay below ~10 % for rates >= 0.8.
    for rate in (0.8, 0.9, 1.0):
        location, containment = results[rate]
        assert location < 0.12, f"location error {location:.3f} at rate {rate}"
        assert containment < 0.12, f"containment error {containment:.3f} at rate {rate}"

    # Degradation toward low read rates, with containment degrading more
    # steeply than location (relative to their high-rate baselines).
    assert results[0.5][1] > results[1.0][1]
    containment_degradation = results[0.5][1] - results[0.9][1]
    location_degradation = results[0.5][0] - results[0.9][0]
    assert containment_degradation > 0
    assert containment_degradation >= location_degradation - 0.02

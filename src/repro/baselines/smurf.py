"""SMURF: per-tag adaptive-window smoothing (VLDB 2006), as a baseline.

SMURF views RFID readings as a random sample of the tags in a reader's
range.  For each tag it keeps a sliding window over the reader's recent
interrogation cycles and declares the tag *present* while the window holds
at least one reading.  The window size adapts per tag:

* **completeness** — with estimated per-interrogation read rate ``p_avg``,
  a window of ``N`` interrogations misses a present tag with probability
  ``(1 - p_avg)^N``; SMURF grows the window until that is below ``delta``
  (the π-estimator bound ``N* = ceil(ln(1/delta) / p_avg)``);
* **transition detection** — if the number of readings observed is
  statistically too low for a present tag (binomial mean minus two standard
  deviations), the tag has likely left mid-window and the window halves so
  the departure surfaces quickly.

The extension used for the Fig. 11 comparison (§VI-D): each smoothed-in
reading carries its static reader's location, the tag's estimated location
is the location of the reader it was last smoothed at (unknown when the
window empties), and a level-1 range compressor produces the output event
stream.  Exit readings retire the tag, mirroring SPIRE's exit handling.
SMURF produces no containment information.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.compression.level1 import RangeCompressor
from repro.core.capture import ReaderInfo
from repro.model.locations import UNKNOWN_COLOR
from repro.core.pipeline import Deployment
from repro.events.messages import EventMessage
from repro.model.objects import TagId
from repro.readers.dedup import Deduplicator
from repro.readers.stream import EpochReadings, ReadingStream


@dataclass(frozen=True)
class SmurfParams:
    """SMURF tuning knobs.

    Attributes:
        delta: Completeness requirement — acceptable probability of missing
            a present tag within its window (VLDB'06 uses small constants;
            0.05 here).
        min_window: Smallest window, in interrogation cycles.
        max_window: Largest window, in interrogation cycles.
        initial_p: Read-rate prior used before any evidence accumulates.
    """

    delta: float = 0.05
    min_window: int = 1
    max_window: int = 25
    initial_p: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if not 1 <= self.min_window <= self.max_window:
            raise ValueError("window bounds must satisfy 1 <= min <= max")
        if not 0.0 < self.initial_p <= 1.0:
            raise ValueError(f"initial_p must be in (0, 1], got {self.initial_p}")


@dataclass
class SmurfTagState:
    """Per-tag smoothing state.

    ``window`` counts interrogation *cycles* of the tag's current reader;
    the window in epochs is ``window * period``.  ``readings`` holds the
    epochs of readings from the current reader still inside the window.
    """

    reader_id: int
    color: int
    period: int
    window: int
    readings: deque[int] = field(default_factory=deque)
    last_reading: int = -1

    def window_epochs(self) -> int:
        return self.window * self.period

    def interrogations_in_window(self, now: int) -> int:
        """Interrogation cycles of the current reader inside the window."""
        span = min(self.window_epochs(), now - self.readings[0] + 1) if self.readings else self.window_epochs()
        return max(1, span // self.period)


class SmurfPipeline:
    """SMURF cleaning + location events + level-1 compression.

    Drop-in comparable to :class:`repro.core.pipeline.Spire` for location
    output: :meth:`process_epoch` consumes one epoch of raw readings and
    returns the event messages emitted.
    """

    def __init__(self, deployment: Deployment, params: SmurfParams | None = None) -> None:
        self.deployment = deployment
        self.params = params or SmurfParams()
        self.dedup = Deduplicator()
        self.compressor = RangeCompressor(emit_location=True, emit_containment=False)
        self.tags: dict[TagId, SmurfTagState] = {}
        self.estimates: dict[TagId, int] = {}

    # ------------------------------------------------------------------

    def process_epoch(self, readings: EpochReadings) -> list[EventMessage]:
        """Smooth one epoch of readings and emit compressed location events."""
        now = readings.epoch
        clean = self.dedup.process(readings)
        exited: list[TagId] = []

        for reader_id, tags in clean.by_reader.items():
            info = self.deployment.readers.get(reader_id)
            if info is None:
                raise KeyError(f"reading from unknown reader id {reader_id}")
            for tag in tags:
                if info.is_exit:
                    exited.append(tag)
                self._smooth_in(tag, info, now)

        messages: list[EventMessage] = []
        for tag in sorted(self.tags):
            state = self.tags[tag]
            present = self._decide_presence(state, now)
            color = state.color if present else UNKNOWN_COLOR
            self.estimates[tag] = color
            messages.extend(self.compressor.observe(tag, color, None, now))

        for tag in sorted(set(exited)):
            messages.extend(self.compressor.depart(tag, now))
            self.tags.pop(tag, None)
            self.estimates.pop(tag, None)
            self.dedup.forget(tag)
        return messages

    def run(self, stream: ReadingStream | Iterable[EpochReadings]) -> list[EventMessage]:
        """Process a whole stream; returns the concatenated output."""
        out: list[EventMessage] = []
        for readings in stream:
            out.extend(self.process_epoch(readings))
        return out

    def location_of(self, tag: TagId) -> int:
        """Current location estimate (UNKNOWN_COLOR when absent/unknown)."""
        return self.estimates.get(tag, UNKNOWN_COLOR)

    # ------------------------------------------------------------------

    def _smooth_in(self, tag: TagId, info: ReaderInfo, now: int) -> None:
        state = self.tags.get(tag)
        if state is None or state.reader_id != info.reader_id:
            # first sighting, or a location transition: restart the window
            # at this reader (VLDB'06 resets state on mobility transitions)
            state = SmurfTagState(
                reader_id=info.reader_id,
                color=info.color,
                period=info.period,
                window=self.params.min_window,
            )
            self.tags[tag] = state
        state.readings.append(now)
        state.last_reading = now

    def _decide_presence(self, state: SmurfTagState, now: int) -> bool:
        """One SMURF decision step: adapt the window, decide presence.

        Follows the VLDB'06 per-tag algorithm: the read rate ``p_avg`` is
        estimated over the full window; the completeness (π-estimator)
        bound grows the window; the transition test compares the readings
        in the *recent half* of the window against the binomial expectation
        and halves the window on a significant deficit, so a departed tag
        is dropped quickly instead of lingering for a full large window.
        """
        params = self.params
        # expire readings that fell out of the window
        window_epochs = state.window_epochs()
        horizon = now - window_epochs + 1
        while state.readings and state.readings[0] < horizon:
            state.readings.popleft()

        observed = len(state.readings)
        cycles = max(1, window_epochs // state.period)
        p_avg = observed / cycles if observed else params.initial_p

        # completeness: grow the window until a present tag would be seen
        # with probability >= 1 - delta (N* = ceil(ln(1/delta) / p_avg))
        required = math.ceil(math.log(1.0 / params.delta) / max(p_avg, 1e-6))
        if cycles < required and state.window < params.max_window:
            state.window = min(params.max_window, state.window * 2)

        # transition detection over the recent half-window
        half_epochs = max(state.period, window_epochs // 2)
        half_cycles = max(1, half_epochs // state.period)
        observed_recent = sum(1 for epoch in state.readings if epoch > now - half_epochs)
        expected_recent = half_cycles * p_avg
        deficit = expected_recent - observed_recent
        sigma = math.sqrt(max(half_cycles * p_avg * (1.0 - p_avg), 1e-9))
        if observed > 0 and deficit > 2.0 * sigma:
            state.window = max(params.min_window, state.window // 2)

        return observed > 0

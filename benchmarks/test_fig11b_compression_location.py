"""Fig. 11(b) — compression ratio, location events only (Expt 8).

Reproduces: output size over raw input size considering only location
events, for SMURF, SPIRE level-1 and SPIRE level-2, as the read rate
sweeps 0.5 -> 1.0.  Expected shape: level-2 beats level-1 above a
crossover read rate (paper: ~0.65) because stable containment suppresses
contained objects' location updates; below the crossover containment
estimates fluctuate and level-2 loses its edge.  SMURF tracks level-1 at
high read rates and degrades at low rates (premature away/return event
churn).
"""

import pytest

from repro.metrics.sizing import compression_ratio, location_only

from benchmarks._shared import Table, get_smurf, get_spire, output_config

READ_RATES = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def run_experiment() -> dict:
    results = {}
    for rate in READ_RATES:
        config = output_config(rate)
        spire1 = get_spire(config, compression_level=1, score=False)
        spire2 = get_spire(config, compression_level=2, score=False)
        smurf = get_smurf(config, score=False)
        raw = spire1.raw_bytes
        results[rate] = (
            compression_ratio(location_only(smurf.messages), raw),
            compression_ratio(location_only(spire1.messages), raw),
            compression_ratio(location_only(spire2.messages), raw),
        )
    return results


@pytest.mark.benchmark(group="fig11b")
def test_fig11b_location_compression_ratio(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Fig. 11(b): compression ratio (location events only) vs. read rate",
        ["read rate", "SMURF", "SPIRE level-1", "SPIRE level-2"],
    )
    for rate in READ_RATES:
        table.add(rate, *results[rate])
    table.show()

    # level-2 suppression wins at high read rates ...
    for rate in (0.8, 0.9, 1.0):
        smurf_r, l1, l2 = results[rate]
        assert l2 < l1, f"level-2 {l2:.4f} not below level-1 {l1:.4f} at {rate}"
    # ... and loses at the bottom of the range: the paper's crossover
    assert results[0.5][2] > results[0.5][1], "no level-1/level-2 crossover"
    # SMURF's output is comparable to SPIRE level-1 at high read rates
    for rate in (0.9, 1.0):
        assert abs(results[rate][0] - results[rate][1]) < 0.1 * results[rate][1] + 0.01
    # everything is a substantial reduction of the raw stream
    for rate in READ_RATES:
        assert max(results[rate]) < 0.8

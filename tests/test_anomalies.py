"""Unit tests for the anomaly injector."""

import numpy as np
import pytest

from repro.model.locations import Location, UNKNOWN_LOCATION
from repro.model.truth import GroundTruthRecorder
from repro.model.world import PhysicalWorld
from repro.simulator.anomalies import AnomalyInjector

from tests.conftest import case, item

DOCK = Location(0, "dock")
EXIT = Location(1, "exit")


@pytest.fixture
def world():
    w = PhysicalWorld()
    w.add_object(case(1), DOCK)
    w.add_object(item(1), DOCK)
    w.add_object(item(2), DOCK)
    w.contain(item(1), case(1))
    return w


class TestInjection:
    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            AnomalyInjector(0, np.random.default_rng(0))

    def test_fires_only_on_period_boundary(self, world):
        injector = AnomalyInjector(10, np.random.default_rng(0))
        truth = GroundTruthRecorder()
        assert injector.maybe_remove(world, truth, epoch=3) is None
        assert injector.maybe_remove(world, truth, epoch=10) is not None

    def test_epoch_zero_never_fires(self, world):
        injector = AnomalyInjector(10, np.random.default_rng(0))
        truth = GroundTruthRecorder()
        assert injector.maybe_remove(world, truth, epoch=0) is None

    def test_victim_moves_to_unknown_with_contents(self, world):
        injector = AnomalyInjector(5, np.random.default_rng(1))
        truth = GroundTruthRecorder()
        event = injector.maybe_remove(world, truth, epoch=5)
        assert event is not None
        for tag in event.affected:
            assert world.location_of(tag) is UNKNOWN_LOCATION
            assert truth.vanished[tag] == 5

    def test_vanished_objects_not_revictimised(self, world):
        injector = AnomalyInjector(5, np.random.default_rng(2))
        truth = GroundTruthRecorder()
        victims = set()
        for epoch in (5, 10, 15):
            event = injector.maybe_remove(world, truth, epoch)
            if event is not None:
                assert event.tag not in victims
                victims.add(event.tag)

    def test_protected_locations_exempt(self, world):
        # everyone at the dock, dock protected: nothing can vanish
        injector = AnomalyInjector(5, np.random.default_rng(3))
        truth = GroundTruthRecorder()
        event = injector.maybe_remove(
            world, truth, epoch=5, protected=frozenset({DOCK.color})
        )
        assert event is None

    def test_empty_world(self):
        injector = AnomalyInjector(5, np.random.default_rng(4))
        truth = GroundTruthRecorder()
        assert injector.maybe_remove(PhysicalWorld(), truth, epoch=5) is None

    def test_events_recorded_in_order(self, world):
        injector = AnomalyInjector(5, np.random.default_rng(5))
        truth = GroundTruthRecorder()
        for epoch in (5, 10):
            injector.maybe_remove(world, truth, epoch)
        epochs = [event.epoch for event in injector.events]
        assert epochs == sorted(epochs)

"""Remote zone workers over TCP: daemon, transport, and coordinator.

This is the pipe-based :mod:`repro.distributed.parallel` protocol lifted
onto sockets, so zones can run on other hosts (the distributed deployment
the paper's follow-up work describes).  Three pieces:

* :class:`WorkerDaemon` — the worker side.  Listens on a TCP port,
  answers the coordinator's ``MSG_INSTALL`` / ``MSG_EPOCH`` /
  ``MSG_RELEASE`` / ``MSG_ADOPT`` / ``MSG_QUERY`` requests against its
  resident zone substrates via the same transport-agnostic
  :func:`~repro.distributed.parallel.handle_request` core the pipe
  workers use — length-prefixed frames, compact struct payloads, no
  pickle on the hot path.  Requests arrive in sequence-numbered
  envelopes; the daemon remembers its recent replies, so a request it
  has already served (a coordinator retry after a lost reply) is
  answered from the cache instead of being applied twice —
  **exactly-once effect** on top of an at-least-once transport.
  ``spire-worker`` (the ``worker`` CLI subcommand) runs one standalone.

* :func:`spawn_worker_process` — launch a ``spire-worker`` daemon as a
  subprocess and parse the port it bound (for tests, benchmarks and CI).

* :class:`RemoteCoordinator` — a :class:`ParallelCoordinator` whose
  worker handles are supervised TCP connections
  (:class:`~repro.distributed.supervisor.RemoteWorker`).  The epoch
  protocol and its byte-identical merge order are unchanged; what this
  class adds is survival: lease/heartbeat checks at every epoch
  boundary, bounded retries under backoff for every request, and —
  when a worker is declared dead — failover of its zones onto the
  survivors using the established checkpoint + replay machinery
  (:meth:`fail_zone` / :meth:`recover_zone`), with the rebuilt
  substrate shipped to its new home via the fast flat-array codec.
  The run degrades to fewer workers instead of aborting; only losing
  *every* worker raises :class:`~repro.distributed.supervisor.RemoteError`.

Determinism contract: with live workers (including any amount of
transport-level delay/drop/duplication absorbed by retries) the merged
event stream is byte-identical to the serial coordinator's.  A worker
death *between* epochs rehomes its zones exactly like a scripted
``fail_zone`` + ``recover_zone`` pair, so it too reproduces the serial
stream.  A death *mid-epoch* (retries exhausted while requests were in
flight) keeps the stream well-formed — intervals are closed before the
rebuilt zones re-open them — but the torn epoch's zone output is
replaced by the rebuild, which is the same degradation the serial
failover path exhibits.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
import traceback
from collections import OrderedDict
from typing import Iterable, Sequence

from repro.distributed import wire
from repro.distributed.coordinator import EpochResult, Zone, _ZoneCheckpoint
from repro.distributed.parallel import ParallelCoordinator, handle_request
from repro.distributed.supervisor import (
    RemoteError,
    RetryPolicy,
    WorkerDied,
    WorkerSupervisor,
)
from repro.events.messages import EventMessage, end_containment, end_location
from repro.faults.warnings import WarningKind
from repro.obs.metrics import MetricRegistry
from repro.readers.codec import encode_epoch_frame
from repro.readers.stream import EpochReadings


def parse_address(spec) -> tuple[str, int]:
    """``"host:port"`` / ``":port"`` / ``(host, port)`` -> ``(host, port)``."""
    if isinstance(spec, (tuple, list)):
        host, port = spec
        return str(host), int(port)
    host, sep, port = str(spec).rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"worker address {spec!r} has no port")
    return host or "127.0.0.1", int(port)


# ---------------------------------------------------------------------------
# the worker daemon
# ---------------------------------------------------------------------------


class WorkerDaemon:
    """One TCP zone worker: resident substrates behind a reply cache.

    Serves one coordinator connection at a time (reconnects are welcome —
    zone state survives them; that is the point).  Thread-safe against
    :meth:`stop` and :meth:`crash` closing its sockets from outside.

    Args:
        host/port: Bind address; port 0 picks a free port.
        name: Identity reported in the HELLO handshake.
        reply_cache: Replies remembered for retry deduplication.  Must
            comfortably exceed the coordinator's maximum in-flight
            request count (one epoch batch plus migration traffic); the
            default is far above it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str | None = None,
        reply_cache: int = 256,
    ) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.host, self.port = self._listener.getsockname()[:2]
        self.name = name or f"spire-worker-{os.getpid()}-{self.port}"
        self._cache_size = reply_cache
        self._spires: dict[int, object] = {}
        self._registries: dict[int, MetricRegistry] = {}
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self._last_seq = 0
        self._stopping = threading.Event()
        self._conn: socket.socket | None = None
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Serve in a background thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self.serve_forever, name=self.name, daemon=True
        )
        self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Accept-and-serve loop; returns after :meth:`stop`, a remote
        ``MSG_STOP``, or :meth:`crash`."""
        while not self._stopping.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by stop()/crash()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conn = conn
            try:
                self._serve_connection(conn)
            finally:
                self._conn = None
                try:
                    conn.close()
                except OSError:
                    pass
        try:
            self._listener.close()
        except OSError:
            pass

    def _serve_connection(self, conn: socket.socket) -> None:
        decoder = wire.FrameDecoder()
        while not self._stopping.is_set():
            try:
                chunk = conn.recv(65536)
            except OSError:
                return  # connection torn down (peer reset, or crash()/stop())
            if not chunk:
                return  # coordinator hung up; await the reconnect
            try:
                for frame in decoder.feed(chunk):
                    if not self._handle_frame(conn, frame):
                        return
            except (OSError, wire.WireError):
                return

    def _handle_frame(self, conn: socket.socket, data: bytes) -> bool:
        """Serve one envelope; False ends the serving loop (STOP/fatal)."""
        msg_type, seq, body = wire.decode_envelope(data)
        if msg_type == wire.MSG_HELLO:
            conn.sendall(
                wire.encode_frame(
                    wire.encode_hello_ack(self.name, os.getpid(), len(self._spires))
                )
            )
            return True
        if msg_type == wire.MSG_PING:
            conn.sendall(wire.encode_frame(wire.encode_pong(seq)))
            return True
        if msg_type != wire.MSG_REQUEST:
            raise wire.WireError(f"daemon got unexpected envelope type {msg_type}")
        if seq <= self._last_seq:
            # a retry of something already served: answer from the cache
            # (exactly-once effect); a stale retry beyond the cache means
            # the coordinator gave this request up long ago — drop it
            cached = self._cache.get(seq)
            if cached is not None:
                conn.sendall(wire.encode_frame(wire.encode_reply(seq, cached)))
            return True
        self._last_seq = seq
        try:
            reply = handle_request(body, self._spires, self._registries)
        except BaseException:
            # mirror the pipe worker's fatal contract: report the
            # traceback and consider this worker's state lost — the
            # coordinator fails our zones over to a survivor
            error = wire.encode_error(traceback.format_exc())
            self._spires.clear()
            self._registries.clear()
            self._remember(seq, error)
            try:
                conn.sendall(wire.encode_frame(wire.encode_reply(seq, error)))
            except OSError:
                pass
            return False
        if reply is None:  # MSG_STOP
            self._remember(seq, wire.encode_ok())
            try:
                conn.sendall(wire.encode_frame(wire.encode_reply(seq, wire.encode_ok())))
            except OSError:
                pass
            self._stopping.set()
            try:
                self._listener.close()
            except OSError:
                pass
            return False
        self._remember(seq, reply)
        conn.sendall(wire.encode_frame(wire.encode_reply(seq, reply)))
        return True

    def _remember(self, seq: int, reply: bytes) -> None:
        self._cache[seq] = reply
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Graceful local shutdown (idempotent)."""
        self._stopping.set()
        for sock in (self._conn, self._listener):
            if sock is not None:
                # shutdown() before close(): the serving thread is blocked
                # in recv()/accept() and holds a reference, so a bare
                # close() would neither wake it nor send the FIN the
                # coordinator's EOF probe is watching for
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)

    def crash(self) -> None:
        """Simulate ``kill -9``: drop the sockets and lose all zone state.

        The coordinator's next probe or request finds the connection
        closed and the port refusing, declares the worker dead, and
        rehomes its zones — the scenario the failover tests script.
        """
        self._spires.clear()
        self._registries.clear()
        self._cache.clear()
        self.stop()

    def __enter__(self) -> "WorkerDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def spawn_worker_process(
    host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0
) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Launch a ``spire-worker`` daemon subprocess; returns (proc, address).

    Reads the daemon's ``spire-worker listening on host:port`` banner to
    learn the bound port (``port=0`` lets the OS pick).  The caller owns
    the process; a coordinator ``close(stop_workers=True)`` or
    ``proc.terminate()`` ends it.
    """
    # the directory CONTAINING the repro package, so `-m repro.cli` resolves
    package_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "worker", "--host", host, "--port", str(port)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + timeout
    banner = ""
    while time.monotonic() < deadline:
        banner = proc.stdout.readline()
        if "listening on" in banner:
            break
        if proc.poll() is not None:
            raise RuntimeError(f"spire-worker exited at startup: {banner!r}")
    else:
        proc.kill()
        raise RuntimeError("spire-worker did not report its address in time")
    address = parse_address(banner.rsplit(None, 1)[-1])
    return proc, address


# ---------------------------------------------------------------------------
# the remote coordinator
# ---------------------------------------------------------------------------


class RemoteCoordinator(ParallelCoordinator):
    """Zone coordination over supervised TCP workers.

    Args:
        zones: The site partition, as for every coordinator.
        addresses: Worker daemon addresses (``"host:port"`` strings or
            ``(host, port)`` pairs).  Mutually exclusive with ``workers``.
        workers: Spawn this many in-process :class:`WorkerDaemon` threads
            on localhost TCP instead — same code path, no deployment
            (handy default; also what ``SpireSession`` uses).
        policy: :class:`RetryPolicy` deadlines/retries/lease parameters.
        supervise_seed: Seed for the retry-jitter RNG.
        checkpoint_interval: **Required** (must not be ``None``): the
            checkpoints are what worker failover rebuilds zones from.
        stop_workers_on_close: Send ``MSG_STOP`` to the daemons on
            :meth:`close`.  Default: only for self-spawned daemons —
            externally managed workers outlive their coordinators.

    Remaining arguments match :class:`ParallelCoordinator`.
    """

    def __init__(
        self,
        zones: Iterable[Zone],
        addresses: Sequence | None = None,
        workers: int | None = None,
        policy: RetryPolicy | None = None,
        supervise_seed: int = 0,
        strict: bool = False,
        checkpoint_interval: int | None = 50,
        checkpoint_codec: str = "fast",
        metrics: MetricRegistry | None = None,
        stop_workers_on_close: bool | None = None,
    ) -> None:
        if checkpoint_interval is None:
            raise ValueError(
                "RemoteCoordinator requires checkpoint_interval: worker "
                "failover rebuilds zones from their checkpoints"
            )
        if (addresses is None) == (workers is None):
            raise ValueError("pass exactly one of addresses= or workers=")
        self.supervisor: WorkerSupervisor | None = None
        self._policy = policy or RetryPolicy()
        self._supervise_seed = supervise_seed
        self._daemons: list[WorkerDaemon] = []
        if addresses is None:
            if workers < 1:
                raise ValueError(f"workers must be >= 1, got {workers}")
            self._daemons = [WorkerDaemon() for _ in range(workers)]
            for daemon in self._daemons:
                daemon.start()
            resolved = [daemon.address for daemon in self._daemons]
        else:
            resolved = [parse_address(spec) for spec in addresses]
            if not resolved:
                raise ValueError("addresses must be non-empty")
        self._addresses = resolved
        self._stop_on_close = (
            (addresses is None) if stop_workers_on_close is None else stop_workers_on_close
        )
        #: zones rebuilt on a survivor while this epoch was in flight —
        #: their replayed rebuild already consumed the epoch's readings,
        #: so the fan-out/fan-in must skip them for the rest of the epoch
        self._rehomed_mid_epoch: set[str] = set()
        #: rehoming messages produced outside process_epoch (a death
        #: detected during a query), prepended to the next epoch's output
        self._deferred_messages: list[EventMessage] = []
        try:
            super().__init__(
                zones,
                strict=strict,
                checkpoint_interval=checkpoint_interval,
                checkpoint_codec=checkpoint_codec,
                workers=len(resolved),
                metrics=metrics,
            )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # transport plumbing (overrides)
    # ------------------------------------------------------------------

    def _spawn_workers(self) -> list:
        self.supervisor = WorkerSupervisor(
            self._addresses[: self.num_workers],
            self._policy,
            seed=self._supervise_seed,
            metrics=self.metrics,
        )
        return self.supervisor.workers

    def close(self, stop_workers: bool | None = None) -> None:
        if getattr(self, "_closed", False):
            return
        self._closed = True
        if self.supervisor is not None:
            self.supervisor.close(
                stop_workers=self._stop_on_close if stop_workers is None else stop_workers
            )
        for daemon in self._daemons:
            daemon.stop()

    def _ensure_worker(self, zone_id: str) -> None:
        """Point a recovering zone at a live worker (no process respawn —
        remote workers are rehomed, not resurrected)."""
        if not self._worker_of_zone[zone_id].alive:
            self._worker_of_zone[zone_id] = self._pick_home()

    def _pick_home(self):
        """Least-loaded live worker (ties to the lowest index): the new
        home for a zone whose worker died."""
        survivors = self.supervisor.alive_workers()
        if not survivors:
            raise RemoteError("every remote worker is dead; cannot rehome zones")
        load = {worker.index: 0 for worker in survivors}
        for owner in self._worker_of_zone.values():
            if owner.index in load and owner.alive:
                load[owner.index] += 1
        return min(survivors, key=lambda worker: (load[worker.index], worker.index))

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------

    def _handle_dead_worker(self, worker, spliced: list[EventMessage], at: int) -> None:
        """Fail the dead worker's zones over to survivors.

        Runs the established failover pair per zone — ``fail_zone``
        (close open intervals) then ``recover_zone`` (rebuild from
        checkpoint + replay, install on the new home) — appending the
        closing and re-opening messages to ``spliced`` in zone-sorted
        order.  Exactly what a scripted serial ``fail_zone`` /
        ``recover_zone`` at the same epoch would emit, which is what
        keeps a between-epoch death byte-identical to the serial run.
        """
        hosted = sorted(z for z, w in self._worker_of_zone.items() if w is worker)
        if not hosted:
            return  # already handled (idempotence under repeated signals)
        self.quarantine.warn(
            WarningKind.WORKER_LOST,
            at,
            detail=(
                f"remote worker {worker.name} declared dead "
                f"({worker.death_reason}); rehoming zone(s) {', '.join(hosted)}"
            ),
        )
        to_recover = []
        for zone_id in hosted:
            if zone_id in self._failed:
                # was already failed by the user; just needs a new home
                # whenever recover_zone is eventually called
                self._worker_of_zone[zone_id] = self._pick_home()
                continue
            to_recover.append(zone_id)
        for zone_id in to_recover:
            spliced.extend(self.fail_zone(zone_id, at))
        for zone_id in to_recover:
            new_home = self._pick_home()
            self._worker_of_zone[zone_id] = new_home
            checkpoint_epoch = self._checkpoints[zone_id].epoch
            spliced.extend(self.recover_zone(zone_id, at))
            self.quarantine.warn(
                WarningKind.ZONE_REHOMED,
                at,
                detail=(
                    f"zone {zone_id!r} rebuilt on worker {new_home.name} from "
                    f"checkpoint at epoch {checkpoint_epoch}"
                ),
            )
        self.supervisor._sync_gauges()

    def _on_mid_epoch_death(
        self, worker, now: int, out_messages: list[EventMessage]
    ) -> None:
        """A worker died with this epoch's requests in flight.

        The interval tracker is synced with everything emitted so far
        (so the failover closes exactly the intervals that are really
        open), then the worker's zones are failed over.  Their rebuild
        replays the current epoch's readings too — the epoch loop skips
        those zones from here on (``_rehomed_mid_epoch``).
        """
        hosted = [z for z, w in self._worker_of_zone.items() if w is worker]
        if not hosted:
            return
        self._track_messages(out_messages)
        self._handle_dead_worker(worker, out_messages, now)
        self._rehomed_mid_epoch.update(hosted)

    def _close_tag(self, tag, now: int) -> list[EventMessage]:
        """Interval closures for one tag whose release reply was lost
        with its worker — the per-tag slice of what ``fail_zone`` does."""
        state = self._open.get(tag)
        if state is None:
            return []
        messages = []
        for container in sorted(state.containments):
            messages.append(
                end_containment(tag, container, state.containments[container], now)
            )
        if state.location is not None:
            place, vs = state.location
            messages.append(end_location(tag, place, vs, now))
        return messages

    def _declare_error_death(self, worker, detail: str):
        """A daemon reported MSG_ERROR: its zone state is gone by
        contract, so treat the handle as dead (without retries)."""
        return worker._declare_dead(f"worker reported an error:\n{detail}")

    # ------------------------------------------------------------------
    # the supervised epoch loop
    # ------------------------------------------------------------------

    def process_epoch(self, readings: EpochReadings) -> EpochResult:
        now = readings.epoch
        warnings_before = len(self.quarantine.warnings)
        self._rehomed_mid_epoch = set()

        # between-epoch supervision: EOF probes + lease heartbeats; a
        # death found here rehomes zones *before* this epoch's readings
        # are split, reproducing a scripted serial fail/recover exactly
        pre_messages: list[EventMessage] = []
        if self._deferred_messages:
            pre_messages.extend(self._deferred_messages)
            self._deferred_messages = []
        boundary = self._last_epoch if self._last_epoch is not None else now
        for worker in self.supervisor.check_leases():
            self._handle_dead_worker(worker, pre_messages, boundary)

        self._last_epoch = now
        per_zone = self._split_by_zone(readings)
        result = EpochResult(epoch=now, messages=pre_messages)

        migrations: list[tuple] = []
        for zone_id, zone_readings in per_zone.items():
            if zone_id in self._failed:
                continue
            for tag in zone_readings.tags_seen():
                owner = self._owner.get(tag)
                if owner is None:
                    self._owner[tag] = zone_id
                elif owner != zone_id:
                    migrations.append((tag, owner, zone_id, owner not in self._failed))
                    self._owner[tag] = zone_id
                    result.handoffs.append((tag, owner, zone_id))
        if migrations:
            self._apply_migrations(migrations, now, result.messages)

        # fan out (skipping zones already rebuilt through this epoch)
        start = time.perf_counter()
        order = sorted(per_zone)
        checkpointing: set[str] = set()
        batches: dict[int, tuple] = {}
        for zone_id in order:
            if zone_id in self._failed or zone_id in self._rehomed_mid_epoch:
                continue
            flags = 0
            if len(self._replay[zone_id]) >= self._checkpoint_interval:
                flags = wire.FLAG_CHECKPOINT
                if self.checkpoint_codec == "pickle":
                    flags |= wire.FLAG_CHECKPOINT_PICKLE
                checkpointing.add(zone_id)
            frame = encode_epoch_frame(per_zone[zone_id])
            worker = self._worker_of_zone[zone_id]
            batches.setdefault(worker.index, (worker, []))[1].append(
                (self._zone_index[zone_id], flags, frame)
            )
        for worker, entries in batches.values():
            if not worker.alive:
                continue  # handled in fan-in
            payload = wire.encode_epoch_batch(entries)
            worker.send_bytes(payload)
            self.stats.bytes_to_workers += len(payload)
        self.stats.fanout_s += time.perf_counter() - start

        # fan in.  Every worker is drained before any death is handled:
        # failover ships an install to a *survivor*, and that round-trip
        # must not race the survivor's still-pending epoch reply.
        start = time.perf_counter()
        results_by_index: dict[int, bytes] = {}
        dead: list = []
        for worker, _entries in batches.values():
            try:
                if not worker.alive:
                    raise WorkerDied(worker, worker.death_reason or "declared dead")
                data = worker.recv_bytes()
            except WorkerDied as death:
                dead.append(death.worker)
                continue
            self.stats.bytes_from_workers += len(data)
            if data and data[0] == wire.MSG_ERROR:
                detail = data[1:].decode("utf-8", "replace")
                dead.append(self._declare_error_death(worker, detail).worker)
                continue
            for zone_index, zone_result in wire.decode_epoch_batch_result(data):
                results_by_index[zone_index] = zone_result
        self.stats.fanin_wait_s += time.perf_counter() - start
        for worker in dead:
            self._on_mid_epoch_death(worker, now, result.messages)

        from repro.obs.metrics import snapshot_from_json

        for zone_id in order:
            if zone_id in self._failed or zone_id in self._rehomed_mid_epoch:
                continue
            zone_result = results_by_index.get(self._zone_index[zone_id])
            if zone_result is None:  # worker died after another zone's rehome
                continue
            (
                messages, departed, busy_s, checkpoint_s, checkpoint, metrics_blob,
            ) = wire.decode_epoch_result(zone_result)
            result.messages.extend(messages)
            for tag in departed:
                self._owner.pop(tag, None)
            self.stats.busy_s[zone_id] = self.stats.busy_s.get(zone_id, 0.0) + busy_s
            self.stats.zone_epochs[zone_id] = self.stats.zone_epochs.get(zone_id, 0) + 1
            if metrics_blob is not None:
                self._zone_snapshots[zone_id] = snapshot_from_json(metrics_blob)
            if zone_id in checkpointing:
                if checkpoint is None:
                    raise wire.WireError(f"zone {zone_id!r} returned no checkpoint")
                self._checkpoints[zone_id] = _ZoneCheckpoint(
                    epoch=now,
                    data=checkpoint,
                    metrics=self._zone_snapshots.get(zone_id),
                )
                self._replay[zone_id] = []
                self.stats.checkpoint_s += checkpoint_s
                self.stats.checkpoints += 1
                if self.metrics is not None:
                    self._m_checkpoints.inc()
                    self._m_checkpoint_seconds.observe(checkpoint_s)

        self._track_messages(result.messages)
        self.stats.epochs += 1
        if self.metrics is not None:
            self._m_epochs.inc()
            self._m_handoffs.inc(len(result.handoffs))
        self.supervisor._sync_gauges()
        result.warnings = self.quarantine.warnings[warnings_before:]
        return result

    def _apply_migrations(
        self,
        migrations: list[tuple],
        now: int,
        out_messages: list[EventMessage],
    ) -> None:
        """The parent's migration protocol with mid-flight failure repair.

        Releases and adoptions keep their per-zone batching and global
        migration order.  When an owner's worker dies before its release
        reply lands, the exported records are gone: the coordinator
        closes those tags' intervals itself (the per-tag slice of
        ``fail_zone``) and hands the targets bare records — the same
        degradation as a migration out of an already-crashed zone.  A
        target rebuilt mid-epoch needs neither closings nor adoptions:
        its rebuild already replayed the epoch and the failover already
        closed everything it owned.
        """
        release_plan: dict[str, list[int]] = {}
        for i, (tag, owner, _target, needs_release) in enumerate(migrations):
            if needs_release:
                release_plan.setdefault(owner, []).append(i)

        for owner, indices in release_plan.items():
            tags = [migrations[i][0] for i in indices]
            self._send(owner, wire.encode_release(self._zone_index[owner], now, tags))

        closings: dict[int, list[EventMessage]] = {}
        records: dict[int, bytes] = {}
        emitted: set[int] = set()
        lost: list[tuple] = []  # (dead worker, release indices it took down)
        start = time.perf_counter()
        for owner, indices in release_plan.items():
            if owner in self._rehomed_mid_epoch:
                # the request died with the owner's old worker; the new
                # home never saw it.  Close the tags' intervals here and
                # migrate them with no exported knowledge.
                for i in indices:
                    closure = self._close_tag(migrations[i][0], now)
                    self._track_messages(closure)
                    out_messages.extend(closure)
                    emitted.add(i)
                    records[i] = wire.encode_record({"tag": migrations[i][0]})
                continue
            worker = self._worker_of_zone[owner]
            try:
                if not worker.alive:
                    raise WorkerDied(worker, worker.death_reason or "declared dead")
                data = self._recv(owner)
                if data and data[0] == wire.MSG_ERROR:
                    raise self._declare_error_death(
                        worker, data[1:].decode("utf-8", "replace")
                    )
                releases = wire.decode_release_result(data)
            except WorkerDied as death:
                # defer the failover until every owner is drained: the
                # rebuilt zone's install must not race a survivor's
                # still-pending release reply
                lost.append((death.worker, indices))
                continue
            for i, (record, closing) in zip(indices, releases):
                records[i] = record
                closings[i] = closing
        self.stats.fanin_wait_s += time.perf_counter() - start

        for worker, indices in lost:
            # flush what we already hold so the failover sees (and
            # closes) only intervals that are genuinely still open
            for i in sorted(closings):
                if i not in emitted:
                    out_messages.extend(closings[i])
                    emitted.add(i)
            # close the lost tags' intervals *before* the failover: a
            # rebuilt target replays this epoch and re-opens them, and
            # the stream must close the old interval first
            for i in indices:
                closure = self._close_tag(migrations[i][0], now)
                self._track_messages(closure)
                out_messages.extend(closure)
                emitted.add(i)
                records[i] = wire.encode_record({"tag": migrations[i][0]})
            self._on_mid_epoch_death(worker, now, out_messages)

        adopt_plan: dict[str, list[bytes]] = {}
        for i, (tag, _owner, target, needs_release) in enumerate(migrations):
            if i not in emitted:
                if target in self._rehomed_mid_epoch:
                    # its intervals were closed by the failover; the late
                    # closing would close them a second time
                    pass
                else:
                    out_messages.extend(closings.get(i, ()))
            if target in self._rehomed_mid_epoch:
                continue  # the rebuilt target replayed this epoch already
            if needs_release:
                record = records[i]
            else:
                record = wire.encode_record({"tag": tag})
            adopt_plan.setdefault(target, []).append(record)

        for target, target_records in adopt_plan.items():
            if self._worker_of_zone[target].alive:
                self._send(
                    target,
                    wire.encode_adopt(self._zone_index[target], now, target_records),
                )
        start = time.perf_counter()
        adopt_deaths: list = []
        for target in adopt_plan:
            if target in self._rehomed_mid_epoch:
                continue
            worker = self._worker_of_zone[target]
            try:
                if not worker.alive:
                    raise WorkerDied(worker, worker.death_reason or "declared dead")
                data = self._recv(target)
                if data and data[0] == wire.MSG_ERROR:
                    raise self._declare_error_death(
                        worker, data[1:].decode("utf-8", "replace")
                    )
                wire.expect_ok(data)
            except WorkerDied as death:
                adopt_deaths.append(death.worker)
        self.stats.fanin_wait_s += time.perf_counter() - start
        for worker in adopt_deaths:  # after the drain, for the same reason
            self._on_mid_epoch_death(worker, now, out_messages)

    # ------------------------------------------------------------------
    # queries (rehome and retry on a dead owner)
    # ------------------------------------------------------------------

    def _query_owner(self, owner: str, kind: int, tag) -> int:
        for _attempt in (0, 1):
            try:
                self._send(owner, wire.encode_query(self._zone_index[owner], kind, tag))
                return wire.decode_query_result(self._recv(owner))
            except WorkerDied as death:
                at = self._last_epoch if self._last_epoch is not None else 0
                self._handle_dead_worker(death.worker, self._deferred_messages, at)
        raise RemoteError(f"query against zone {owner!r} kept losing workers")

    def location_of(self, tag) -> int:
        from repro.model.locations import UNKNOWN_COLOR

        owner = self._owner.get(tag)
        if owner is None or owner in self._failed:
            return UNKNOWN_COLOR
        return self._query_owner(owner, wire.QUERY_LOCATION, tag)

    def container_of(self, tag):
        from repro.model.objects import TagId

        owner = self._owner.get(tag)
        if owner is None or owner in self._failed:
            return None
        key = self._query_owner(owner, wire.QUERY_CONTAINER, tag)
        return None if key == 0 else TagId.from_key(key)

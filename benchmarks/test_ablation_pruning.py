"""Ablation — edge pruning vs. inference accuracy (§VI-C, Expt 6 note).

The paper reports that pruned edges barely affect location inference
(<1 % difference) but may cost up to ~8.2 % containment accuracy — the
price of bounding memory.  This ablation reruns the accuracy workload with
the pruning thresholds of Fig. 10 and reports both error rates.
"""

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy

from benchmarks._shared import Table, accuracy_config, get_spire

THRESHOLDS = [0.0, 0.25, 0.5, 0.75]


def run_experiment() -> dict:
    results = {}
    for threshold in THRESHOLDS:
        report = get_spire(
            accuracy_config(),
            params=InferenceParams(prune_threshold=threshold),
            policies=(ScoringPolicy.ALL,),
        )
        acc = report.accuracy[ScoringPolicy.ALL]
        results[threshold] = (
            acc.location_error_rate,
            acc.containment_error_rate,
            report.peak_edges,
        )
    return results


@pytest.mark.benchmark(group="ablation-pruning")
def test_ablation_pruning_accuracy_cost(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Ablation: edge pruning threshold vs. accuracy and graph size",
        ["threshold", "location error", "containment error", "peak edges"],
    )
    for threshold in THRESHOLDS:
        table.add(threshold, *results[threshold])
    table.show()

    base_loc, base_cont, base_edges = results[0.0]
    for threshold in (0.25, 0.5, 0.75):
        loc, cont, edges = results[threshold]
        # pruning keeps the graph smaller
        assert edges <= base_edges
        # location accuracy is barely affected (paper: < 1 % difference)
        assert abs(loc - base_loc) < 0.03
        # containment may degrade, but boundedly (paper: up to ~8.2 %)
        assert cont - base_cont < 0.15

"""Integration tests for the experiment runner."""

import pytest

from repro.core.params import InferenceParams
from repro.events.wellformed import check_well_formed
from repro.experiments.runner import ground_truth_stream, run_smurf, run_spire
from repro.metrics.accuracy import ScoringPolicy
from repro.metrics.events import match_events
from repro.metrics.sizing import location_only


class TestRunSpire:
    def test_report_fields_populated(self, small_sim):
        report = run_spire(small_sim, policies=(ScoringPolicy.ALL,))
        assert report.epochs == len(small_sim.stream)
        assert report.messages
        assert report.raw_bytes == small_sim.stream.raw_bytes
        assert report.peak_nodes > 0 and report.peak_edges > 0
        assert report.final_memory_bytes > 0
        assert 0.0 < report.compression_ratio < 1.0

    def test_output_well_formed(self, small_sim):
        report = run_spire(small_sim)
        check_well_formed(report.messages)

    def test_accuracy_reasonable_at_high_read_rate(self, small_sim):
        report = run_spire(small_sim)
        acc = report.accuracy[ScoringPolicy.ALL]
        assert acc.location_total > 0
        assert acc.location_error_rate < 0.25
        assert acc.containment_error_rate < 0.25

    def test_multiple_policies(self, small_sim):
        report = run_spire(
            small_sim,
            policies=(ScoringPolicy.ALL, ScoringPolicy.INFERRED_ONLY, ScoringPolicy.HARD_ONLY),
        )
        totals = [a.location_total for a in report.accuracy.values()]
        # populations shrink monotonically: ALL >= INFERRED >= HARD
        assert totals[0] >= totals[1] >= totals[2]

    def test_level1_larger_than_level2(self, small_sim):
        level1 = run_spire(small_sim, compression_level=1, score=False)
        level2 = run_spire(small_sim, compression_level=2, score=False)
        assert len(level2.messages) < len(level1.messages)

    def test_score_false_skips_accuracy(self, small_sim):
        report = run_spire(small_sim, score=False)
        assert report.accuracy[ScoringPolicy.ALL].location_total == 0

    def test_custom_params_change_results(self, small_sim):
        default = run_spire(small_sim, score=False)
        eager = run_spire(
            small_sim, params=InferenceParams(prune_threshold=0.45), score=False
        )
        assert len(default.messages) != len(eager.messages)


class TestRunSmurf:
    def test_smurf_report(self, small_sim):
        report = run_smurf(small_sim)
        assert report.messages
        assert report.accuracy.location_total > 0
        check_well_formed(report.messages)

    def test_smurf_has_no_containment_output(self, small_sim):
        report = run_smurf(small_sim)
        assert all(m.kind.is_location for m in report.messages)


class TestGroundTruthStream:
    def test_reference_stream_well_formed(self, small_sim):
        reference = ground_truth_stream(small_sim)
        check_well_formed(reference)
        assert reference

    def test_perfect_trace_spire_matches_reference_well(self):
        from repro.simulator.config import SimulationConfig
        from repro.simulator.warehouse import WarehouseSimulator

        cfg = SimulationConfig(
            duration=300,
            pallet_period=100,
            cases_per_pallet_min=2,
            cases_per_pallet_max=2,
            items_per_case=3,
            read_rate=1.0,
            shelf_read_period=5,
            num_shelves=2,
            shelving_time_mean=40,
            shelving_time_jitter=5,
            seed=2,
        )
        sim = WarehouseSimulator(cfg).run()
        report = run_spire(sim, compression_level=1, score=False)
        reference = ground_truth_stream(sim)
        result = match_events(
            location_only(report.messages),
            location_only(reference),
            tolerance=2 * cfg.shelf_read_period,
        )
        assert result.f_measure > 0.8

    def test_location_only_reference(self, small_sim):
        reference = ground_truth_stream(small_sim, include_containment=False)
        assert all(m.kind.is_location for m in reference)

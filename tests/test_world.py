"""Unit tests for the ground-truth physical world."""

import pytest

from repro.model.locations import Location, LocationKind, UNKNOWN_LOCATION
from repro.model.world import PhysicalWorld, WorldError

from tests.conftest import case, item, pallet

DOCK = Location(0, "dock", LocationKind.ENTRY_DOOR)
SHELF = Location(1, "shelf", LocationKind.SHELF)


@pytest.fixture
def world() -> PhysicalWorld:
    w = PhysicalWorld()
    w.add_object(pallet(1), DOCK)
    w.add_object(case(1), DOCK)
    w.add_object(item(1), DOCK)
    w.add_object(item(2), DOCK)
    w.contain(item(1), case(1))
    w.contain(item(2), case(1))
    w.contain(case(1), pallet(1))
    return w


class TestBasics:
    def test_membership_and_len(self, world):
        assert case(1) in world and len(world) == 4

    def test_resides(self, world):
        assert world.resides(item(1), DOCK)
        assert not world.resides(item(1), SHELF)

    def test_contained(self, world):
        assert world.contained(item(1), case(1))
        assert not world.contained(item(1), pallet(1))

    def test_duplicate_add_rejected(self, world):
        with pytest.raises(WorldError):
            world.add_object(item(1), DOCK)

    def test_location_of_unknown_tag_raises(self, world):
        with pytest.raises(KeyError):
            world.location_of(item(99))


class TestContainment:
    def test_top_level_container(self, world):
        assert world.top_level_container(item(1)) == pallet(1)
        assert world.top_level_container(pallet(1)) == pallet(1)

    def test_descendants_preorder(self, world):
        assert world.descendants_of(pallet(1)) == [case(1), item(1), item(2)]

    def test_children_of(self, world):
        assert world.children_of(case(1)) == frozenset({item(1), item(2)})

    def test_contain_requires_colocated(self, world):
        world.add_object(case(2), SHELF)
        world.add_object(item(3), DOCK)
        with pytest.raises(WorldError, match="co-located"):
            world.contain(item(3), case(2))

    def test_contain_respects_levels(self, world):
        world.add_object(case(2), DOCK)
        with pytest.raises(WorldError, match="packaging levels"):
            world.contain(case(2), case(1))
        with pytest.raises(WorldError, match="packaging levels"):
            world.contain(pallet(1), case(2))

    def test_single_container(self, world):
        world.add_object(case(2), DOCK)
        with pytest.raises(WorldError, match="already contained"):
            world.contain(item(1), case(2))

    def test_contain_idempotent(self, world):
        world.contain(item(1), case(1))  # no error, no change
        assert world.container_of(item(1)) == case(1)

    def test_uncontain(self, world):
        former = world.uncontain(item(1))
        assert former == case(1)
        assert world.container_of(item(1)) is None
        assert item(1) not in world.children_of(case(1))

    def test_uncontain_without_container_raises(self, world):
        with pytest.raises(WorldError):
            world.uncontain(pallet(1))


class TestMovement:
    def test_move_carries_contents(self, world):
        moved = world.move(pallet(1), SHELF)
        assert set(moved) == {pallet(1), case(1), item(1), item(2)}
        for tag in moved:
            assert world.location_of(tag) == SHELF

    def test_move_contained_object_rejected(self, world):
        with pytest.raises(WorldError, match="uncontain"):
            world.move(item(1), SHELF)

    def test_objects_at_uses_index(self, world):
        assert set(world.objects_at(DOCK)) == {pallet(1), case(1), item(1), item(2)}
        world.uncontain(case(1))
        world.move(case(1), SHELF)
        assert set(world.objects_at(SHELF)) == {case(1), item(1), item(2)}
        assert world.objects_at(DOCK) == [pallet(1)]

    def test_objects_at_sorted(self, world):
        tags = world.objects_at(DOCK)
        assert tags == sorted(tags)


class TestRemoval:
    def test_remove_object_with_children_rejected(self, world):
        with pytest.raises(WorldError, match="still contains"):
            world.remove_object(case(1))

    def test_remove_subtree(self, world):
        removed = world.remove_subtree(pallet(1))
        assert set(removed) == {pallet(1), case(1), item(1), item(2)}
        assert len(world) == 0

    def test_remove_leaf_detaches_from_parent(self, world):
        world.remove_object(item(1))
        assert item(1) not in world.children_of(case(1))
        assert len(world) == 3

    def test_vanish_moves_subtree_to_unknown(self, world):
        affected = world.vanish(case(1))
        assert set(affected) == {case(1), item(1), item(2)}
        assert world.location_of(case(1)) is UNKNOWN_LOCATION
        assert world.container_of(case(1)) is None
        # pallet stays behind at the dock
        assert world.location_of(pallet(1)) == DOCK

    def test_vanish_detaches_from_container(self, world):
        world.vanish(item(1))
        assert item(1) not in world.children_of(case(1))
        assert world.location_of(item(1)) is UNKNOWN_LOCATION


class TestInvariants:
    def test_fresh_world_consistent(self, world):
        world.check_invariants()

    def test_consistent_after_mutations(self, world):
        world.uncontain(case(1))
        world.move(case(1), SHELF)
        world.vanish(item(1))
        world.add_object(case(9), SHELF)
        world.check_invariants()

"""Ablation — value of special-reader confirmations (§II, §III-B).

The belt readers' singulation knowledge is SPIRE's strongest containment
evidence: the §IV-A memory term and the §III-B edge drops both hinge on it.
This ablation knocks the receiving belt's read rate down (at 0 it never
reads, so no case-level confirmations exist at all) and measures the
containment error — quantifying how much of SPIRE's containment accuracy
is confirmation-driven versus co-location-history-driven.
"""

import dataclasses

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy

from benchmarks._shared import Table, accuracy_config, get_spire

BELT_RATES = [0.0, 0.5, 0.85, 1.0]


def run_experiment() -> dict:
    results = {}
    for belt_rate in BELT_RATES:
        config = dataclasses.replace(
            accuracy_config(), read_rate_overrides=(("belt", belt_rate),)
        )
        report = get_spire(config, params=InferenceParams(), policies=(ScoringPolicy.ALL,))
        acc = report.accuracy[ScoringPolicy.ALL]
        results[belt_rate] = (acc.containment_error_rate, acc.location_error_rate)
    return results


@pytest.mark.benchmark(group="ablation-confirmations")
def test_ablation_confirmation_value(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Ablation: belt-reader read rate (confirmation strength) vs. accuracy",
        ["belt read rate", "containment error", "location error"],
    )
    for rate in BELT_RATES:
        table.add(rate, *results[rate])
    table.show()

    # confirmations carry real weight: removing the belt reader entirely
    # degrades containment accuracy substantially ...
    assert results[0.0][0] > results[1.0][0] + 0.02
    # ... monotonically in the belt quality (with a little noise slack)
    errors = [results[rate][0] for rate in BELT_RATES]
    assert errors[0] >= errors[2] - 0.02 and errors[1] >= errors[3] - 0.02
    # location accuracy is far less confirmation-dependent
    location_spread = results[0.0][1] - results[1.0][1]
    containment_spread = results[0.0][0] - results[1.0][0]
    assert containment_spread > location_spread
"""The end-to-end SPIRE substrate (Fig. 2).

:class:`Spire` wires the full per-epoch path together:

    raw readings → deduplication → graph update (capture) →
    partial/complete iterative inference → conflict resolution →
    carried-forward estimate store → level-1/level-2 compression →
    compressed event stream (+ node removal for properly exited objects).

The *estimate store* is the substrate's current best answer to the §II
interpretation queries ("the most likely location / container of object o
now"): estimates produced by an inference pass overwrite it; objects the
pass did not visit (or whose result partial inference withheld) keep their
previous state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable

import numpy as np

from repro.compression.level1 import RangeCompressor
from repro.compression.level2 import ContainmentCompressor
from repro.core.capture import GraphUpdater, ReaderInfo
from repro.events.codec import encode_stream
from repro.core.conflicts import resolve_conflicts
from repro.core.graph import UNKNOWN_COLOR, Graph
from repro.core.interpretation import Estimate, InterpretationResult, LocationSource
from repro.core.iterative import IterativeInference
from repro.core.params import InferenceParams
from repro.events.messages import EventMessage
from repro.faults.health import ReaderHealthMonitor
from repro.model.locations import LocationRegistry
from repro.model.objects import TagId
from repro.readers.dedup import Deduplicator
from repro.readers.reader import Reader
from repro.readers.stream import EpochReadings, ReadingStream


@dataclass(frozen=True)
class Deployment:
    """The site knowledge SPIRE is configured with.

    Attributes:
        readers: Per-reader metadata (location color, specialness, period).
        registry: Location registry for rendering/validation (optional for
            headless use, but required by examples and reports).
    """

    readers: dict[int, ReaderInfo]
    registry: LocationRegistry | None = None

    @classmethod
    def from_readers(
        cls, readers: Iterable[Reader], registry: LocationRegistry | None = None
    ) -> "Deployment":
        infos = {r.reader_id: ReaderInfo.from_reader(r) for r in readers}
        return cls(readers=infos, registry=registry)

    @property
    def complete_inference_period(self) -> int:
        """LCM of reader periods — the complete-inference cadence (§IV-D)."""
        lcm = 1
        for info in self.readers.values():
            lcm = int(np.lcm(lcm, info.period))
        return lcm

    def color_periods(self) -> dict[int, int]:
        """Fastest interrogation period per location color."""
        periods: dict[int, int] = {}
        for info in self.readers.values():
            current = periods.get(info.color)
            if current is None or info.period < current:
                periods[info.color] = info.period
        return periods


@dataclass(slots=True)
class CurrentEstimate:
    """Carried-forward state of one object in the estimate store."""

    location: int
    container: TagId | None
    observed: bool
    updated_at: int


@dataclass
class EpochOutput:
    """Everything one epoch of processing produced.

    Attributes:
        epoch: The epoch processed.
        complete: Whether complete (vs partial) inference ran.
        result: The raw (conflict-resolved) inference result.
        messages: Compressed event messages emitted this epoch.
        departed: Objects whose nodes were removed after an exit reading.
    """

    epoch: int
    complete: bool
    result: InterpretationResult
    messages: list[EventMessage]
    departed: list[TagId] = field(default_factory=list)
    #: wall-clock cost of the graph-update (capture) step this epoch
    update_seconds: float = 0.0
    #: wall-clock cost of inference + conflict resolution this epoch
    inference_seconds: float = 0.0
    #: size of the graph's dirty set this epoch (nodes whose color state,
    #: edges or read evidence changed — DESIGN.md §8)
    dirty_nodes: int = 0
    #: objects evicted by staleness retention this epoch (see
    #: ``Spire(retention_epochs=...)``)
    evicted: list[TagId] = field(default_factory=list)


class _SpireMetrics:
    """Pre-bound instruments for one substrate (see :mod:`repro.obs`).

    Instruments are looked up once at attach time, so the per-epoch cost
    is plain attribute access + arithmetic; cumulative stage counters
    (inference cache, candidate edges) are read as deltas against the
    baselines captured here, which keeps the accounting correct across
    checkpoint restores (the restored substrate's plain counters restart
    at whatever the codec preserved, and the registry is seeded
    separately — see ``Coordinator._rebuild_spire``).
    """

    __slots__ = (
        "readings", "deduped", "raw_bytes", "epochs_partial", "epochs_complete",
        "dirty", "dirty_total", "cache_hits", "cache_misses", "candidate_edges",
        "events", "event_bytes", "graph_nodes", "graph_edges", "tracked",
        "departed", "evicted", "update_seconds", "inference_seconds",
        "last_hits", "last_misses", "last_candidate",
    )

    def __init__(self, registry, spire: "Spire") -> None:
        c, g, h = registry.counter, registry.gauge, registry.histogram
        self.readings = c("spire_readings_total", "Raw readings entering deduplication")
        self.deduped = c("spire_readings_deduped_total", "Readings removed as duplicates")
        self.raw_bytes = c("spire_raw_bytes_total", "Raw reading bytes entering the substrate")
        self.epochs_partial = c("spire_epochs_total", "Epochs processed by inference mode", mode="partial")
        self.epochs_complete = c("spire_epochs_total", "Epochs processed by inference mode", mode="complete")
        self.dirty = g("spire_dirty_nodes", "Dirty-set size of the last epoch")
        self.dirty_total = c("spire_dirty_nodes_total", "Dirty-set sizes summed over epochs")
        self.cache_hits = c("spire_decision_cache_hits_total", "Containment decisions reused from cache")
        self.cache_misses = c("spire_decision_cache_misses_total", "Containment decisions recomputed")
        self.candidate_edges = c("spire_candidate_edges_total", "Candidate containment edges drawn")
        self.events = c("spire_events_total", "Compressed event messages emitted")
        self.event_bytes = c("spire_event_bytes_total", "Encoded event-stream bytes emitted")
        self.graph_nodes = g("spire_graph_nodes", "Nodes in the containment graph")
        self.graph_edges = g("spire_graph_edges", "Edges in the containment graph")
        self.tracked = g("spire_tracked_objects", "Objects in the estimate store")
        self.departed = c("spire_departed_objects_total", "Objects retired at exit readers")
        self.evicted = c("spire_evicted_objects_total", "Objects evicted by retention")
        self.update_seconds = h("spire_update_seconds", "Graph-update (capture) wall time per epoch")
        self.inference_seconds = h("spire_inference_seconds", "Inference + conflict resolution wall time per epoch")
        self.last_hits = spire.inference.cache_hits
        self.last_misses = spire.inference.cache_misses
        self.last_candidate = spire.updater.candidate_edges


class Spire:
    """The interpretation and compression substrate over RFID streams."""

    def __init__(
        self,
        deployment: Deployment,
        params: InferenceParams | None = None,
        compression_level: int = 2,
        complete_period: int | None = None,
        health: ReaderHealthMonitor | bool | None = None,
        incremental: bool = True,
        retention_epochs: int | None = None,
        metrics=None,
        trace=None,
    ) -> None:
        """Build a substrate for ``deployment``.

        ``complete_period`` overrides the complete-inference cadence, which
        defaults to the LCM of the reader periods (§IV-D); ``1`` forces
        complete inference every epoch (used by ablation benchmarks).

        ``health`` attaches a reader-health monitor: pass an instance, or
        ``True`` to build one over the deployment's readers with default
        tolerance.  While the monitor flags a location's readers as dead,
        inference stops decaying posteriors of objects last seen there
        (graceful degradation instead of spurious missing-object events).

        ``incremental`` enables cached containment decisions (DESIGN.md §8):
        nodes whose decision inputs did not change reuse the previous
        decision instead of re-running edge inference.  The output stream is
        identical either way; ``False`` forces the full recompute path (the
        correctness oracle the equivalence tests and benchmarks compare
        against).

        ``retention_epochs`` (opt-in) evicts objects not observed for that
        many epochs, provided they are currently reported missing and have
        no open event intervals — eviction is then invisible in the output
        unless the object later returns (it would re-enter as new).  Keeps
        node/estimate/compressor state bounded on long runs.

        ``metrics`` attaches a :class:`repro.obs.MetricRegistry`; ``None``
        (default) disables telemetry at zero per-epoch cost beyond one
        ``is None`` check.  ``trace`` attaches a
        :class:`repro.obs.TraceLog` that records one JSONL span record
        per epoch.  Neither is serialized by checkpoints — re-attach
        after :func:`repro.core.checkpoint.loads_spire`.
        """
        if compression_level not in (1, 2):
            raise ValueError(f"compression_level must be 1 or 2, got {compression_level}")
        if complete_period is not None and complete_period < 1:
            raise ValueError(f"complete_period must be >= 1, got {complete_period}")
        if retention_epochs is not None and retention_epochs < 1:
            raise ValueError(f"retention_epochs must be >= 1, got {retention_epochs}")
        self.deployment = deployment
        self.params = params or InferenceParams()
        self.graph = Graph()
        self.dedup = Deduplicator()
        self.updater = GraphUpdater(self.graph, self.params)
        self.updater.register_readers(deployment.readers)
        self.inference = IterativeInference(
            self.graph, self.params, deployment.color_periods(),
            incremental=incremental,
        )
        self.incremental = incremental
        self.compressor = (
            ContainmentCompressor() if compression_level == 2 else RangeCompressor()
        )
        self.compression_level = compression_level
        self.estimates: dict[TagId, CurrentEstimate] = {}
        self._complete_period = (
            complete_period
            if complete_period is not None
            else deployment.complete_inference_period
        )
        self._retention = retention_epochs
        self._epochs_processed = 0
        self._last_epoch: int | None = None
        self._last_suppressed: frozenset[int] = frozenset()
        if health is True:
            health = ReaderHealthMonitor(deployment.readers)
        self.health: ReaderHealthMonitor | None = health or None
        self.metrics = None
        self._m: _SpireMetrics | None = None
        self._trace = trace
        if metrics is not None:
            self.attach_metrics(metrics)

    # ------------------------------------------------------------------
    # telemetry (repro.obs)
    # ------------------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """(Re)bind telemetry instruments to ``registry``.

        Registries are never part of checkpoints; call this after
        :func:`~repro.core.checkpoint.loads_spire` to resume accounting
        (optionally after seeding the registry from a snapshot taken at
        checkpoint time, so totals survive failover).
        """
        if registry is None or not registry.enabled:
            self.metrics = None
            self._m = None
            return
        self.metrics = registry
        self._m = _SpireMetrics(registry, self)

    def attach_trace(self, trace) -> None:
        """(Re)bind the per-epoch JSONL trace log (``None`` detaches)."""
        self._trace = trace

    def __getstate__(self):
        # telemetry bindings (registry, instruments, trace file handle)
        # stay out of pickled checkpoints; re-attach after restore
        state = self.__dict__.copy()
        state["metrics"] = None
        state["_m"] = None
        state["_trace"] = None
        return state

    # ------------------------------------------------------------------

    def process_epoch(self, readings: EpochReadings) -> EpochOutput:
        """Run the full substrate over one epoch of raw readings."""
        now = readings.epoch
        if self._last_epoch is not None and now <= self._last_epoch:
            raise ValueError(
                f"epoch {now} is not after the last processed epoch "
                f"{self._last_epoch}; epochs must strictly increase "
                f"(re-sequence the stream, e.g. with repro.faults.ResilientStream)"
            )
        self._last_epoch = now
        clean = self.dedup.process(readings)

        if self.health is not None:
            self.health.observe_epoch(clean, now)
            suppressed = self.health.suppressed_colors()
            self.updater.suppressed_colors = suppressed
            self.inference.suppressed_colors = suppressed

        t0 = perf_counter()
        self.updater.apply_epoch(clean, self.deployment.readers, now)
        if self.health is not None:
            suppressed = self.updater.suppressed_colors
            if suppressed != self._last_suppressed:
                # outage onset or recovery: the decay behaviour of every
                # object last seen at an affected location changes, so
                # those nodes join this epoch's dirty set (their location
                # beliefs are always recomputed fresh; this keeps the
                # dirty-set accounting honest across fault transitions)
                self.graph.mark_recent_colors_dirty(
                    suppressed ^ self._last_suppressed
                )
                self._last_suppressed = suppressed
        t1 = perf_counter()

        complete = now % self._complete_period == 0
        result = self.inference.run(now, complete)
        resolve_conflicts(result)
        t2 = perf_counter()

        dirty_nodes = self.graph.dirty_count
        messages = self._apply_result(result, now)
        departed = self._retire_exited(now, messages)
        evicted = self._evict_stale(now) if self._retention is not None else []
        self._epochs_processed += 1
        m = self._m
        if m is not None:
            m.readings.inc(readings.reading_count)
            m.deduped.inc(readings.reading_count - clean.reading_count)
            m.raw_bytes.inc(readings.raw_bytes)
            (m.epochs_complete if complete else m.epochs_partial).inc()
            m.dirty.set(dirty_nodes)
            m.dirty_total.inc(dirty_nodes)
            hits, misses = self.inference.cache_hits, self.inference.cache_misses
            m.cache_hits.inc(hits - m.last_hits)
            m.cache_misses.inc(misses - m.last_misses)
            m.last_hits, m.last_misses = hits, misses
            drawn = self.updater.candidate_edges
            m.candidate_edges.inc(drawn - m.last_candidate)
            m.last_candidate = drawn
            m.events.inc(len(messages))
            if messages:
                m.event_bytes.inc(len(encode_stream(messages)))
            m.graph_nodes.set(self.graph.node_count)
            m.graph_edges.set(self.graph.edge_count)
            m.tracked.set(len(self.estimates))
            m.departed.inc(len(departed))
            m.evicted.inc(len(evicted))
            m.update_seconds.observe(t1 - t0)
            m.inference_seconds.observe(t2 - t1)
        if self._trace is not None:
            self._trace.epoch(
                now,
                {"update": t1 - t0, "inference": t2 - t1},
                complete=complete,
                dirty_nodes=dirty_nodes,
                messages=len(messages),
            )
        return EpochOutput(
            epoch=now,
            complete=complete,
            result=result,
            messages=messages,
            departed=departed,
            update_seconds=t1 - t0,
            inference_seconds=t2 - t1,
            dirty_nodes=dirty_nodes,
            evicted=evicted,
        )

    def run(self, stream: ReadingStream | Iterable[EpochReadings]) -> list[EpochOutput]:
        """Process a whole stream; returns the per-epoch outputs."""
        return [self.process_epoch(readings) for readings in stream]

    # ------------------------------------------------------------------

    def location_of(self, tag: TagId) -> int:
        """Most likely location color of ``tag`` (the §II query); UNKNOWN_COLOR
        when the object is estimated absent or has never been seen."""
        current = self.estimates.get(tag)
        return current.location if current is not None else UNKNOWN_COLOR

    def container_of(self, tag: TagId) -> TagId | None:
        """Most likely container of ``tag`` (the §II query)."""
        current = self.estimates.get(tag)
        return current.container if current is not None else None

    @property
    def tracked_objects(self) -> int:
        return len(self.estimates)

    # ------------------------------------------------------------------

    def _apply_result(self, result: InterpretationResult, now: int) -> list[EventMessage]:
        """Merge inference results into the store and compress the deltas."""
        messages: list[EventMessage] = []
        exiting = self.updater.exiting
        for estimate in sorted(result, key=lambda e: e.tag):
            estimate.exiting = estimate.tag in exiting
            current = self.estimates.get(estimate.tag)
            if estimate.source is LocationSource.WITHHELD:
                # §IV-D: unknown results of partial inference are withheld;
                # only the containment estimate is taken
                location = current.location if current is not None else UNKNOWN_COLOR
            else:
                location = estimate.location
            self.estimates[estimate.tag] = CurrentEstimate(
                location=location,
                container=estimate.container,
                observed=estimate.observed,
                updated_at=now,
            )
            if estimate.source is LocationSource.WITHHELD and current is None:
                # a brand-new object with a withheld location has nothing to
                # report yet
                continue
            messages.extend(
                self.compressor.observe(estimate.tag, location, estimate.container, now)
            )
        return messages

    # ------------------------------------------------------------------
    # zone handoff primitives (used by repro.distributed)
    # ------------------------------------------------------------------

    def release(self, tag: TagId, now: int) -> tuple[dict, list[EventMessage]]:
        """Stop tracking ``tag`` and export its portable knowledge.

        Returns ``(record, messages)``: the record carries the observation
        memory and the last confirmation so an adopting substrate does not
        start from zero; the messages close the object's open intervals in
        this substrate's output stream.  Used when an object migrates to a
        different zone (see :mod:`repro.distributed`).
        """
        node = self.graph.get(tag)
        record = {
            "tag": tag,
            "recent_color": node.recent_color if node is not None else None,
            "seen_at": node.seen_at if node is not None else now,
            "confirmed_parent": node.confirmed_parent if node is not None else None,
            "confirmed_at": node.confirmed_at if node is not None else -1,
            "confirmed_conflicts": node.confirmed_conflicts if node is not None else 0,
        }
        messages = self.compressor.depart(tag, now)
        if node is not None:
            self.graph.remove_node(tag)
        self.estimates.pop(tag, None)
        self.dedup.forget(tag)
        return record, messages

    def adopt(self, record: dict, now: int) -> None:
        """Import an object released by another substrate.

        Creates (or updates) the node with the exported observation memory
        and confirmation, so edge inference in this zone starts with the
        containment knowledge the previous zone accumulated.
        """
        tag: TagId = record["tag"]
        node = self.graph.get_or_create(tag, now)
        if record.get("recent_color") is not None and node.recent_color is None:
            node.recent_color = record["recent_color"]
            node.seen_at = record["seen_at"]
            self.graph.mark_dirty(node)
        confirmed = record.get("confirmed_parent")
        if confirmed is not None and node.confirmed_parent is None:
            node.confirmed_parent = confirmed
            node.confirmed_at = record.get("confirmed_at", now)
            node.confirmed_conflicts = record.get("confirmed_conflicts", 0)
            # confirmation state is a containment-decision input
            self.graph.mark_changed(node)

    def _retire_exited(self, now: int, messages: list[EventMessage]) -> list[TagId]:
        """Remove nodes of objects read at a proper exit channel (§IV-C)."""
        departed: list[TagId] = []
        for tag in sorted(self.updater.exiting):
            if tag not in self.graph:
                continue
            messages.extend(self.compressor.depart(tag, now))
            self.graph.remove_node(tag)
            self.estimates.pop(tag, None)
            self.dedup.forget(tag)
            departed.append(tag)
        return departed

    def _evict_stale(self, now: int) -> list[TagId]:
        """Evict objects unobserved for ``retention_epochs`` (opt-in).

        Pops only due candidates from the graph's expiry heap — cost is
        proportional to the number of candidates, never the graph size.  An
        object is evicted only when its stored location is already unknown
        and its compressor state holds no open interval, so nothing needs
        closing and the output stream is unaffected (unless the object
        reappears later, in which case it re-enters as brand new).
        Ineligible candidates are deferred a full retention period.
        """
        assert self._retention is not None
        cutoff = now - self._retention
        evicted: list[TagId] = []
        for node in self.graph.pop_stale(cutoff):
            tag = node.tag
            current = self.estimates.get(tag)
            state = self.compressor.state_of(tag)
            reported_gone = current is None or current.location == UNKNOWN_COLOR
            open_intervals = state is not None and (
                state.location is not None or state.containment is not None
            )
            if reported_gone and not open_intervals:
                self.graph.remove_node(tag)
                self.estimates.pop(tag, None)
                self.dedup.forget(tag)
                self.compressor.forget(tag)
                evicted.append(tag)
            else:
                self.graph.defer_expiry(node, now + self._retention)
        return evicted

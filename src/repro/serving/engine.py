"""The standing-query engine: subscriptions over a live index.

:class:`StandingQueryEngine` is the transport-free core of the serving
layer (the asyncio server in :mod:`repro.serving.server` is a thin shell
around it):

* it owns the **live index** — an incrementally maintained
  :class:`~repro.query.index.EventStreamIndex` extended once per epoch
  with the coordinator's merged output (level-2 streams are expanded
  through the streaming decompressor first, so patterns see explicit
  per-object histories);
* it keeps the **subscription registry**: each subscription pairs a
  stateful :class:`~repro.serving.patterns.Pattern` instance with a
  bounded delivery queue.  A slow consumer never stalls the epoch loop
  and never grows memory without bound — when a queue is full the oldest
  notification is dropped and a
  :data:`~repro.faults.warnings.WarningKind.SUBSCRIPTION_OVERFLOW`
  warning is recorded (at most one per subscription per epoch);
* it records **serving counters** (:class:`ServingStats`): epochs and
  messages published, notifications delivered/dropped, one-shot query
  count and a log₂-bucketed latency histogram.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.compression.decompress import StreamingLevel2Decompressor
from repro.events.messages import EventMessage
from repro.faults.warnings import Quarantine, WarningKind
from repro.query.index import EventStreamIndex
from repro.serving.patterns import Notification, Pattern


@dataclass
class ServingStats:
    """Observability counters for one serving session."""

    epochs_published: int = 0
    messages_published: int = 0
    notifications_delivered: int = 0
    notifications_dropped: int = 0
    subscriptions_opened: int = 0
    subscriptions_closed: int = 0
    queries_served: int = 0
    query_seconds: float = 0.0
    #: one-shot query latency histogram: bucket ``b`` counts queries with
    #: latency in ``[2^(b-1), 2^b)`` microseconds (bucket 0: < 1 µs)
    latency_buckets: Counter = field(default_factory=Counter)

    def observe_query(self, seconds: float) -> None:
        self.queries_served += 1
        self.query_seconds += seconds
        micros = seconds * 1e6
        bucket = 0
        while micros >= 1.0:
            micros /= 2.0
            bucket += 1
        self.latency_buckets[bucket] += 1

    @property
    def active_subscriptions(self) -> int:
        return self.subscriptions_opened - self.subscriptions_closed

    def latency_lines(self) -> list[str]:
        """Render the latency histogram (one line per non-empty bucket)."""
        lines = []
        for bucket in sorted(self.latency_buckets):
            upper = 2**bucket
            share = self.latency_buckets[bucket] / max(self.queries_served, 1)
            lines.append(
                f"< {upper:>8} µs  {self.latency_buckets[bucket]:>8}  {share:>6.1%}"
            )
        return lines

    def summary_lines(self) -> list[str]:
        """Human-readable block for the ``serve`` subcommand's shutdown."""
        mean_us = 1e6 * self.query_seconds / max(self.queries_served, 1)
        lines = [
            f"epochs published        {self.epochs_published} "
            f"({self.messages_published} event message(s))",
            f"subscriptions           {self.active_subscriptions} active / "
            f"{self.subscriptions_opened} opened",
            f"notifications           {self.notifications_delivered} delivered / "
            f"{self.notifications_dropped} dropped",
            f"one-shot queries        {self.queries_served} "
            f"(mean {mean_us:.1f} µs)",
        ]
        if self.latency_buckets:
            lines.append("query latency histogram:")
            lines.extend(f"  {line}" for line in self.latency_lines())
        return lines


class Subscription:
    """One standing query: a pattern plus its bounded delivery queue."""

    __slots__ = ("sub_id", "pattern", "queue", "max_queue", "delivered", "dropped")

    def __init__(self, sub_id: int, pattern: Pattern, max_queue: int) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.sub_id = sub_id
        self.pattern = pattern
        self.queue: deque[Notification] = deque()
        self.max_queue = max_queue
        self.delivered = 0
        self.dropped = 0

    def push(self, notifications: list[Notification]) -> int:
        """Enqueue, dropping the oldest on overflow; returns drops."""
        dropped = 0
        for note in notifications:
            if len(self.queue) >= self.max_queue:
                self.queue.popleft()
                dropped += 1
            self.queue.append(note)
        self.dropped += dropped
        return dropped

    def drain(self, limit: int | None = None) -> list[Notification]:
        """Remove and return up to ``limit`` queued notifications."""
        n = len(self.queue) if limit is None else min(limit, len(self.queue))
        out = [self.queue.popleft() for _ in range(n)]
        self.delivered += len(out)
        return out


class StandingQueryEngine:
    """Subscription registry + live index, fed one epoch at a time.

    Args:
        expand_level2: Expand the published stream through the streaming
            level-2 decompressor before indexing/evaluation, so patterns
            see explicit per-object location histories.  Use it whenever
            the pump's substrate runs compression level 2 (the default).
        quarantine: Destination for overflow warnings (a fresh
            :class:`~repro.faults.warnings.Quarantine` if omitted —
            coordinator pumps typically share theirs).
    """

    def __init__(
        self,
        expand_level2: bool = False,
        quarantine: Quarantine | None = None,
    ) -> None:
        self.index = EventStreamIndex()
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self.stats = ServingStats()
        self.last_epoch: int | None = None
        self._expander = StreamingLevel2Decompressor() if expand_level2 else None
        self._subscriptions: dict[int, Subscription] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------

    @property
    def subscriptions(self) -> dict[int, Subscription]:
        """Live subscriptions by id (read-only view by convention)."""
        return self._subscriptions

    def subscribe(self, pattern: Pattern, max_queue: int = 1024) -> Subscription:
        """Register a standing query; returns its subscription handle.

        The pattern is primed from the live index so threshold patterns
        count ongoing episodes from their true start, not from the
        subscription time.
        """
        sub = Subscription(self._next_id, pattern, max_queue)
        self._next_id += 1
        pattern.prime(self.index, self.last_epoch)
        self._subscriptions[sub.sub_id] = sub
        self.stats.subscriptions_opened += 1
        return sub

    def unsubscribe(self, sub_id: int) -> bool:
        """Drop a subscription; returns whether it existed."""
        existed = self._subscriptions.pop(sub_id, None) is not None
        if existed:
            self.stats.subscriptions_closed += 1
        return existed

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------

    def publish(self, epoch: int, messages: list[EventMessage]) -> int:
        """Apply one epoch's merged output; returns notifications queued.

        Extends the live index, evaluates every subscription's pattern
        against the (expanded) batch, and enqueues matches with
        drop-oldest backpressure.
        """
        if self._expander is not None:
            batch: list[EventMessage] = []
            for msg in messages:
                batch.extend(self._expander.feed(msg))
            batch.extend(self._expander.flush())
        else:
            batch = list(messages)
        self.index.extend(batch)
        self.last_epoch = epoch
        self.stats.epochs_published += 1
        self.stats.messages_published += len(batch)

        queued = 0
        for sub in self._subscriptions.values():
            notes = sub.pattern.evaluate(epoch, batch, self.index)
            if not notes:
                continue
            queued += len(notes)
            dropped = sub.push(notes)
            if dropped:
                self.stats.notifications_dropped += dropped
                self.quarantine.warn(
                    WarningKind.SUBSCRIPTION_OVERFLOW,
                    epoch,
                    detail=(
                        f"subscription {sub.sub_id} queue full "
                        f"({sub.max_queue}); dropped {dropped} oldest"
                    ),
                )
        return queued

    def drain(self, sub_id: int, limit: int | None = None) -> list[Notification]:
        """Consume queued notifications for one subscription."""
        sub = self._subscriptions.get(sub_id)
        if sub is None:
            return []
        out = sub.drain(limit)
        self.stats.notifications_delivered += len(out)
        return out

    # ------------------------------------------------------------------
    # one-shot queries
    # ------------------------------------------------------------------

    def timed_query(self, fn: Callable, *args):
        """Run one point query against the live index, recording latency."""
        start = time.perf_counter()
        try:
            return fn(*args)
        finally:
            self.stats.observe_query(time.perf_counter() - start)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Serving counters as a :mod:`repro.obs` snapshot.

        Derived from :class:`ServingStats` on demand (no double
        bookkeeping on the publish path); the latency histogram's log₂-µs
        buckets map directly onto the obs histogram's exponent keys.
        """
        s = self.stats

        def counter(name: str, value) -> dict:
            return {"name": name, "kind": "counter", "labels": {}, "value": value}

        def gauge(name: str, value) -> dict:
            return {"name": name, "kind": "gauge", "labels": {}, "value": value}

        series = [
            counter("spire_serving_epochs_published_total", s.epochs_published),
            counter("spire_serving_messages_published_total", s.messages_published),
            counter("spire_serving_notifications_delivered_total", s.notifications_delivered),
            counter("spire_serving_notifications_dropped_total", s.notifications_dropped),
            counter("spire_serving_subscriptions_opened_total", s.subscriptions_opened),
            counter("spire_serving_subscriptions_closed_total", s.subscriptions_closed),
            counter("spire_serving_queries_total", s.queries_served),
            gauge("spire_serving_active_subscriptions", s.active_subscriptions),
            gauge(
                "spire_serving_queued_notifications",
                sum(len(sub.queue) for sub in self._subscriptions.values()),
            ),
            {
                "name": "spire_serving_query_latency_microseconds",
                "kind": "histogram",
                "labels": {},
                "buckets": {str(b): n for b, n in sorted(s.latency_buckets.items())},
                "sum": s.query_seconds * 1e6,
                "count": s.queries_served,
            },
        ]
        # aggregate compiled-pattern (repro.sase) runtime counters across
        # subscriptions; duck-typed so the engine never imports repro.sase
        sase_totals = {
            "active_instances": 0,
            "partitions": 0,
            "matches": 0,
            "kills": 0,
            "prunes": 0,
            "compile_seconds": 0.0,
        }
        compiled_count = 0
        for sub in self._subscriptions.values():
            sase = getattr(sub.pattern, "sase_stats", None)
            if sase is None:
                continue
            compiled_count += 1
            for key in sase_totals:
                sase_totals[key] += sase.get(key, 0)
        series.extend(
            [
                gauge("spire_sase_compiled_patterns", compiled_count),
                gauge("spire_sase_active_instances", sase_totals["active_instances"]),
                gauge("spire_sase_partitions", sase_totals["partitions"]),
                counter("spire_sase_matches_total", sase_totals["matches"]),
                counter("spire_sase_kills_total", sase_totals["kills"]),
                counter("spire_sase_prunes_total", sase_totals["prunes"]),
                counter(
                    "spire_sase_compile_seconds_total", sase_totals["compile_seconds"]
                ),
            ]
        )
        help_text = {
            "spire_serving_epochs_published_total": "Epochs fed to the standing-query engine",
            "spire_serving_messages_published_total": "Expanded event messages published",
            "spire_serving_notifications_delivered_total": "Notifications drained to subscribers",
            "spire_serving_notifications_dropped_total": "Notifications dropped by bounded queues",
            "spire_serving_subscriptions_opened_total": "Subscriptions opened",
            "spire_serving_subscriptions_closed_total": "Subscriptions closed",
            "spire_serving_queries_total": "One-shot queries served",
            "spire_serving_active_subscriptions": "Currently active subscriptions",
            "spire_serving_queued_notifications": "Notifications waiting in subscription queues",
            "spire_serving_query_latency_microseconds": "One-shot query latency (log2-bucketed)",
            "spire_sase_compiled_patterns": "Active subscriptions running compiled patterns",
            "spire_sase_active_instances": "Live partial matches across compiled patterns",
            "spire_sase_partitions": "Active instance-stack partitions across compiled patterns",
            "spire_sase_matches_total": "Pattern matches emitted by compiled patterns",
            "spire_sase_kills_total": "Partial matches killed by negation edges",
            "spire_sase_prunes_total": "Partial matches pruned at window expiry",
            "spire_sase_compile_seconds_total": "Time spent compiling pattern source",
        }
        return {"series": series, "help": help_text}

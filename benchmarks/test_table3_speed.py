"""Table III — per-epoch update and inference cost vs. graph size (Expt 5).

Reproduces: the paper's table of graph-update cost, inference cost and
total cost per epoch as the number of live objects grows (the paper sweeps
~25k to ~175k using a pallet every 4 s).  Expected shape: per-epoch costs
comfortably below the 1 s epoch on average, growing with the node count.

Two cost views are reported per milestone:

* **avg/epoch** — averaged over all epochs (partial inference most epochs,
  complete inference on the LCM grid), the "can it keep up" number the
  paper reports;
* **complete epoch** — the cost of the expensive complete-inference epochs
  alone, the worst case that must still fit in an epoch.

This is a pure-Python re-implementation of a Java prototype, so absolute
times differ from the paper's, and the update/inference split differs too
(our Fig.-4 statistics pass costs about as much as inference; the paper
found inference dominant).  Milestones are scaled down by default
(SPIRE_BENCH_SCALE=paper raises them).
"""

import pytest

from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire

from benchmarks._shared import PAPER_SCALE, Table, get_sim, scale_config

MILESTONES = (
    [25_000, 55_000, 95_000, 135_000, 175_000] if PAPER_SCALE else [2_000, 4_000, 8_000, 12_000]
)
#: with a pallet every 2*cases epochs and nothing leaving the shelves, the
#: graph grows by ~cases*(items+1)+1 objects per pallet period
CASES_PER_PALLET = 5
GROWTH_PER_EPOCH = (1 + CASES_PER_PALLET * 21) / (2 * CASES_PER_PALLET)
DURATION = int(MILESTONES[-1] / GROWTH_PER_EPOCH) + 200


def run_experiment() -> list[dict]:
    sim = get_sim(scale_config(CASES_PER_PALLET, DURATION))
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    spire = Spire(deployment, InferenceParams(), compression_level=2)

    rows: list[dict] = []
    window = {"update": 0.0, "inference": 0.0, "epochs": 0,
              "complete_update": 0.0, "complete_inference": 0.0, "completes": 0}
    pending = list(MILESTONES)
    for readings in sim.stream:
        if not pending:
            break
        output = spire.process_epoch(readings)
        window["update"] += output.update_seconds
        window["inference"] += output.inference_seconds
        window["epochs"] += 1
        if output.complete:
            window["complete_update"] += output.update_seconds
            window["complete_inference"] += output.inference_seconds
            window["completes"] += 1
        nodes = spire.graph.node_count
        if nodes >= pending[0] and window["completes"] >= 2:
            rows.append(
                {
                    "nodes": nodes,
                    "edges": spire.graph.edge_count,
                    "avg_update": window["update"] / window["epochs"],
                    "avg_inference": window["inference"] / window["epochs"],
                    "complete_update": window["complete_update"] / window["completes"],
                    "complete_inference": window["complete_inference"] / window["completes"],
                }
            )
            pending.pop(0)
            window = {k: 0.0 for k in window}
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_update_and_inference_cost(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Table III: per-epoch costs (s) of graph update and inference",
        [
            "num. objects",
            "edges",
            "update (avg)",
            "inference (avg)",
            "total (avg)",
            "total (complete epoch)",
        ],
    )
    for row in rows:
        table.add(
            row["nodes"],
            row["edges"],
            row["avg_update"],
            row["avg_inference"],
            row["avg_update"] + row["avg_inference"],
            row["complete_update"] + row["complete_inference"],
        )
    table.show()

    assert len(rows) >= 3, "graph never reached enough milestones"
    # averaged per-epoch cost stays well inside the 1 s epoch at bench scale
    if not PAPER_SCALE:
        for row in rows:
            assert row["avg_update"] + row["avg_inference"] < 0.5
    # update and inference are the same order of magnitude (the paper found
    # inference dominant in its Java prototype; see the module docstring)
    for row in rows[1:]:
        ratio = row["avg_inference"] / max(row["avg_update"], 1e-9)
        assert 0.2 < ratio < 10.0
    # costs grow with the graph
    first, last = rows[0], rows[-1]
    assert (last["avg_update"] + last["avg_inference"]) > (
        first["avg_update"] + first["avg_inference"]
    )

"""Unit tests for ground-truth snapshot recording."""

import pytest

from repro.model.locations import Location, UNKNOWN_LOCATION
from repro.model.truth import GroundTruthRecorder
from repro.model.world import PhysicalWorld

from tests.conftest import case, item

SHELF = Location(0, "shelf")
BELT = Location(1, "belt")


@pytest.fixture
def world():
    w = PhysicalWorld()
    w.add_object(case(1), SHELF)
    w.add_object(item(1), SHELF)
    w.contain(item(1), case(1))
    return w


class TestCapture:
    def test_snapshot_contents(self, world):
        recorder = GroundTruthRecorder()
        snap = recorder.capture(world, epoch=5)
        assert snap.epoch == 5
        assert snap.location_of(case(1)) == SHELF
        assert snap.container_of(item(1)) == case(1)
        assert snap.container_of(case(1)) is None

    def test_absent_object_maps_to_unknown(self, world):
        recorder = GroundTruthRecorder()
        snap = recorder.capture(world, epoch=0)
        assert snap.location_of(item(99)) is UNKNOWN_LOCATION

    def test_snapshots_are_independent_of_later_mutations(self, world):
        recorder = GroundTruthRecorder()
        recorder.capture(world, epoch=0)
        world.uncontain(item(1))
        world.move(item(1), BELT)
        snap0 = recorder.snapshots[0]
        assert snap0.location_of(item(1)) == SHELF
        assert snap0.container_of(item(1)) == case(1)

    def test_iteration_and_len(self, world):
        recorder = GroundTruthRecorder()
        for epoch in range(3):
            recorder.capture(world, epoch)
        assert len(recorder) == 3
        assert [s.epoch for s in recorder] == [0, 1, 2]

    def test_at_epoch(self, world):
        recorder = GroundTruthRecorder()
        recorder.capture(world, epoch=7)
        assert recorder.at_epoch(7).epoch == 7
        with pytest.raises(KeyError):
            recorder.at_epoch(8)


class TestAnnotations:
    def test_vanished_keeps_first_epoch(self):
        recorder = GroundTruthRecorder()
        recorder.note_vanished(item(1), 10)
        recorder.note_vanished(item(1), 20)
        assert recorder.vanished[item(1)] == 10

    def test_exited(self):
        recorder = GroundTruthRecorder()
        recorder.note_exited(case(1), 42)
        assert recorder.exited == {case(1): 42}

    def test_tags_view(self, world):
        recorder = GroundTruthRecorder()
        snap = recorder.capture(world, epoch=0)
        assert set(snap.tags()) == {case(1), item(1)}

"""Unit tests for level-2 compression (§V-C), including the paper's Fig. 8."""

import pytest

from repro.compression.level2 import ContainmentCompressor
from repro.events.messages import EventKind
from repro.events.wellformed import check_well_formed
from repro.model.locations import UNKNOWN_COLOR

from tests.conftest import case, item, pallet

L1, L2, L3, L4 = 0, 1, 2, 3


@pytest.fixture
def compressor() -> ContainmentCompressor:
    return ContainmentCompressor()


def kinds(messages):
    return [m.kind for m in messages]


class TestFig8Example:
    """The paper's Fig. 8 walk-through, message for message."""

    def test_full_sequence(self, compressor):
        p, c1, c2 = pallet(1), case(1), case(2)

        # T1: P, C1, C2 appear at L1; C1 and C2 contained in P
        out = []
        out += compressor.observe(c1, L1, p, now=1)
        out += compressor.observe(c2, L1, p, now=1)
        out += compressor.observe(p, L1, None, now=1)
        assert [str(m) for m in out] == [
            "StartContainment(case:1, pallet:1, 1, inf)",
            "StartContainment(case:2, pallet:1, 1, inf)",
            "StartLocation(pallet:1, L0, 1, inf)",
        ]

        # T2: the group moves to L2 -> only P's location is updated
        out = []
        out += compressor.observe(c1, L2, p, now=2)
        out += compressor.observe(c2, L2, p, now=2)
        out += compressor.observe(p, L2, None, now=2)
        assert [str(m) for m in out] == [
            "EndLocation(pallet:1, L0, 1, 2)",
            "StartLocation(pallet:1, L1, 2, inf)",
        ]

        # T3: P and C1 move to L3; C2 stays at L2 and leaves the pallet
        out = []
        out += compressor.observe(c1, L3, p, now=3)
        out += compressor.observe(c2, L2, None, now=3)
        out += compressor.observe(p, L3, None, now=3)
        assert [str(m) for m in out] == [
            "EndContainment(case:2, pallet:1, 1, 3)",
            "StartLocation(case:2, L1, 3, inf)",
            "EndLocation(pallet:1, L1, 2, 3)",
            "StartLocation(pallet:1, L2, 3, inf)",
        ]

        # T4: C2 moves alone to L4
        out = []
        out += compressor.observe(c1, L3, p, now=4)
        out += compressor.observe(c2, L4, None, now=4)
        out += compressor.observe(p, L3, None, now=4)
        assert [str(m) for m in out] == [
            "EndLocation(case:2, L1, 3, 4)",
            "StartLocation(case:2, L3, 4, inf)",
        ]


class TestSuppression:
    def test_contained_object_location_never_emitted(self, compressor):
        compressor.observe(item(1), L1, case(1), now=0)
        compressor.observe(case(1), L1, None, now=0)
        out = []
        for now, loc in enumerate([L1, L2, L3], start=1):
            out += compressor.observe(item(1), loc, case(1), now=now)
        assert all(not m.kind.is_location for m in out)

    def test_uncontained_object_behaves_like_level1(self, compressor):
        out = compressor.observe(case(1), L1, None, now=0)
        assert kinds(out) == [EventKind.START_LOCATION]
        out = compressor.observe(case(1), L2, None, now=3)
        assert kinds(out) == [EventKind.END_LOCATION, EventKind.START_LOCATION]

    def test_pre_containment_interval_left_open(self, compressor):
        # the object had its own open interval before being contained; it
        # stays open (the decompressor advances it with the container)
        compressor.observe(case(1), L1, None, now=0)
        out = compressor.observe(case(1), L1, pallet(1), now=4)
        assert kinds(out) == [EventKind.START_CONTAINMENT]
        assert compressor.state_of(case(1)).location == (L1, 0)


class TestCatchUp:
    def test_uncontain_at_new_location_syncs(self, compressor):
        compressor.observe(case(1), L1, pallet(1), now=0)
        compressor.observe(pallet(1), L1, None, now=0)
        # group moved to L2 (suppressed for the case), then the case leaves
        compressor.observe(case(1), L2, pallet(1), now=2)
        compressor.observe(pallet(1), L2, None, now=2)
        out = compressor.observe(case(1), L2, None, now=5)
        assert kinds(out) == [EventKind.END_CONTAINMENT, EventKind.START_LOCATION]
        assert out[1].place == L2

    def test_uncontain_with_stale_open_interval(self, compressor):
        compressor.observe(case(1), L1, None, now=0)        # open at L1
        compressor.observe(case(1), L1, pallet(1), now=1)   # contained
        compressor.observe(case(1), L2, pallet(1), now=2)   # moves, suppressed
        out = compressor.observe(case(1), L2, None, now=3)  # leaves the pallet
        assert kinds(out) == [
            EventKind.END_CONTAINMENT,
            EventKind.END_LOCATION,
            EventKind.START_LOCATION,
        ]
        assert out[1].place == L1 and out[2].place == L2

    def test_uncontain_while_missing_reports_missing(self, compressor):
        compressor.observe(case(1), L1, pallet(1), now=0)
        out = compressor.observe(case(1), UNKNOWN_COLOR, None, now=4)
        assert kinds(out) == [EventKind.END_CONTAINMENT]
        # never had an external location nor a last place: silent on missing

    def test_uncontain_missing_with_history(self, compressor):
        compressor.observe(case(1), L1, None, now=0)
        compressor.observe(case(1), L1, pallet(1), now=1)
        out = compressor.observe(case(1), UNKNOWN_COLOR, None, now=4)
        assert kinds(out) == [
            EventKind.END_CONTAINMENT,
            EventKind.END_LOCATION,
            EventKind.MISSING,
        ]


class TestDepart:
    def test_depart_closes_open_state(self, compressor):
        compressor.observe(case(1), L1, None, now=0)
        compressor.observe(case(1), L1, pallet(1), now=1)
        out = compressor.depart(case(1), now=6)
        assert kinds(out) == [EventKind.END_CONTAINMENT, EventKind.END_LOCATION]


class TestOutputSize:
    def test_level2_never_larger_than_level1_for_stable_containment(self):
        from repro.compression.level1 import RangeCompressor

        l1, l2 = RangeCompressor(), ContainmentCompressor()
        msgs1, msgs2 = [], []
        locations = [L1, L1, L2, L2, L3, L3, L4]
        for now, loc in enumerate(locations):
            for compressor, sink in ((l1, msgs1), (l2, msgs2)):
                sink.extend(compressor.observe(pallet(1), loc, None, now))
                sink.extend(compressor.observe(case(1), loc, pallet(1), now))
                sink.extend(compressor.observe(item(1), loc, case(1), now))
        assert len(msgs2) < len(msgs1)
        check_well_formed(msgs1)
        check_well_formed(msgs2)

"""Unit tests for the well-formedness checker (§V-A)."""

import pytest

from repro.events.wellformed import WellFormednessError, check_well_formed, open_intervals
from repro.events.messages import (
    end_containment,
    end_location,
    missing,
    start_containment,
    start_location,
)

from tests.conftest import case, item, pallet


class TestValidStreams:
    def test_empty_stream(self):
        check_well_formed([])

    def test_matched_location_pair(self):
        check_well_formed(
            [start_location(item(1), 0, 1), end_location(item(1), 0, 1, 5)]
        )

    def test_stream_may_end_with_open_intervals(self):
        check_well_formed([start_location(item(1), 0, 1)])

    def test_containment_spanning_locations(self):
        # a containment pair may span multiple location pairs (§V-A)
        check_well_formed(
            [
                start_containment(case(1), pallet(1), 0),
                start_location(case(1), 0, 0),
                end_location(case(1), 0, 0, 3),
                start_location(case(1), 1, 3),
                end_location(case(1), 1, 3, 6),
                end_containment(case(1), pallet(1), 0, 6),
            ]
        )

    def test_location_spanning_containments(self):
        check_well_formed(
            [
                start_location(case(1), 0, 0),
                start_containment(case(1), pallet(1), 1),
                end_containment(case(1), pallet(1), 1, 2),
                start_containment(case(1), pallet(2), 3),
                end_containment(case(1), pallet(2), 3, 4),
                end_location(case(1), 0, 0, 5),
            ]
        )

    def test_missing_outside_location_interval(self):
        check_well_formed(
            [
                start_location(item(1), 0, 0),
                end_location(item(1), 0, 0, 4),
                missing(item(1), 0, 4),
                start_location(item(1), 1, 9),
            ]
        )

    def test_containment_encloses_missing(self):
        # "when an object is reported missing, the existing containment is
        # not ended" (§V-A)
        check_well_formed(
            [
                start_containment(item(1), case(1), 0),
                start_location(item(1), 0, 0),
                end_location(item(1), 0, 0, 5),
                missing(item(1), 0, 5),
                end_containment(item(1), case(1), 0, 9),
            ]
        )


class TestViolations:
    def test_double_start_location(self):
        with pytest.raises(WellFormednessError, match="already open"):
            check_well_formed(
                [start_location(item(1), 0, 0), start_location(item(1), 1, 2)]
            )

    def test_end_without_start(self):
        with pytest.raises(WellFormednessError, match="no open location"):
            check_well_formed([end_location(item(1), 0, 0, 2)])

    def test_end_with_mismatched_place(self):
        with pytest.raises(WellFormednessError, match="does not match"):
            check_well_formed(
                [start_location(item(1), 0, 0), end_location(item(1), 1, 0, 2)]
            )

    def test_end_with_mismatched_vs(self):
        with pytest.raises(WellFormednessError, match="does not match"):
            check_well_formed(
                [start_location(item(1), 0, 0), end_location(item(1), 0, 1, 2)]
            )

    def test_missing_inside_open_interval(self):
        with pytest.raises(WellFormednessError, match="Missing inside"):
            check_well_formed([start_location(item(1), 0, 0), missing(item(1), 0, 2)])

    def test_end_containment_without_start(self):
        with pytest.raises(WellFormednessError, match="no open containment"):
            check_well_formed([end_containment(item(1), case(1), 0, 2)])

    def test_two_simultaneous_containers(self):
        with pytest.raises(WellFormednessError, match="another container"):
            check_well_formed(
                [
                    start_containment(item(1), case(1), 0),
                    start_containment(item(1), case(2), 1),
                ]
            )

    def test_time_travel(self):
        with pytest.raises(WellFormednessError, match="back in time"):
            check_well_formed(
                [start_location(item(1), 0, 5), start_location(item(2), 0, 3)]
            )

    def test_streams_are_per_object(self):
        # different objects' intervals are independent
        check_well_formed(
            [start_location(item(1), 0, 0), start_location(item(2), 1, 0)]
        )


class TestOpenIntervals:
    def test_replay_reports_open_state(self):
        states = open_intervals(
            [
                start_location(item(1), 0, 0),
                start_containment(item(1), case(1), 0),
                start_location(item(2), 1, 1),
                end_location(item(2), 1, 1, 2),
            ]
        )
        assert states[item(1)].open_location == (0, 0)
        assert states[item(1)].open_containments == {case(1): 0}
        assert states[item(2)].open_location is None

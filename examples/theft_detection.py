"""Theft detection: finding objects that left the warehouse improperly.

The paper's motivating anomaly (§VI-B Expt 4): objects removed without an
exit reading — theft or misplacement.  SPIRE discovers them through decayed
belief: once an object misses enough expected readings, the "unknown"
location wins and a Missing event is emitted.

This example injects one removal every 2 minutes, runs SPIRE with level-1
compression (so Missing events of contained objects are visible directly),
and prints the per-object detection delay.

Usage:  python examples/theft_detection.py
"""

from repro import (
    Deployment,
    InferenceParams,
    SimulationConfig,
    Spire,
    WarehouseSimulator,
)
from repro.metrics.delay import detection_delays


def main() -> None:
    config = SimulationConfig(
        duration=1200,
        pallet_period=200,
        cases_per_pallet_min=3,
        cases_per_pallet_max=3,
        items_per_case=5,
        read_rate=0.9,
        shelf_read_period=15,
        num_shelves=2,
        shelving_time_mean=240,
        shelving_time_jitter=60,
        anomaly_period=120,      # one removal every 2 minutes
        seed=99,
    )
    sim = WarehouseSimulator(config).run()
    print(f"simulated {len(sim.stream)} epochs with {len(sim.removals)} removal events "
          f"({len(sim.truth.vanished)} objects vanished, contents included)")

    # theta controls how quickly the belief in continued presence decays;
    # the paper finds theta in [1, 2] a good balance of error vs. delay
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    spire = Spire(deployment, InferenceParams(theta=1.5), compression_level=1)

    messages = []
    for epoch_readings in sim.stream:
        messages.extend(spire.process_epoch(epoch_readings).messages)

    report = detection_delays(messages, sim.truth.vanished)
    print(f"\ndetected {len(report.delays)}/{len(sim.truth.vanished)} vanished objects "
          f"({report.detection_rate:.0%}); mean delay {report.mean_delay:.0f}s, "
          f"max {report.max_delay}s")

    print("\nper-event detail (first 10):")
    registry = sim.layout.registry
    for event in sim.removals[:10]:
        for tag in event.affected:
            vanish_epoch = sim.truth.vanished[tag]
            delay = report.delays.get(tag)
            status = f"detected after {delay}s" if delay is not None else "NOT detected"
            print(f"  t={vanish_epoch:5d}  {str(tag):10s} stolen -> {status}")

    if report.undetected:
        print(f"\nundetected: {sorted(str(t) for t in report.undetected)}")
        print("(objects stolen right before the simulation ended, or items whose")
        print(" confirmed containment keeps them pinned to a still-visible case —")
        print(" the adaptive-beta heuristic of §IV-A erodes such stale confirmations)")


if __name__ == "__main__":
    main()

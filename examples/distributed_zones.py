"""Distributed operation: three zones, one site-wide view.

Partitions the warehouse's readers into inbound / storage / outbound zones,
each running its own SPIRE substrate, with a coordinator handing objects
off as they migrate and merging the zones' compressed outputs — the
distributed deployment the paper lists as future work (§VIII).

Usage:  python examples/distributed_zones.py
"""

from repro import (
    SimulationConfig,
    SpireConfig,
    SpireSession,
    WarehouseSimulator,
    check_well_formed,
)


def main() -> None:
    config = SimulationConfig(
        duration=900,
        pallet_period=180,
        cases_per_pallet_min=3,
        cases_per_pallet_max=3,
        items_per_case=4,
        read_rate=0.9,
        shelf_read_period=15,
        num_shelves=2,
        shelving_time_mean=200,
        shelving_time_jitter=40,
        seed=33,
    )
    sim = WarehouseSimulator(config).run()

    session = SpireSession(SpireConfig.from_simulation(sim, zone_map={
        "inbound": ["entry-door", "receiving-belt"],
        "storage": ["shelf-1", "shelf-2"],
        "outbound": ["packaging-area", "exit-belt", "exit-door"],
    }))
    coordinator = session.coordinator
    zones = list(coordinator.zones.values())
    print(f"3 zones over {len(sim.layout.readers)} readers: "
          + ", ".join(f"{z.zone_id}({len(z.reader_ids)})" for z in zones))

    messages = []
    handoffs = 0
    for result in session.process(sim.stream):
        messages.extend(result.messages)
        handoffs += len(result.handoffs)

    check_well_formed(messages)
    print(f"\nprocessed {len(sim.stream)} epochs: {len(messages)} merged event "
          f"messages, {handoffs} zone handoffs, stream well-formed")

    # per-zone footprint: each zone only carries its own objects
    print("\nper-zone state at the end of the run:")
    for zone in zones:
        spire = coordinator.zones[zone.zone_id].spire
        print(f"  {zone.zone_id:9s} nodes={spire.graph.node_count:4d} "
              f"edges={spire.graph.edge_count:5d} "
              f"tracked={spire.tracked_objects:4d}")

    # the session still answers site-wide queries
    registry = sim.layout.registry
    sample = sorted(sim.truth.snapshots[-1].locations)[:5]
    print("\nsite-wide queries (owner zone in brackets):")
    for tag in sample:
        color = session.location_of(tag)
        name = registry.by_color(color).name if color >= 0 else "unknown"
        print(f"  {str(tag):10s} at {name:14s} [{session.owner_of(tag)}]")


if __name__ == "__main__":
    main()

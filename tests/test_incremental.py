"""Tests for the incremental dirty-set / decision-cache layer (DESIGN.md §8).

The load-bearing property is **exact equivalence**: with ``incremental=True``
the pipeline may reuse cached containment decisions and report dirty-set
sizes, but every emitted event message must be byte-identical to the
full-scan pipeline's — across clean runs, chaos-injected runs with reader
outages, and checkpoint round-trips.
"""

from __future__ import annotations

import io

import pytest

from repro.core.capture import ReaderInfo
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.graph import Graph
from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.faults import (
    DelayBatches,
    DropBatches,
    FaultInjector,
    ReaderHealthMonitor,
    ReaderOutage,
    ResilientStream,
)
from repro.model.locations import UNKNOWN_COLOR
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator

from tests.conftest import case, epoch_readings, item, make_deployment

DOCK = ReaderInfo(reader_id=0, color=0)
SHELF = ReaderInfo(reader_id=1, color=1, period=5)
DEPLOYMENT = make_deployment(DOCK, SHELF)


def _sim(seed: int, duration: int = 500) -> "WarehouseSimulator":
    config = SimulationConfig(
        duration=duration,
        pallet_period=120,
        cases_per_pallet_min=3,
        cases_per_pallet_max=3,
        items_per_case=5,
        read_rate=0.85,
        shelf_read_period=20,
        num_shelves=2,
        shelving_time_mean=150,
        shelving_time_jitter=40,
        seed=seed,
    )
    return WarehouseSimulator(config).run()


def _stream_pair(sim, epochs, health: bool):
    """Run incremental and full-scan pipelines over the same epochs."""
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    streams = []
    spires = []
    for incremental in (True, False):
        spire = Spire(
            deployment,
            InferenceParams(),
            compression_level=2,
            incremental=incremental,
            health=ReaderHealthMonitor(deployment.readers) if health else None,
        )
        messages = []
        for readings in epochs:
            messages.extend(str(m) for m in spire.process_epoch(readings).messages)
        streams.append(messages)
        spires.append(spire)
    return streams, spires


class TestEquivalence:
    """Incremental mode must be invisible in the output."""

    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_clean_run_byte_identical(self, seed):
        sim = _sim(seed)
        (inc, full), (spire_inc, spire_full) = _stream_pair(sim, sim.stream, health=False)
        assert inc == full
        assert spire_inc.inference.cache_hits > 0  # the cache actually engaged
        assert spire_inc.graph.node_count == spire_full.graph.node_count
        assert spire_inc.graph.edge_count == spire_full.graph.edge_count

    @pytest.mark.parametrize("seed", [5, 23])
    def test_chaos_run_byte_identical(self, seed):
        """Fixed-seed fault injection (outage + drops + delays) through the
        resilient front-end: the dirty-set path must reproduce the
        full-scan event stream exactly, including suppression windows."""
        sim = _sim(seed, duration=400)
        shelves = [r for r in sim.layout.readers if "shelf" in r.location.name]
        schedule = [
            ReaderOutage(reader_id=shelves[0].reader_id, start=100, duration=60),
            DropBatches(rate=0.03),
            DelayBatches(rate=0.05, max_delay=3),
        ]
        injector = FaultInjector(sim.stream, schedule, seed=seed)
        epochs = list(
            ResilientStream(
                injector,
                max_delay=3,
                known_readers=[r.reader_id for r in sim.layout.readers],
            )
        )
        (inc, full), _ = _stream_pair(sim, epochs, health=True)
        assert inc == full

    def test_same_process_runs_deterministic(self):
        """Two identical pipelines in one process emit identical streams
        (guards the tag-ordered candidate iteration; identity-hash order
        used to leak allocation addresses into tie-breaking)."""
        sim = _sim(seed=13, duration=300)
        deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
        streams = []
        for _ in range(2):
            spire = Spire(deployment, InferenceParams(), compression_level=2)
            messages = []
            for readings in sim.stream:
                messages.extend(str(m) for m in spire.process_epoch(readings).messages)
            streams.append(messages)
        assert streams[0] == streams[1]

    def test_checkpoint_roundtrip_preserves_incremental_state(self):
        sim = _sim(seed=7, duration=240)
        deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
        spire = Spire(deployment, InferenceParams(), incremental=True)
        epochs = list(sim.stream)
        for readings in epochs[:120]:
            spire.process_epoch(readings)
        buffer = io.BytesIO()
        save_checkpoint(spire, buffer)
        buffer.seek(0)
        restored = load_checkpoint(buffer)
        for readings in epochs[120:]:
            a = [str(m) for m in spire.process_epoch(readings).messages]
            b = [str(m) for m in restored.process_epoch(readings).messages]
            assert a == b


class TestDirtyTracking:
    def test_new_node_is_dirty(self):
        graph = Graph()
        graph.begin_epoch()
        node = graph.get_or_create(item(1), now=0)
        assert node in graph.dirty_nodes()
        assert graph.dirty_count == 1

    def test_unchanged_recolor_not_dirty(self):
        graph = Graph()
        graph.begin_epoch()
        node = graph.get_or_create(item(1), now=0)
        graph.set_color(node, 1, now=0)
        graph.finalize_epoch()
        # same color next epoch: no color-state change
        graph.begin_epoch()
        graph.set_color(node, 1, now=1)
        graph.finalize_epoch()
        assert node not in graph.dirty_nodes()

    def test_color_change_is_dirty(self):
        graph = Graph()
        graph.begin_epoch()
        node = graph.get_or_create(item(1), now=0)
        graph.set_color(node, 1, now=0)
        graph.finalize_epoch()
        graph.begin_epoch()
        graph.set_color(node, 2, now=1)
        assert node in graph.dirty_nodes()

    def test_lost_color_is_dirty(self):
        """A node colored last epoch but unobserved this epoch changed
        state (colored -> uncolored) and must enter the dirty set."""
        graph = Graph()
        graph.begin_epoch()
        node = graph.get_or_create(item(1), now=0)
        graph.set_color(node, 1, now=0)
        graph.finalize_epoch()
        graph.begin_epoch()
        graph.finalize_epoch()
        assert node in graph.dirty_nodes()

    def test_edge_change_bumps_child_version_only(self):
        graph = Graph()
        graph.begin_epoch()
        parent = graph.get_or_create(case(1), now=0)
        child = graph.get_or_create(item(1), now=0)
        v_parent, v_child = parent.version, child.version
        edge = graph.add_edge(parent, child, now=0)
        assert child.version == v_child + 1  # parent set is a decision input
        assert parent.version == v_parent  # child set only feeds node inference
        assert parent in graph.dirty_nodes()
        graph.remove_edge(edge)
        assert child.version == v_child + 2

    def test_history_value_change_bumps_version(self):
        graph = Graph()
        graph.begin_epoch()
        parent = graph.get_or_create(case(1), now=0)
        child = graph.get_or_create(item(1), now=0)
        edge = graph.add_edge(parent, child, now=0)
        v = child.version
        assert edge.push_history(True, size=4)  # filling: value changes
        graph.mark_changed(child)
        assert child.version == v + 1
        for _ in range(4):
            edge.push_history(True, size=4)
        # saturated all-ones: another co-location push changes nothing
        assert not edge.push_history(True, size=4)

    def test_pipeline_reports_dirty_nodes(self):
        spire = Spire(DEPLOYMENT)
        out = spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        assert out.dirty_nodes >= 2


class TestDecisionCache:
    def test_cache_hits_accumulate_on_stable_graph(self):
        spire = Spire(DEPLOYMENT, incremental=True)
        # saturate the edge history, then repeat identical epochs
        for epoch in range(40):
            spire.process_epoch(epoch_readings(epoch, {0: [case(1), item(1)]}))
        assert spire.inference.cache_hits > 0

    def test_full_scan_mode_never_hits(self):
        spire = Spire(DEPLOYMENT, incremental=False)
        for epoch in range(10):
            spire.process_epoch(epoch_readings(epoch, {0: [case(1), item(1)]}))
        assert spire.inference.cache_hits == 0


class TestExpiryHeap:
    def test_pop_stale_returns_only_expired(self):
        graph = Graph()
        graph.begin_epoch()
        old = graph.get_or_create(item(1), now=0)
        fresh = graph.get_or_create(item(2), now=50)
        stale = graph.pop_stale(cutoff=10)
        assert old in stale and fresh not in stale

    def test_refreshed_node_requeued_not_yielded(self):
        """A node re-observed since its heap entry was pushed is re-queued
        at its true last-seen time instead of being reported stale."""
        graph = Graph()
        graph.begin_epoch()
        node = graph.get_or_create(item(1), now=0)
        graph.set_color(node, 1, now=40)  # refreshes seen_at
        assert graph.pop_stale(cutoff=10) == []
        assert graph.pop_stale(cutoff=60) == [node]

    def test_defer_expiry_postpones(self):
        graph = Graph()
        graph.begin_epoch()
        node = graph.get_or_create(item(1), now=0)
        graph.defer_expiry(node, until=100)
        assert graph.pop_stale(cutoff=50) == []
        assert graph.pop_stale(cutoff=150) == [node]

    def test_removed_node_not_yielded(self):
        graph = Graph()
        graph.begin_epoch()
        node = graph.get_or_create(item(1), now=0)
        graph.remove_node(node.tag)
        assert graph.pop_stale(cutoff=10) == []


class TestRetentionEviction:
    def test_requires_positive_retention(self):
        with pytest.raises(ValueError, match="retention_epochs"):
            Spire(DEPLOYMENT, retention_epochs=0)

    def test_stale_unknown_object_evicted(self):
        spire = Spire(DEPLOYMENT, retention_epochs=30)
        spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        evicted = []
        for epoch in range(1, 200):
            out = spire.process_epoch(epoch_readings(epoch, {}))
            evicted.extend(out.evicted)
        # once decayed to unknown and past retention, both objects go
        assert set(evicted) == {case(1), item(1)}
        assert spire.graph.node_count == 0
        assert spire.location_of(item(1)) == UNKNOWN_COLOR

    def test_observed_object_retained(self):
        spire = Spire(DEPLOYMENT, retention_epochs=30)
        for epoch in range(120):
            out = spire.process_epoch(epoch_readings(epoch, {0: [case(1), item(1)]}))
            assert out.evicted == []
        assert spire.graph.node_count == 2

    def test_eviction_off_by_default(self):
        spire = Spire(DEPLOYMENT)
        spire.process_epoch(epoch_readings(0, {0: [case(1), item(1)]}))
        for epoch in range(1, 200):
            out = spire.process_epoch(epoch_readings(epoch, {}))
            assert out.evicted == []
        assert spire.graph.node_count == 2

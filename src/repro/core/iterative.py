"""Iterative inference across the graph (Sections IV-C and IV-D).

Inference starts from the colored nodes (observed objects) and sweeps
outwards in increasing distance ``d``: edge inference runs for nodes at
distance ``d``, then node inference assigns them a color, and the colors
and edge probabilities settled at distance ``d`` feed the inference at
``d + 1``.

*Complete* inference covers the whole graph (including nodes unreachable
from any colored node, whose belief simply decays toward "unknown");
*partial* inference visits only nodes within ``l`` hops of a colored node
and withholds "unknown" results, since those may merely reflect readers
that did not interrogate this epoch (§IV-D).

In **incremental** mode (DESIGN.md §8) the per-node containment decision —
edge inference, weak-parent pruning and the credibility floor — is cached
on the node and reused while the node's :attr:`~repro.core.graph.GraphNode.
version` is unchanged.  The decision's inputs are exactly the version's
bump sites (parent edge set, edge histories, confirmation state) and are
independent of epoch age, so a cache hit returns bit-identical values to a
recomputation; node inference (the location belief) depends on decay age
and this epoch's neighbour colors and therefore always runs fresh.
"""

from __future__ import annotations

from repro.core.edge_inference import infer_edges, prune_weak_parents
from repro.core.graph import UNKNOWN_COLOR, Graph, GraphNode
from repro.core.interpretation import Estimate, InterpretationResult, LocationSource
from repro.core.node_inference import infer_node
from repro.core.params import InferenceParams
from repro.model.objects import TagId


class IterativeInference:
    """Runs the iterative inference algorithm over a :class:`Graph`.

    ``color_periods`` maps location colors to reader interrogation periods;
    node inference measures its decay age in these units (see
    :mod:`repro.core.node_inference`).  ``incremental`` enables the cached
    containment decisions described in the module docstring; the visit
    schedule and every emitted estimate are identical either way.
    """

    def __init__(
        self,
        graph: Graph,
        params: InferenceParams,
        color_periods: dict[int, int] | None = None,
        incremental: bool = False,
    ) -> None:
        self.graph = graph
        self.params = params
        self.color_periods = color_periods or {}
        self.incremental = incremental
        #: locations whose readers are presumed dead this epoch (set by the
        #: pipeline from the reader-health monitor); unobserved objects last
        #: seen there stop decaying toward "unknown" — see
        #: :func:`repro.core.node_inference.infer_node`.
        self.suppressed_colors: frozenset[int] = frozenset()
        #: containment decisions served from cache / recomputed (cumulative;
        #: for diagnostics and tests)
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------

    def run(self, now: int, complete: bool) -> InterpretationResult:
        """One inference pass; ``complete`` selects complete vs partial mode."""
        result = InterpretationResult(epoch=now, complete=complete)
        effective_colors: dict[GraphNode, int] = {}
        visited: set[GraphNode] = set()

        # d = 0: observed objects — edge inference only.
        frontier = sorted(self.graph.colored_nodes(), key=lambda n: n.tag)
        for node in frontier:
            effective_colors[node] = node.color  # type: ignore[assignment]
            visited.add(node)
            result.add(self._estimate_colored(node))

        max_distance = None if complete else self.params.partial_hops
        distance = 0
        while frontier:
            distance += 1
            if max_distance is not None and distance > max_distance:
                break
            layer = self._next_layer(frontier, visited)
            frontier = self._infer_layer(layer, effective_colors, now, complete, result)

        if complete:
            # nodes unreachable from any colored node (e.g. vanished objects
            # whose candidate edges were all dropped) still need estimates
            remaining = sorted(
                (n for n in self.graph.nodes() if n not in visited),
                key=lambda n: n.tag,
            )
            self._infer_layer_nodes(remaining, effective_colors, now, complete, result, visited)

        return result

    # ------------------------------------------------------------------

    def _next_layer(
        self, frontier: list[GraphNode], visited: set[GraphNode]
    ) -> list[GraphNode]:
        """Unvisited neighbours of the current frontier, in tag order."""
        layer: dict[GraphNode, None] = {}
        for node in frontier:
            for edge in node.parents.values():
                neighbour = edge.parent
                if neighbour not in visited:
                    layer[neighbour] = None
            for edge in node.children.values():
                neighbour = edge.child
                if neighbour not in visited:
                    layer[neighbour] = None
        for node in layer:
            visited.add(node)
        return sorted(layer, key=lambda n: n.tag)

    def _infer_layer(
        self,
        layer: list[GraphNode],
        effective_colors: dict[GraphNode, int],
        now: int,
        complete: bool,
        result: InterpretationResult,
    ) -> list[GraphNode]:
        """Edge + node inference for one distance layer; returns the layer."""
        if not layer:
            return []
        # Edge inference first for the whole layer, then node inference with
        # colors fixed from strictly smaller distances (the beliefs of one
        # layer must not feed each other, §IV-C).
        beliefs = []
        for node in layer:
            container, container_prob = self._containment_of(node)
            belief = infer_node(
                node,
                effective_colors,
                now,
                self.params,
                self.color_periods,
                self.suppressed_colors,
            )
            beliefs.append((node, container, container_prob, belief))
        for node, container, container_prob, belief in beliefs:
            if belief.color != UNKNOWN_COLOR:
                effective_colors[node] = belief.color
            result.add(
                self._estimate_inferred(node, container, container_prob, belief, complete)
            )
        return layer

    def _infer_layer_nodes(
        self,
        nodes: list[GraphNode],
        effective_colors: dict[GraphNode, int],
        now: int,
        complete: bool,
        result: InterpretationResult,
        visited: set[GraphNode],
    ) -> None:
        """Inference for nodes disconnected from every colored node."""
        for node in nodes:
            visited.add(node)
            container, container_prob = self._containment_of(node)
            belief = infer_node(
                node,
                effective_colors,
                now,
                self.params,
                self.color_periods,
                self.suppressed_colors,
            )
            result.add(
                self._estimate_inferred(node, container, container_prob, belief, complete)
            )

    # ------------------------------------------------------------------

    def _containment_of(self, node: GraphNode) -> tuple[TagId | None, float]:
        """The node's containment decision: ``(container tag, probability)``.

        Runs edge inference, weak-parent pruning and the credibility floor,
        caching the outcome against the node's version.  A cache hit means
        no decision input changed since the last computation, so recomputing
        would reproduce the cached values bit for bit — including the prune
        outcome: every surviving parent edge either met the threshold or was
        exempt (argmax / confirmed), and unchanged inputs yield unchanged
        confidences.  The version is re-read *after* pruning because edge
        removal bumps it.
        """
        if self.incremental and node.decision_version == node.version:
            self.cache_hits += 1
            return node.decision_container, node.decision_prob
        self.cache_misses += 1
        best = infer_edges(node, self.params)
        for edge in prune_weak_parents(node, best, self.params):
            self.graph.remove_edge(edge)
        best = self._credible(best)
        if best is None:
            container, prob = None, 0.0
        else:
            container, prob = best.parent.tag, best.prob
        node.decision_container = container
        node.decision_prob = prob
        node.decision_version = node.version
        return container, prob

    def _estimate_colored(self, node: GraphNode) -> Estimate:
        container, container_prob = self._containment_of(node)
        return Estimate(
            tag=node.tag,
            location=node.color,  # type: ignore[arg-type]
            location_prob=1.0,
            source=LocationSource.OBSERVED,
            container=container,
            container_prob=container_prob,
        )

    def _estimate_inferred(
        self,
        node: GraphNode,
        container: TagId | None,
        container_prob: float,
        belief,
        complete: bool,
    ) -> Estimate:
        withheld = not complete and belief.color == UNKNOWN_COLOR
        return Estimate(
            tag=node.tag,
            location=belief.color,
            location_prob=belief.prob,
            source=LocationSource.WITHHELD if withheld else LocationSource.INFERRED,
            container=container,
            container_prob=container_prob,
        )

    def _credible(self, best):
        """Containment-confidence floor: a chosen edge whose unnormalised
        Eq. 2 confidence is below the pruning threshold is "unlikely to be
        the true containment" (§IV-C), so no container is reported.  The
        edge itself stays in the graph when it is confirmed or the argmax
        (see :func:`prune_weak_parents`), preserving future evidence.
        """
        threshold = self.params.prune_threshold
        if best is not None and threshold > 0.0 and best.confidence < threshold:
            return None
        return best

"""Unit tests for the raw reading stream."""

import pytest

from repro.readers.stream import RAW_READING_BYTES, EpochReadings, Reading, ReadingStream

from tests.conftest import case, epoch_readings, item


class TestEpochReadings:
    def test_add_and_count(self):
        readings = epoch_readings(3, {0: [item(1), item(2)], 1: [case(1)]})
        assert readings.reading_count == 3
        assert readings.raw_bytes == 3 * RAW_READING_BYTES

    def test_add_empty_list_is_noop(self):
        readings = EpochReadings(epoch=0)
        readings.add(0, [])
        assert not readings
        assert 0 not in readings.by_reader

    def test_flatten_assigns_sequential_seq(self):
        readings = epoch_readings(5, {1: [item(1)], 0: [item(2)]})
        flat = list(readings.readings())
        assert [r.seq for r in flat] == [0, 1]
        # readers iterated in id order
        assert flat[0].reader_id == 0 and flat[1].reader_id == 1
        assert all(r.timestamp == 5 for r in flat)

    def test_tags_seen(self):
        readings = epoch_readings(0, {0: [item(1)], 1: [item(1), case(1)]})
        assert readings.tags_seen() == {item(1), case(1)}

    def test_bool(self):
        assert not EpochReadings(epoch=0)
        assert epoch_readings(0, {0: [item(1)]})


class TestReading:
    def test_fields(self):
        r = Reading(item(1), reader_id=2, timestamp=9, seq=4)
        assert r.tag == item(1) and r.reader_id == 2 and r.timestamp == 9 and r.seq == 4


class TestReadingStream:
    def test_append_in_order(self):
        stream = ReadingStream()
        stream.append(EpochReadings(epoch=0))
        stream.append(EpochReadings(epoch=1))
        assert len(stream) == 2
        assert stream[1].epoch == 1

    def test_out_of_order_append_rejected(self):
        stream = ReadingStream()
        stream.append(EpochReadings(epoch=5))
        with pytest.raises(ValueError):
            stream.append(EpochReadings(epoch=5))
        with pytest.raises(ValueError):
            stream.append(EpochReadings(epoch=4))

    def test_totals(self):
        stream = ReadingStream(
            [
                epoch_readings(0, {0: [item(1)]}),
                epoch_readings(1, {0: [item(1), item(2)]}),
            ]
        )
        assert stream.total_readings == 3
        assert stream.raw_bytes == 3 * RAW_READING_BYTES

    def test_extend_from(self):
        stream = ReadingStream()
        stream.extend_from(EpochReadings(epoch=e) for e in range(3))
        assert [e.epoch for e in stream] == [0, 1, 2]

"""Fault injection, resilient ingestion, and reader-health degradation.

SPIRE is pitched as an always-on substrate between physical readers and
query processors (§I, §VII), but physical transports are not perfect:
readers die, batches are dropped, delayed, duplicated, and mis-attributed.
This package makes those failure modes first-class:

* :mod:`repro.faults.injector` — a seeded, schedulable fault injector that
  perturbs any reading stream (for chaos testing and the ``chaos`` CLI);
* :mod:`repro.faults.resilient` — the ingestion front-end that restores
  the pipeline's exactly-once, in-order, gap-free epoch contract from a
  faulty transport, quarantining what it cannot repair;
* :mod:`repro.faults.health` — a reader-health monitor whose *suppressed
  colors* make inference degrade gracefully while a reader is down;
* :mod:`repro.faults.warnings` — the structured warning/quarantine records
  every layer reports instead of raising.

Zone-level failover (checkpoint, ``fail_zone`` / ``recover_zone``, orphan
re-adoption) lives with the coordinator in :mod:`repro.distributed`.
"""

from repro.faults.health import ReaderHealthMonitor
from repro.faults.injector import (
    ALL_FAULT_KINDS,
    DelayBatches,
    DropBatches,
    DuplicateBatches,
    FaultInjector,
    ReaderOutage,
    UnknownReaderReadings,
    schedule_from_dict,
)
from repro.faults.network import (
    ALL_NET_FAULT_KINDS,
    NetDelay,
    NetDrop,
    NetDup,
    NetFaultProxy,
    NetPartition,
    WorkerCrash,
    split_net_schedule,
)
from repro.faults.resilient import ResilientStream
from repro.faults.warnings import IngestWarning, Quarantine, QuarantinedReading, WarningKind

__all__ = [
    "ALL_FAULT_KINDS",
    "ALL_NET_FAULT_KINDS",
    "DelayBatches",
    "DropBatches",
    "DuplicateBatches",
    "FaultInjector",
    "IngestWarning",
    "NetDelay",
    "NetDrop",
    "NetDup",
    "NetFaultProxy",
    "NetPartition",
    "Quarantine",
    "QuarantinedReading",
    "ReaderHealthMonitor",
    "ReaderOutage",
    "ResilientStream",
    "UnknownReaderReadings",
    "WarningKind",
    "WorkerCrash",
    "schedule_from_dict",
    "split_net_schedule",
]

"""Compression pipeline: level-1 vs. level-2 vs. SMURF, and decompression.

Runs the same trace through three output pipelines and compares the data
reduction each achieves, then decompresses the level-2 stream back to its
level-1 equivalent on demand — the front-end a query processor would use
(§V-C).

Usage:  python examples/compression_pipeline.py
"""

from repro import (
    Deployment,
    SimulationConfig,
    SmurfPipeline,
    Spire,
    WarehouseSimulator,
    decompress_stream,
)
from repro.events.messages import EVENT_MESSAGE_BYTES
from repro.metrics.sizing import compression_ratio, containment_only, location_only


def main() -> None:
    config = SimulationConfig(
        duration=1200,
        pallet_period=150,
        cases_per_pallet_min=4,
        cases_per_pallet_max=4,
        items_per_case=6,
        read_rate=0.9,
        shelf_read_period=30,
        num_shelves=2,
        shelving_time_mean=300,
        shelving_time_jitter=60,
        seed=7,
    )
    sim = WarehouseSimulator(config).run()
    raw = sim.stream.raw_bytes
    print(f"raw input: {sim.stream.total_readings} readings, {raw / 1e3:.0f} kB")

    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)

    streams = {}
    for label, level in (("SPIRE level-1", 1), ("SPIRE level-2", 2)):
        spire = Spire(deployment, compression_level=level)
        messages = []
        for epoch_readings in sim.stream:
            messages.extend(spire.process_epoch(epoch_readings).messages)
        streams[label] = messages

    smurf = SmurfPipeline(deployment)
    streams["SMURF + level-1"] = smurf.run(sim.stream)

    print(f"\n{'pipeline':18s} {'messages':>9s} {'kB':>7s} {'ratio':>7s} "
          f"{'location':>9s} {'containment':>12s}")
    for label, messages in streams.items():
        size = len(messages) * EVENT_MESSAGE_BYTES
        print(
            f"{label:18s} {len(messages):9d} {size / 1e3:7.1f} "
            f"{compression_ratio(messages, raw):7.1%} "
            f"{len(location_only(messages)):9d} {len(containment_only(messages)):12d}"
        )

    # On-demand decompression: expand the level-2 stream so every object's
    # location history is explicit again (what an event query processor
    # would consume).
    level2 = streams["SPIRE level-2"]
    expanded = decompress_stream(level2)
    print(f"\ndecompressed level-2: {len(level2)} -> {len(expanded)} messages "
          f"(contained objects' location histories restored)")

    # show one contained object's reconstructed history
    items = sorted({m.obj for m in expanded if m.obj.level == 1})
    if items:
        target = items[0]
        print(f"\nreconstructed history of {target}:")
        for message in expanded:
            if message.obj == target:
                print(f"  {message}")


if __name__ == "__main__":
    main()

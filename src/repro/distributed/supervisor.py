"""Coordinator-side supervision of remote zone workers.

The pipe transport (:mod:`repro.distributed.parallel`) gets failure
detection for free: a dead child breaks the pipe immediately and
``recv_bytes`` raises.  A TCP worker on another host offers none of that
— requests can time out, connections can drop and come back, a reply can
be lost after the worker applied the request.  This module supplies the
machinery that turns that hostile transport into the same blocking
``send_bytes`` / ``recv_bytes`` contract the coordinator already speaks:

* :class:`RetryPolicy` — per-request deadlines, bounded retries under
  exponential backoff with seeded jitter, lease parameters;
* :class:`RemoteWorker` — one supervised connection.  Requests are
  sequence-numbered and queued; on a timeout the connection is torn down,
  re-established, and **every** unanswered request is resent in order
  (go-back-N).  The worker daemon dedupes by sequence number and answers
  retried requests from its reply cache, so a retry is exactly-once in
  effect.  When retries exhaust, the worker is declared dead and
  :class:`WorkerDied` is raised — the coordinator fails its zones over to
  a survivor;
* :class:`WorkerSupervisor` — the pool view: heartbeat/lease tracking
  (``PING``/``PONG`` probes when a worker has been quiet past its lease),
  fast end-of-file detection between epochs, and the
  ``spire_remote_*`` counters/histogram.
"""

from __future__ import annotations

import random
import select
import socket
import time
from dataclasses import dataclass, field

from repro.distributed import wire


class RemoteError(RuntimeError):
    """Unrecoverable remote-transport failure (e.g. every worker died)."""


class WorkerDied(RemoteError):
    """One remote worker exhausted its retries (or its lease) and was
    declared dead.  Carries the handle so the coordinator can fail its
    zones over; the run continues on the survivors."""

    def __init__(self, worker: "RemoteWorker", reason: str) -> None:
        super().__init__(f"remote worker {worker.name} declared dead: {reason}")
        self.worker = worker
        self.reason = reason


@dataclass(frozen=True)
class RetryPolicy:
    """Deadlines, retries, backoff and lease parameters for one pool.

    Attributes:
        connect_timeout: Seconds allowed for TCP connect + HELLO.
        request_timeout: Per-attempt deadline waiting on a reply.
        max_retries: Resend attempts after the first try; when they
            exhaust the worker is declared dead.
        backoff_base: Sleep before the first retry (seconds); doubles
            each retry (``backoff_multiplier``) up to ``backoff_max``.
        jitter: Fraction of the backoff randomized away (+/-), from the
            supervisor's seeded RNG, so a pool of coordinators does not
            retry in lockstep.
        lease_interval: Seconds of silence after which a worker owes a
            heartbeat; the supervisor pings it at the next epoch boundary.
        max_missed_leases: Consecutive failed heartbeats before the
            worker is declared dead.
    """

    connect_timeout: float = 5.0
    request_timeout: float = 5.0
    max_retries: int = 4
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.2
    lease_interval: float = 2.0
    max_missed_leases: int = 3

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Jittered exponential backoff before retry ``attempt`` (1-based)."""
        raw = min(
            self.backoff_base * self.backoff_multiplier ** (attempt - 1),
            self.backoff_max,
        )
        if self.jitter <= 0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass
class SupervisorStats:
    """Transport-level counters for one remote run (all workers).

    Unlike the event stream these are *not* deterministic — retries and
    heartbeats depend on wall-clock timing — so they live next to, not
    inside, the coordinator's deterministic metric set.
    """

    requests: int = 0
    replies: int = 0
    retries: int = 0
    timeouts: int = 0
    reconnects: int = 0
    dup_replies: int = 0
    heartbeats: int = 0
    missed_leases: int = 0
    worker_deaths: int = 0

    def summary_lines(self) -> list[str]:
        return [
            f"requests / replies      {self.requests} / {self.replies}",
            f"timeouts / retries      {self.timeouts} / {self.retries}",
            f"reconnects              {self.reconnects}",
            f"duplicate replies       {self.dup_replies}",
            f"heartbeats (missed)     {self.heartbeats} ({self.missed_leases})",
            f"worker deaths           {self.worker_deaths}",
        ]


class RemoteWorker:
    """One supervised TCP connection to a worker daemon.

    Presents the blocking FIFO ``send_bytes`` / ``recv_bytes`` contract
    of the pipe-backed ``_Worker`` handle, with the retry machinery
    hidden underneath.  ``send_bytes`` enqueues the request (assigning
    the next sequence number) and pushes it onto the wire best-effort;
    ``recv_bytes`` blocks for the reply to the *oldest* unanswered
    request, driving timeouts, reconnects and go-back-N resends until it
    has the reply or the retry budget is spent.
    """

    def __init__(
        self,
        index: int,
        address: tuple[str, int],
        policy: RetryPolicy,
        rng: random.Random,
        stats: SupervisorStats,
        observe_rtt=None,
    ) -> None:
        self.index = index
        self.address = address
        self.policy = policy
        self.dead = False
        self.death_reason: str | None = None
        self.name = f"{address[0]}:{address[1]}"
        self.remote_name = ""
        self.remote_pid = 0
        self.missed_leases = 0
        self.last_activity = time.monotonic()
        self._rng = rng
        self._stats = stats
        self._observe_rtt = observe_rtt
        self._sock: socket.socket | None = None
        self._decoder = wire.FrameDecoder()
        self._pending: list[tuple[int, bytes]] = []  # FIFO of unanswered requests
        self._ready: dict[int, bytes] = {}  # out-of-order replies by seq
        self._next_seq = 1
        self._next_ping = 1
        self._last_pong = 0
        # the handshake gets the same retry budget as a request: on a
        # lossy path the HELLO (or its ACK) can vanish like any frame
        for attempt in range(1, policy.max_retries + 2):
            try:
                self._connect()
                break
            except (OSError, wire.WireError):
                self._teardown()
                if attempt > policy.max_retries:
                    raise
                stats.retries += 1
                time.sleep(policy.backoff(attempt, rng))

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self.dead

    def _connect(self) -> None:
        sock = socket.create_connection(self.address, timeout=self.policy.connect_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.policy.request_timeout)
        self._sock = sock
        self._decoder = wire.FrameDecoder()
        try:
            sock.sendall(wire.encode_frame(wire.encode_hello("coordinator")))
            body = self._await_raw_frame(sock, self.policy.connect_timeout)
            msg_type, _seq, payload = wire.decode_envelope(body)
            if msg_type != wire.MSG_HELLO_ACK:
                raise wire.WireError(f"expected HELLO_ACK, got type {msg_type}")
            self.remote_name, self.remote_pid, _zones = wire.decode_hello_ack(payload)
        except (OSError, wire.WireError):
            self._teardown()
            raise
        self.last_activity = time.monotonic()

    def _await_raw_frame(self, sock: socket.socket, timeout: float) -> bytes:
        """Block for exactly one frame during the handshake."""
        sock.settimeout(timeout)
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    raise wire.WireError("connection closed during handshake")
                frames = self._decoder.feed(chunk)
                if frames:
                    # handshake is strictly one frame; anything beyond it
                    # would be a protocol violation from the daemon
                    if len(frames) > 1:
                        raise wire.WireError("unexpected frames during handshake")
                    return frames[0]
        finally:
            sock.settimeout(self.policy.request_timeout)

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._decoder = wire.FrameDecoder()

    def _reconnect_and_resend(self) -> None:
        """Re-establish the connection and resend every pending request
        in order (go-back-N).  The daemon dedupes by sequence number."""
        self._teardown()
        self._connect()
        self._stats.reconnects += 1
        sock = self._sock
        assert sock is not None
        for seq, payload in self._pending:
            sock.sendall(wire.encode_frame(wire.encode_request(seq, payload)))

    def _declare_dead(self, reason: str) -> WorkerDied:
        self.dead = True
        self.death_reason = reason
        self._teardown()
        self._pending.clear()
        self._ready.clear()
        self._stats.worker_deaths += 1
        return WorkerDied(self, reason)

    # ------------------------------------------------------------------
    # the _Worker contract
    # ------------------------------------------------------------------

    def send_bytes(self, payload: bytes) -> None:
        """Queue one request and push it onto the wire best-effort.

        Wire errors are swallowed here: the recv path owns retries, so a
        send onto a broken connection simply leaves the request pending
        for the reconnect-and-resend cycle to deliver.
        """
        if self.dead:
            raise WorkerDied(self, self.death_reason or "already dead")
        seq = self._next_seq
        self._next_seq += 1
        self._pending.append((seq, payload))
        self._stats.requests += 1
        if self._sock is not None:
            try:
                self._sock.sendall(wire.encode_frame(wire.encode_request(seq, payload)))
            except OSError:
                self._teardown()

    def recv_bytes(self) -> bytes:
        """Block for the reply to the oldest unanswered request."""
        if self.dead:
            raise WorkerDied(self, self.death_reason or "already dead")
        if not self._pending:
            raise RemoteError(f"recv_bytes on {self.name} with no request pending")
        head_seq = self._pending[0][0]
        started = time.monotonic()
        attempt = 0
        while True:
            if head_seq in self._ready:
                self._pending.pop(0)
                self._stats.replies += 1
                self.missed_leases = 0
                if self._observe_rtt is not None:
                    self._observe_rtt(time.monotonic() - started)
                return self._ready.pop(head_seq)
            try:
                if self._sock is None:
                    self._reconnect_and_resend()
                chunk = self._sock.recv(65536)
                if not chunk:
                    raise OSError("connection closed by worker")
                self.last_activity = time.monotonic()
                for frame in self._decoder.feed(chunk):
                    self._on_frame(frame)
            except (socket.timeout, TimeoutError, OSError, wire.WireError) as exc:
                self._stats.timeouts += 1
                attempt += 1
                if attempt > self.policy.max_retries:
                    raise self._declare_dead(
                        f"no reply to request #{head_seq} after "
                        f"{attempt} attempt(s): {exc!r}"
                    ) from exc
                self._stats.retries += 1
                time.sleep(self.policy.backoff(attempt, self._rng))
                self._teardown()
                try:
                    self._reconnect_and_resend()
                except (OSError, wire.WireError):
                    self._teardown()  # next loop iteration retries again

    def _on_frame(self, data: bytes) -> None:
        msg_type, seq, body = wire.decode_envelope(data)
        if msg_type == wire.MSG_REPLY:
            if any(seq == pending_seq for pending_seq, _ in self._pending):
                self._ready[seq] = body
            else:
                self._stats.dup_replies += 1
        elif msg_type == wire.MSG_PONG:
            self._last_pong = max(self._last_pong, seq)
        # anything else mid-stream is daemon noise; ignore

    # ------------------------------------------------------------------
    # supervision probes
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        """One heartbeat probe; True iff the matching PONG came back.

        Only issued between requests (the pending queue is empty), so a
        PONG is the only frame that can legitimately arrive.
        """
        if self.dead or self._pending:
            return not self.dead
        expect = self._next_ping
        self._next_ping += 1
        try:
            if self._sock is None:
                self._reconnect_and_resend()
            self._sock.sendall(wire.encode_frame(wire.encode_ping(expect)))
            deadline = time.monotonic() + self.policy.request_timeout
            while self._last_pong < expect:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._sock.settimeout(remaining)
                try:
                    chunk = self._sock.recv(65536)
                finally:
                    self._sock.settimeout(self.policy.request_timeout)
                if not chunk:
                    self._teardown()
                    return False
                for frame in self._decoder.feed(chunk):
                    self._on_frame(frame)
            self.last_activity = time.monotonic()
            return True
        except (OSError, wire.WireError):
            self._teardown()
            return False

    def eof_probe(self) -> bool:
        """Non-blocking death check: True iff the daemon hung up and a
        reconnect attempt failed.  Cheap enough to run every epoch."""
        if self.dead:
            return True
        if self._sock is None:
            return not self._try_reconnect()
        readable, _, _ = select.select([self._sock], [], [], 0)
        if not readable:
            return False
        try:
            chunk = self._sock.recv(65536)
        except OSError:
            chunk = b""
        if chunk:
            self.last_activity = time.monotonic()
            for frame in self._decoder.feed(chunk):
                self._on_frame(frame)
            return False
        self._teardown()
        return not self._try_reconnect()

    def _try_reconnect(self) -> bool:
        try:
            self._reconnect_and_resend()
            return True
        except (OSError, wire.WireError):
            self._teardown()
            return False

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Best-effort graceful daemon shutdown (MSG_STOP, await OK)."""
        if self.dead or self._sock is None:
            return
        try:
            self.send_bytes(wire.encode_stop())
            wire.expect_ok(self.recv_bytes())
        except (RemoteError, OSError, wire.WireError):
            pass

    def kill(self, warn=None) -> None:
        """Drop the connection (the daemon itself is not ours to reap)."""
        self._teardown()
        self._pending.clear()
        self._ready.clear()


class WorkerSupervisor:
    """Pool-level supervision: construction, heartbeats, telemetry."""

    def __init__(
        self,
        addresses: list[tuple[str, int]],
        policy: RetryPolicy,
        seed: int = 0,
        metrics=None,
    ) -> None:
        self.policy = policy
        self.stats = SupervisorStats()
        self._rng = random.Random(seed)
        self._observe_rtt = None
        self._metrics = metrics if metrics is not None and metrics.enabled else None
        if self._metrics is not None:
            self._m_requests = self._metrics.counter(
                "spire_remote_requests_total", "Requests sent to remote workers"
            )
            self._m_retries = self._metrics.counter(
                "spire_remote_retries_total", "Remote request retries (go-back-N resends)"
            )
            self._m_timeouts = self._metrics.counter(
                "spire_remote_timeouts_total", "Remote request attempt timeouts"
            )
            self._m_heartbeats = self._metrics.counter(
                "spire_remote_heartbeats_total", "Heartbeat probes sent"
            )
            self._m_missed = self._metrics.counter(
                "spire_remote_missed_leases_total", "Heartbeat probes that went unanswered"
            )
            self._m_deaths = self._metrics.counter(
                "spire_remote_worker_deaths_total", "Remote workers declared dead"
            )
            self._m_workers = self._metrics.gauge(
                "spire_remote_workers", "Remote workers currently alive"
            )
            rtt = self._metrics.histogram(
                "spire_remote_rtt_seconds", "Remote request round-trip time"
            )
            self._observe_rtt = rtt.observe
        self.workers = [
            RemoteWorker(i, addr, policy, self._rng, self.stats, self._observe_rtt)
            for i, addr in enumerate(addresses)
        ]
        self._sync_gauges()

    def _sync_gauges(self) -> None:
        """Mirror the cumulative stats into the registry (counters are
        advanced by delta — the stats struct is the source of truth)."""
        if self._metrics is None:
            return
        self._m_workers.set(sum(1 for w in self.workers if w.alive))
        for counter, total in (
            (self._m_requests, self.stats.requests),
            (self._m_retries, self.stats.retries),
            (self._m_timeouts, self.stats.timeouts),
            (self._m_heartbeats, self.stats.heartbeats),
            (self._m_missed, self.stats.missed_leases),
            (self._m_deaths, self.stats.worker_deaths),
        ):
            if total > counter.value:
                counter.inc(total - counter.value)

    def alive_workers(self) -> list[RemoteWorker]:
        return [w for w in self.workers if w.alive]

    def check_leases(self) -> list[RemoteWorker]:
        """Between-epoch supervision pass; returns newly dead workers.

        Two probes per worker: a zero-cost EOF check (catches a daemon
        that crashed and closed its socket), and — once the worker has
        been silent past its lease — a PING with the request deadline.
        ``max_missed_leases`` consecutive failed pings declare it dead.
        """
        newly_dead: list[RemoteWorker] = []
        now = time.monotonic()
        for worker in self.workers:
            if worker.dead:
                continue
            if worker.eof_probe():
                if not worker.dead:
                    worker._declare_dead("connection closed and reconnect refused")
                newly_dead.append(worker)
                continue
            if now - worker.last_activity < self.policy.lease_interval:
                continue
            self.stats.heartbeats += 1
            if worker.ping():
                worker.missed_leases = 0
                continue
            worker.missed_leases += 1
            self.stats.missed_leases += 1
            if worker.missed_leases >= self.policy.max_missed_leases:
                worker._declare_dead(
                    f"{worker.missed_leases} consecutive missed lease(s)"
                )
                newly_dead.append(worker)
        self._sync_gauges()
        return newly_dead

    def close(self, stop_workers: bool) -> None:
        for worker in self.workers:
            if stop_workers:
                worker.stop()
            worker.kill()
        self._sync_gauges()

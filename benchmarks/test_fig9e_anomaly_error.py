"""Fig. 9(e) — inference error vs. theta under anomalies (Expt 4).

Reproduces: location error rate as theta varies, on a trace with
unexpected removals (theft/misplacement) injected every 100 s.  Expected
shape: same trends as Fig. 9(c) — steep decline from the theta -> 0
maximum, favourable plateau for theta in [1, 2] — confirming those theta
values also serve anomaly detection.
"""

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy

from benchmarks._shared import PAPER_SCALE, Table, accuracy_config, get_spire

THETAS = [0.05, 0.5, 1.0, 1.25, 1.5, 2.0, 3.0]
SHELF_PERIODS = [10, 60]
ANOMALY_PERIOD = 100
POLICIES = (ScoringPolicy.ALL, ScoringPolicy.HARD_ONLY)


def run_experiment() -> dict:
    curves: dict = {}
    for period in SHELF_PERIODS:
        config = accuracy_config(
            shelf_read_period=period, anomaly_period=ANOMALY_PERIOD
        )
        curves[period] = {}
        for theta in THETAS:
            report = get_spire(
                config, params=InferenceParams(theta=theta), policies=POLICIES
            )
            curves[period][theta] = {
                policy: report.accuracy[policy].location_error_rate
                for policy in POLICIES
            }
    return curves


@pytest.mark.benchmark(group="fig9e")
def test_fig9e_anomaly_error_vs_theta(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for policy in POLICIES:
        table = Table(
            f"Fig. 9(e): location error vs. theta, removals every "
            f"{ANOMALY_PERIOD}s  [{policy.value} population]",
            ["shelf period (s)"] + [f"t={t}" for t in THETAS],
        )
        for period in SHELF_PERIODS:
            table.add(period, *(curves[period][t][policy] for t in THETAS))
        table.show()

    # Same qualitative trends as Fig. 9(c)
    for period in SHELF_PERIODS:
        hard = {t: curves[period][t][ScoringPolicy.HARD_ONLY] for t in THETAS}
        assert hard[0.05] > hard[1.25]
        mid_best = min(hard[t] for t in (1.0, 1.25, 1.5, 2.0))
        assert mid_best <= hard[0.05]

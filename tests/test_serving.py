"""Unit tests for the serving layer: patterns, engine, wire protocol.

The live-index property (incremental extension == fresh batch build after
every epoch, across chaos seeds) and the asyncio end-to-end paths live in
``test_serving_e2e.py``; this module covers the transport-free pieces.
"""

from __future__ import annotations

import pytest

from repro.events.messages import (
    end_containment,
    end_location,
    missing,
    start_containment,
    start_location,
)
from repro.faults.warnings import Quarantine, WarningKind
from repro.serving import protocol
from repro.serving.engine import ServingStats, StandingQueryEngine, Subscription
from repro.serving.patterns import (
    PATTERN_DWELL,
    PATTERN_LEFT_WITHOUT_CONTAINER,
    PATTERN_MISSING,
    PATTERN_OBJECT,
    PATTERN_PLACE,
    PATTERN_TAIL,
    DwellExceeded,
    LeftWithoutContainer,
    MissingOverdue,
    Notification,
    ObjectWatch,
    PatternSpec,
    PlaceWatch,
    Tail,
    pattern_from_spec,
)

from tests.conftest import case, item

L1, L2, L3 = 0, 1, 2


def _publish(engine, epoch, messages):
    return engine.publish(epoch, messages)


class TestSimplePatterns:
    def test_tail_forwards_everything(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(Tail())
        _publish(engine, 0, [start_location(item(1), L1, 0),
                             start_location(case(1), L1, 0)])
        notes = engine.drain(sub.sub_id)
        assert len(notes) == 2
        assert all(n.kind == "event" for n in notes)

    def test_tail_place_filter(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(Tail(place=L2))
        _publish(engine, 0, [start_location(item(1), L1, 0)])
        assert engine.drain(sub.sub_id) == []
        _publish(engine, 1, [end_location(item(1), L1, 0, 1),
                             start_location(item(1), L2, 1)])
        notes = engine.drain(sub.sub_id)
        assert [n.place for n in notes] == [L2]

    def test_object_watch_includes_containment(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(ObjectWatch(obj=case(1)))
        _publish(engine, 0, [start_location(item(1), L1, 0),
                             start_location(case(1), L1, 0),
                             start_containment(item(1), case(1), 0)])
        notes = engine.drain(sub.sub_id)
        # the case's own location event + the containment edge it anchors
        assert len(notes) == 2
        assert all(n.obj == case(1) or n.container == case(1) for n in notes)

    def test_place_watch_ignores_containment(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(PlaceWatch(place=L1))
        _publish(engine, 0, [start_location(item(1), L1, 0),
                             start_containment(item(1), case(1), 0)])
        notes = engine.drain(sub.sub_id)
        assert len(notes) == 1
        assert notes[0].kind == "place_event"


class TestThresholdPatterns:
    def test_dwell_fires_once_per_stay(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(DwellExceeded(place=L1, k=3))
        _publish(engine, 0, [start_location(item(1), L1, 0)])
        _publish(engine, 1, [])
        _publish(engine, 2, [])
        assert engine.drain(sub.sub_id) == []
        _publish(engine, 3, [])
        notes = engine.drain(sub.sub_id)
        assert len(notes) == 1
        assert notes[0].kind == "dwell_exceeded"
        assert notes[0].value == 3
        # no re-fire while the stay continues
        _publish(engine, 4, [])
        assert engine.drain(sub.sub_id) == []
        # a new stay starts a new episode
        _publish(engine, 5, [end_location(item(1), L1, 0, 5)])
        _publish(engine, 6, [start_location(item(1), L1, 6)])
        _publish(engine, 9, [])
        notes = engine.drain(sub.sub_id)
        assert len(notes) == 1 and notes[0].value == 3

    def test_dwell_primed_from_live_index(self):
        engine = StandingQueryEngine()
        _publish(engine, 0, [start_location(item(1), L1, 0)])
        _publish(engine, 1, [])
        # subscribe mid-stay: the clock counts from epoch 0, not from now
        sub = engine.subscribe(DwellExceeded(place=L1, k=3))
        _publish(engine, 2, [])
        assert engine.drain(sub.sub_id) == []
        _publish(engine, 3, [])
        notes = engine.drain(sub.sub_id)
        assert len(notes) == 1 and notes[0].value == 3

    def test_missing_overdue(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(MissingOverdue(k=2))
        _publish(engine, 0, [start_location(item(1), L1, 0)])
        _publish(engine, 4, [end_location(item(1), L1, 0, 4),
                             missing(item(1), L1, 4)])
        _publish(engine, 5, [])
        assert engine.drain(sub.sub_id) == []
        _publish(engine, 6, [])
        notes = engine.drain(sub.sub_id)
        assert len(notes) == 1
        assert notes[0].kind == "missing_overdue"
        assert notes[0].place == L1

    def test_missing_cancelled_by_relocation(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(MissingOverdue(k=3))
        _publish(engine, 0, [start_location(item(1), L1, 0)])
        _publish(engine, 2, [end_location(item(1), L1, 0, 2),
                             missing(item(1), L1, 2)])
        _publish(engine, 3, [start_location(item(1), L2, 3)])
        _publish(engine, 10, [])
        assert engine.drain(sub.sub_id) == []


class TestContainmentAnomaly:
    def _setup(self, engine):
        _publish(engine, 0, [
            start_location(item(1), L1, 0),
            start_location(case(1), L1, 0),
            start_containment(item(1), case(1), 0),
        ])

    def test_item_leaves_without_case(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(LeftWithoutContainer(place=L1))
        self._setup(engine)
        _publish(engine, 5, [
            end_containment(item(1), case(1), 0, 5),
            end_location(item(1), L1, 0, 5),
            start_location(item(1), L2, 5),
        ])
        notes = engine.drain(sub.sub_id)
        assert len(notes) == 1
        note = notes[0]
        assert note.kind == "left_without_container"
        assert note.obj == item(1)
        assert note.container == case(1)
        assert note.place == L1

    def test_moving_with_case_is_not_anomalous(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(LeftWithoutContainer(place=L1))
        self._setup(engine)
        _publish(engine, 5, [
            end_location(item(1), L1, 0, 5),
            start_location(item(1), L2, 5),
            end_location(case(1), L1, 0, 5),
            start_location(case(1), L2, 5),
        ])
        assert engine.drain(sub.sub_id) == []

    def test_uncontained_departure_is_not_anomalous(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(LeftWithoutContainer(place=L1))
        _publish(engine, 0, [start_location(item(2), L1, 0)])
        _publish(engine, 5, [end_location(item(2), L1, 0, 5),
                             start_location(item(2), L2, 5)])
        assert engine.drain(sub.sub_id) == []

    def test_missing_departure_counts(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(LeftWithoutContainer(place=L1))
        self._setup(engine)
        _publish(engine, 5, [
            end_containment(item(1), case(1), 0, 5),
            end_location(item(1), L1, 0, 5),
            missing(item(1), L1, 5),
        ])
        notes = engine.drain(sub.sub_id)
        assert len(notes) == 1 and notes[0].container == case(1)


class TestEngine:
    def test_backpressure_drops_oldest_and_warns(self):
        quarantine = Quarantine()
        engine = StandingQueryEngine(quarantine=quarantine)
        sub = engine.subscribe(Tail(), max_queue=3)
        batch = [start_location(item(n), L1, 0) for n in range(1, 6)]
        _publish(engine, 0, batch)
        assert len(sub.queue) == 3
        # oldest dropped: the survivors are the 3 most recent events
        notes = engine.drain(sub.sub_id)
        assert [n.obj for n in notes] == [item(3), item(4), item(5)]
        assert engine.stats.notifications_dropped == 2
        assert quarantine.counts().get(WarningKind.SUBSCRIPTION_OVERFLOW) == 1

    def test_unsubscribe_stops_delivery(self):
        engine = StandingQueryEngine()
        sub = engine.subscribe(Tail())
        assert engine.unsubscribe(sub.sub_id) is True
        assert engine.unsubscribe(sub.sub_id) is False
        _publish(engine, 0, [start_location(item(1), L1, 0)])
        assert engine.drain(sub.sub_id) == []
        assert engine.stats.active_subscriptions == 0

    def test_level2_expansion_feeds_patterns(self):
        # a level-2 stream moves contained objects implicitly (only the
        # container's move is emitted); with expansion on, an ObjectWatch
        # on the contained item still sees its moves
        from repro.compression.level2 import ContainmentCompressor

        compressor = ContainmentCompressor()
        epoch0 = []
        epoch0 += compressor.observe(item(1), L1, case(1), now=0)
        epoch0 += compressor.observe(case(1), L1, None, now=0)
        epoch5 = []
        epoch5 += compressor.observe(item(1), L2, case(1), now=5)
        epoch5 += compressor.observe(case(1), L2, None, now=5)

        engine = StandingQueryEngine(expand_level2=True)
        sub = engine.subscribe(ObjectWatch(obj=item(1)))
        _publish(engine, 0, epoch0)
        engine.drain(sub.sub_id)
        _publish(engine, 5, epoch5)
        notes = engine.drain(sub.sub_id)
        assert any(n.place == L2 for n in notes)
        assert engine.index.location_of(item(1), 6) == L2

    def test_stats_latency_histogram(self):
        stats = ServingStats()
        stats.observe_query(0.0000005)   # < 1 µs -> bucket 0
        stats.observe_query(0.003)       # ~3 ms
        assert stats.queries_served == 2
        assert stats.latency_buckets[0] == 1
        assert sum(stats.latency_buckets.values()) == 2
        assert len(stats.summary_lines()) >= 4

    def test_subscription_rejects_bad_queue(self):
        with pytest.raises(ValueError):
            Subscription(1, Tail(), max_queue=0)


class TestPatternSpecs:
    @pytest.mark.parametrize("spec", [
        PatternSpec(PATTERN_TAIL, place=L1),
        PatternSpec(PATTERN_OBJECT, obj=item(1)),
        PatternSpec(PATTERN_PLACE, place=L2),
        PatternSpec(PATTERN_DWELL, place=L1, k=5),
        PatternSpec(PATTERN_MISSING, k=3),
        PatternSpec(PATTERN_LEFT_WITHOUT_CONTAINER, place=L1),
    ])
    def test_spec_round_trip(self, spec):
        assert pattern_from_spec(spec).spec() == spec

    @pytest.mark.parametrize("spec", [
        PatternSpec(PATTERN_OBJECT),                 # object watch needs obj
        PatternSpec(PATTERN_PLACE),                  # place watch needs place
        PatternSpec(PATTERN_DWELL, place=L1, k=0),   # k must be >= 1
        PatternSpec(PATTERN_MISSING, k=0),
        PatternSpec(PATTERN_LEFT_WITHOUT_CONTAINER),
        PatternSpec(99),
    ])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            pattern_from_spec(spec)


class TestProtocol:
    def test_query_round_trip(self):
        payload = protocol.encode_query(
            7, protocol.Q_VISITORS, obj=item(3), place=L2, t1=10, t2=20
        )
        op, request_id = protocol.decode_request_header(payload)
        assert (op, request_id) == (protocol.OP_QUERY, 7)
        assert protocol.decode_query(payload) == (
            protocol.Q_VISITORS, item(3), L2, 10, 20
        )

    def test_query_none_fields(self):
        payload = protocol.encode_query(1, protocol.Q_PATH, obj=item(1))
        kind, obj, place, t1, t2 = protocol.decode_query(payload)
        assert (kind, obj) == (protocol.Q_PATH, item(1))
        assert place is None and t1 is None and t2 is None

    def test_subscribe_round_trip(self):
        spec = PatternSpec(PATTERN_DWELL, place=L1, k=9)
        payload = protocol.encode_subscribe(3, spec, max_queue=64)
        decoded, max_queue = protocol.decode_subscribe(payload)
        assert decoded == spec and max_queue == 64

    def test_reply_round_trip(self):
        payload = protocol.encode_reply(5, protocol.encode_scalar(L2))
        assert protocol.frame_type(payload) == protocol.FRAME_REPLY
        request_id, status, body = protocol.decode_reply(payload)
        assert (request_id, status) == (5, protocol.STATUS_OK)
        assert protocol.decode_scalar(body) == L2

    def test_error_reply(self):
        payload = protocol.encode_error_reply(2, "boom")
        _, status, body = protocol.decode_reply(payload)
        assert status == protocol.STATUS_ERROR and body == b"boom"

    def test_tag_list_round_trip(self):
        tags = [item(1), case(2), item(3)]
        assert protocol.decode_tag_list(protocol.encode_tag_list(tags)) == tags
        assert protocol.decode_tag_list(protocol.encode_tag_list([])) == []

    def test_path_round_trip(self):
        from repro.events.messages import INFINITY
        from repro.query.index import Interval

        path = [Interval(L1, 0, 5), Interval(L2, 5, INFINITY)]
        assert protocol.decode_path(protocol.encode_path(path)) == path

    def test_event_round_trip(self):
        note = Notification(
            kind="left_without_container",
            epoch=42,
            obj=item(1),
            place=L1,
            container=case(9),
            value=3,
            detail="left L0 at 41; case:9 stayed",
        )
        sub_id, decoded = protocol.decode_event(protocol.encode_event(17, note))
        assert sub_id == 17 and decoded == note

    def test_scalar_none(self):
        assert protocol.decode_scalar(protocol.encode_scalar(None)) is None

    def test_stats_round_trip(self):
        stats = {"queries_served": 4, "latency_buckets": {"3": 2}}
        assert protocol.decode_stats_body(protocol.encode_stats_body(stats)) == stats

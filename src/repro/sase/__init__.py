"""`repro.sase` — a SASE-style pattern language compiled to NFAs.

The standing-query engine of :mod:`repro.serving` originally shipped a
fixed, hand-coded pattern catalogue; every new monitoring scenario cost
bespoke engine code.  This package replaces that catalogue with a real
complex-event pattern language in the style of the SASE paper
("SASE: Complex Event Processing over Streams", arXiv cs/0612128):

* a **textual grammar** — ``PATTERN SEQ(arrival a, !departure d, ...)
  WHERE <predicates> WITHIN <window> RETURN <fields>`` — parsed by a
  recursive-descent parser into a typed AST (:mod:`repro.sase.ast`,
  :mod:`repro.sase.parser`);
* an **AST→NFA compiler** with predicate push-down, negation-as-absence
  edges, Kleene+ closure, and inference of the partition attribute for
  the partitioned-active-instance-stack optimization
  (:mod:`repro.sase.nfa`);
* an **incremental runtime** consuming event messages epoch-by-epoch
  with window-expiry pruning and deterministic match ordering
  (:mod:`repro.sase.runtime`);
* a :class:`~repro.sase.compiled.CompiledPattern` adapter so matches
  flow through the serving tier's existing subscription queues,
  backpressure and notification path unchanged;
* the legacy catalogue **re-expressed as library definitions** in the
  new language (:mod:`repro.sase.library`), pinned byte-for-byte against
  the hand-coded originals.

Entry point::

    from repro.sase import compile_pattern
    pattern = compile_pattern(
        "PATTERN SEQ(uncontain u, departure d, missing m) "
        "WHERE d.obj == u.obj AND m.obj == u.obj WITHIN 60 EPOCHS "
        "RETURN u.obj, d.place"
    )
    engine.subscribe(pattern)       # a repro.serving Pattern like any other
"""

from repro.sase.ast import PatternAST, unparse
from repro.sase.compiled import CompiledPattern, compile_pattern
from repro.sase.errors import PatternError, PatternSemanticError, PatternSyntaxError
from repro.sase.parser import parse_pattern_source

__all__ = [
    "CompiledPattern",
    "PatternAST",
    "PatternError",
    "PatternSemanticError",
    "PatternSyntaxError",
    "compile_pattern",
    "parse_pattern_source",
    "unparse",
]

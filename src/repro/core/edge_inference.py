"""Edge inference (Section IV-A): most-likely container of an object.

For a node ``v``, every incoming (parent) edge gets a weight from its
recent co-location history (Eq. 1), those weights are balanced against the
last special-reader confirmation (Eq. 2), and the edge with the highest
probability is chosen as the most likely container.

Equation 1 weights the history bit-vector with a Zipf distribution.  The
paper writes the position weight as ``i^-alpha`` with ``i`` starting at 0;
we use ``(i + 1)^-alpha`` so position 0 (the most recent epoch) is well
defined for ``alpha > 0`` — with the paper's chosen ``alpha = 0`` the two
are identical.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.graph import GraphEdge, GraphNode
from repro.core.params import InferenceParams


@lru_cache(maxsize=64)
def _zipf_weights(size: int, alpha: float) -> tuple[tuple[float, ...], float]:
    """Per-position Zipf weights and their sum for a history of ``size`` bits."""
    weights = tuple(1.0 / (i + 1) ** alpha for i in range(size))
    return weights, sum(weights)


def history_weight(edge: GraphEdge, params: InferenceParams) -> float:
    """Eq. 1: normalised Zipf-weighted sum of the co-location bit-vector.

    Normalisation runs over the *filled* positions of the bit-vector, so the
    weight is the (Zipf-weighted) fraction of remembered evidence epochs in
    which the two objects were co-located — a fresh edge whose single
    evidence bit is positive weighs 1.0, not 1/S.  This keeps the §IV-C
    pruning threshold (default 0.25) meaningful for young edges.
    """
    filled = min(edge.filled, params.history_size)
    if filled == 0 or edge.history == 0:
        return 0.0
    if params.alpha == 0.0:
        # all positions weigh equally: popcount / filled
        return edge.history.bit_count() / filled
    weights, _total = _zipf_weights(params.history_size, params.alpha)
    acc = 0.0
    norm = 0.0
    for i in range(filled):
        norm += weights[i]
        if (edge.history >> i) & 1:
            acc += weights[i]
    return acc / norm


def effective_beta(node: GraphNode, params: InferenceParams) -> float:
    """The ``beta`` to use at ``node`` (§IV-A / Expt 1 adaptive heuristic).

    The adaptive policy sets beta to the ratio of *conflicting* observations
    (only one of the object and its confirmed container was read) to all
    observations involving either since the last confirmation.  Many
    conflicts mean the confirmation is likely obsolete, so belief shifts to
    recent history (high beta); no conflicts keep the confirmation dominant.
    """
    if not params.adaptive_beta or node.confirmed_parent is None:
        return params.beta
    conflicts = node.confirmed_conflicts
    confirmed_edge = node.parents.get(node.confirmed_parent)
    supportive = confirmed_edge.filled if confirmed_edge is not None else 0
    total = conflicts + supportive
    if total == 0:
        return params.beta
    return conflicts / total


def infer_edges(node: GraphNode, params: InferenceParams) -> GraphEdge | None:
    """Run edge inference at ``node``; returns the most likely parent edge.

    Every parent edge's :attr:`~repro.core.graph.GraphEdge.prob` (normalised
    Eq. 2 probability) and :attr:`~repro.core.graph.GraphEdge.confidence`
    (unnormalised value, used for pruning and Fig. 10) are updated in place.
    Returns ``None`` when the node has no parent edges.
    """
    parents = node.parents
    if not parents:
        return None
    beta = effective_beta(node, params)
    memory_weight = 1.0 - beta
    confirmed = node.confirmed_parent
    alpha = params.alpha
    history_size = params.history_size

    best: GraphEdge | None = None
    z = 0.0
    for edge in parents.values():
        # Eq. 1 inlined for the paper's alpha = 0 (all positions equal:
        # popcount over filled positions); other alphas take the general
        # Zipf-weighted path.
        history = edge.history
        if history == 0:
            weight = 0.0
        elif alpha == 0.0:
            filled = edge.filled
            weight = history.bit_count() / (
                filled if filled <= history_size else history_size
            )
        else:
            weight = history_weight(edge, params)
        confidence = (
            memory_weight + beta * weight
            if edge.parent.tag == confirmed
            else beta * weight
        )
        edge.confidence = confidence
        edge.prob = confidence  # normalised below
        z += confidence
        if best is None or confidence > best.confidence:
            best = edge

    if z > 0.0:
        for edge in parents.values():
            edge.prob = edge.prob / z
    else:
        # no history and no confirmation: uniform over candidates
        uniform = 1.0 / len(parents)
        for edge in parents.values():
            edge.prob = uniform
        best = next(iter(parents.values()))
    return best


def prune_weak_parents(node: GraphNode, best: GraphEdge | None, params: InferenceParams) -> list[GraphEdge]:
    """Return parent edges of ``node`` eligible for pruning (§IV-C).

    An edge is prunable when its unnormalised confidence falls below the
    threshold, unless it is the chosen (most likely) edge or the node's
    confirmed parent edge — removing those would discard the containment
    estimate itself.
    """
    threshold = params.prune_threshold
    if threshold <= 0.0:
        return []
    victims = []
    for edge in node.parents.values():
        if edge is best:
            continue
        if edge.parent.tag == node.confirmed_parent:
            continue
        if edge.confidence < threshold:
            victims.append(edge)
    return victims

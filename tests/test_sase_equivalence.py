"""Legacy catalogue vs compiled patterns: byte-for-byte equivalence.

The acceptance property of the pattern compiler: every hand-coded
catalogue pattern, re-expressed as a :mod:`repro.sase` library
definition, produces the **identical encoded notification frames** over
chaos-enabled simulated streams (drops + delays, three pinned seeds).
Also covers the subscription edge cases that ride along in this change:
unknown-id unsubscribe, resubscribe after overflow eviction, and
notification ordering across two subscriptions to the same pattern.
"""

from __future__ import annotations

import pytest

from repro.distributed import Coordinator, Zone
from repro.model.objects import PackagingLevel, TagId
from repro.sase import library
from repro.serving import protocol
from repro.serving.engine import StandingQueryEngine
from repro.serving.patterns import (
    DwellExceeded,
    LeftWithoutContainer,
    MissingOverdue,
    ObjectWatch,
    PlaceWatch,
    Tail,
)

from tests.test_serving_e2e import _chaos_epochs

SEEDS = [5, 17, 29]


def _interpret(seed: int):
    """One chaos-enabled run: the interpreted per-epoch message batches."""
    sim, epochs = _chaos_epochs(seed)
    coordinator = Coordinator(
        [Zone.build("all", sim.layout.readers, sim.layout.registry)]
    )
    batches = []
    for readings in epochs:
        result = coordinator.process_epoch(readings)
        batches.append((result.epoch, result.messages))
    places = sorted(
        {msg.place for _, messages in batches for msg in messages
         if msg.place is not None}
    )
    return batches, places


def _pattern_pairs(places):
    """(legacy, compiled) pairs covering the whole catalogue."""
    obj = TagId(PackagingLevel.CASE, 1)
    place = places[0]
    k = 5
    return [
        (Tail(), library.tail()),
        (Tail(obj=obj, place=place), library.tail(obj=obj, place=place)),
        (ObjectWatch(obj=obj), library.object_watch(obj)),
        (PlaceWatch(place=place), library.place_watch(place)),
        (DwellExceeded(place=place, k=k), library.dwell_exceeded(place, k)),
        (MissingOverdue(k=k), library.missing_overdue(k)),
        (LeftWithoutContainer(place=place), library.left_without_container(place)),
    ]


def _frames_per_epoch(pattern, batches, subscribe_at=None):
    """Run one pattern through its own engine; encoded frames per epoch.

    ``subscribe_at`` delays the subscription to that epoch index, so the
    prime path (seeding from the live index) is compared too.
    """
    engine = StandingQueryEngine(expand_level2=True)
    sub = None
    if subscribe_at is None:
        sub = engine.subscribe(pattern, max_queue=1 << 20)
    frames = []
    for position, (epoch, messages) in enumerate(batches):
        if sub is None and subscribe_at is not None and position == subscribe_at:
            sub = engine.subscribe(pattern, max_queue=1 << 20)
        engine.publish(epoch, messages)
        notes = sub.drain() if sub is not None else []
        frames.append([protocol.encode_event(0, note) for note in notes])
    return frames


@pytest.mark.parametrize("seed", SEEDS)
def test_catalogue_byte_equivalence_across_chaos_seeds(seed):
    batches, places = _interpret(seed)
    assert places, "chaos run produced no located events"
    for legacy, compiled in _pattern_pairs(places):
        expected = _frames_per_epoch(legacy, batches)
        actual = _frames_per_epoch(compiled, batches)
        assert actual == expected, (
            f"{type(legacy).__name__} diverged (seed {seed}): "
            f"{sum(map(len, actual))} vs {sum(map(len, expected))} frames"
        )


def test_mid_stream_subscription_prime_is_equivalent():
    """Subscribing mid-stream (prime path) matches the legacy patterns."""
    batches, places = _interpret(SEEDS[0])
    midpoint = len(batches) // 2
    place, k = places[0], 5
    pairs = [
        (DwellExceeded(place=place, k=k), library.dwell_exceeded(place, k)),
        (MissingOverdue(k=k), library.missing_overdue(k)),
    ]
    for legacy, compiled in pairs:
        expected = _frames_per_epoch(legacy, batches, subscribe_at=midpoint)
        actual = _frames_per_epoch(compiled, batches, subscribe_at=midpoint)
        assert actual == expected, f"{type(legacy).__name__} diverged after prime"


# ---------------------------------------------------------------------------
# subscription edge cases
# ---------------------------------------------------------------------------


class TestSubscriptionEdgeCases:
    def test_unsubscribe_unknown_id_is_a_clean_no(self):
        engine = StandingQueryEngine()
        assert engine.unsubscribe(12345) is False
        sub = engine.subscribe(library.tail())
        assert engine.unsubscribe(sub.sub_id) is True
        assert engine.unsubscribe(sub.sub_id) is False  # already gone

    def test_resubscribe_after_overflow_eviction_starts_clean(self):
        batches, _ = _interpret(SEEDS[0])
        engine = StandingQueryEngine(expand_level2=True)
        sub = engine.subscribe(library.tail(), max_queue=4)
        for epoch, messages in batches[: len(batches) // 2]:
            engine.publish(epoch, messages)
        assert sub.dropped > 0, "tiny queue should have overflowed"
        engine.unsubscribe(sub.sub_id)

        fresh = engine.subscribe(library.tail(), max_queue=1 << 20)
        assert fresh.sub_id != sub.sub_id  # ids are never recycled
        assert fresh.dropped == 0 and not fresh.queue
        epoch, messages = batches[len(batches) // 2]
        engine.publish(epoch, messages)
        notes = fresh.drain()
        # the fresh subscription sees only post-resubscribe epochs
        assert notes and all(note.epoch == epoch for note in notes)

    def test_two_subscriptions_to_the_same_pattern_order_identically(self):
        batches, places = _interpret(SEEDS[0])
        engine = StandingQueryEngine(expand_level2=True)
        first = engine.subscribe(library.place_watch(places[0]), max_queue=1 << 20)
        second = engine.subscribe(library.place_watch(places[0]), max_queue=1 << 20)
        for epoch, messages in batches:
            engine.publish(epoch, messages)
        a = [protocol.encode_event(0, n) for n in first.drain()]
        b = [protocol.encode_event(0, n) for n in second.drain()]
        assert a and a == b

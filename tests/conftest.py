"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.capture import ReaderInfo
from repro.core.pipeline import Deployment
from repro.model.locations import Location, LocationKind, LocationRegistry
from repro.model.objects import PackagingLevel, TagId
from repro.readers.stream import EpochReadings
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator


def item(serial: int) -> TagId:
    return TagId(PackagingLevel.ITEM, serial)


def case(serial: int) -> TagId:
    return TagId(PackagingLevel.CASE, serial)


def pallet(serial: int) -> TagId:
    return TagId(PackagingLevel.PALLET, serial)


def epoch_readings(epoch: int, by_reader: dict[int, list[TagId]]) -> EpochReadings:
    readings = EpochReadings(epoch=epoch)
    for reader_id, tags in by_reader.items():
        readings.add(reader_id, tags)
    return readings


@pytest.fixture
def registry() -> LocationRegistry:
    reg = LocationRegistry()
    reg.create("dock", LocationKind.ENTRY_DOOR)
    reg.create("belt", LocationKind.BELT)
    reg.create("shelf", LocationKind.SHELF)
    reg.create("exit", LocationKind.EXIT_DOOR)
    return reg


@pytest.fixture
def small_sim():
    """A short deterministic warehouse trace shared by integration tests."""
    config = SimulationConfig(
        duration=600,
        pallet_period=150,
        cases_per_pallet_min=3,
        cases_per_pallet_max=3,
        items_per_case=5,
        read_rate=0.9,
        shelf_read_period=20,
        num_shelves=2,
        shelving_time_mean=120,
        shelving_time_jitter=30,
        seed=11,
    )
    return WarehouseSimulator(config).run()


@pytest.fixture
def small_deployment(small_sim) -> Deployment:
    return Deployment.from_readers(small_sim.layout.readers, small_sim.layout.registry)


def make_deployment(*infos: ReaderInfo) -> Deployment:
    """Deployment from bare ReaderInfo records (unit-test scale)."""
    return Deployment(readers={info.reader_id: info for info in infos})

"""Synthetic warehouse simulator (Section VI-A).

Pallets arrive at a configurable rate, are read at the entry door, unpacked,
their cases scanned one-at-a-time on the receiving belt, shelved for a
period of stay, repackaged onto fresh pallets, rescanned on the exit belt
and finally read at the exit door — the six reader groups of the paper's
experimental setup, parameterised exactly as Table II.

The simulator produces three aligned artifacts per run: the raw
:class:`~repro.readers.stream.ReadingStream`, a
:class:`~repro.model.truth.GroundTruthRecorder` with per-epoch snapshots,
and the deployment description (locations + readers) SPIRE needs.
"""

from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator, SimulationResult
from repro.simulator.anomalies import AnomalyInjector

__all__ = [
    "SimulationConfig",
    "WarehouseSimulator",
    "SimulationResult",
    "AnomalyInjector",
]

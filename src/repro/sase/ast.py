"""Typed AST of the SASE-style pattern language.

A pattern is ``PATTERN SEQ(<elements>) [ONCE PER EPOCH] [WHERE <expr>]
[WITHIN <n> EPOCHS|SECONDS] [RETURN <items>]``.  The AST keeps exactly
what was written (event-class *names*, the window unit, return aliases)
so :func:`unparse` is canonical and ``parse ∘ unparse`` is a fixpoint —
the property the grammar fuzz test pins.

Expressions are untyped trees evaluated against an
:class:`EvalContext`; ``None`` propagates through arithmetic and
function calls, and comparisons involving ``None`` follow Python's
equality semantics (``None == x`` only for ``x is None``; ordering
comparisons with ``None`` are false) — the convention the legacy
catalogue relied on when an index lookup came back empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.events.messages import EventKind

#: WITHIN ... SECONDS is converted at this cadence: the paper's readers
#: interrogate once per epoch and the simulator advances one epoch per
#: second of warehouse time, so the two units coincide at 1:1.
EPOCHS_PER_SECOND = 1

#: event-class name -> the message kinds it admits.  ``location`` and
#: ``containment`` are the two kind families of
#: :class:`~repro.events.messages.EventKind`; ``any`` admits everything.
EVENT_CLASSES: dict[str, frozenset[EventKind]] = {
    "arrival": frozenset({EventKind.START_LOCATION}),
    "departure": frozenset({EventKind.END_LOCATION}),
    "missing": frozenset({EventKind.MISSING}),
    "contain": frozenset({EventKind.START_CONTAINMENT}),
    "uncontain": frozenset({EventKind.END_CONTAINMENT}),
    "location": frozenset(
        {EventKind.START_LOCATION, EventKind.END_LOCATION, EventKind.MISSING}
    ),
    "containment": frozenset({EventKind.START_CONTAINMENT, EventKind.END_CONTAINMENT}),
    "any": frozenset(EventKind),
}

#: attributes an expression may read off a bound event (see
#: ``repro.sase.runtime.EventView``); ``left`` is the derived
#: departure time (``ve`` of an EndLocation, ``vs`` of a Missing).
EVENT_ATTRS = ("obj", "place", "container", "vs", "ve", "epoch", "kind", "left")

#: built-in functions; ``loc``/``container``/``missing`` consult the live
#: index and therefore force the predicate to fire time (see repro.sase.nfa)
INDEX_FUNCS = frozenset({"loc", "container", "missing"})
PURE_FUNCS = frozenset({"max", "min", "coalesce"})
KNOWN_FUNCS = INDEX_FUNCS | PURE_FUNCS


class EvalContext:
    """Everything an expression may consult during evaluation."""

    __slots__ = ("bindings", "now", "index")

    def __init__(self, bindings: Mapping[str, object], now: int, index=None) -> None:
        self.bindings = bindings
        self.now = now
        self.index = index


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base expression node."""

    def eval(self, ctx: EvalContext):
        raise NotImplementedError

    def unparse(self) -> str:
        raise NotImplementedError

    #: precedence for parenthesization during unparse (higher binds tighter)
    precedence = 7

    def _child(self, child: "Expr", minimum: int) -> str:
        text = child.unparse()
        return f"({text})" if child.precedence < minimum else text

    def walk(self) -> Iterator["Expr"]:
        """This node and every descendant, pre-order."""
        yield self


@dataclass(frozen=True)
class Literal(Expr):
    """An integer, quoted string, or ``level:serial`` tag literal."""

    value: object

    def eval(self, ctx):
        return self.value

    def unparse(self):
        value = self.value
        if isinstance(value, str):
            return "'" + value + "'"
        if hasattr(value, "level") and hasattr(value, "serial"):  # TagId
            return f"{value.level.name.lower()}:{value.serial}"
        return str(value)


@dataclass(frozen=True)
class Now(Expr):
    """The epoch the predicate is being evaluated at (fire time)."""

    def eval(self, ctx):
        return ctx.now

    def unparse(self):
        return "now"


@dataclass(frozen=True)
class Attr(Expr):
    """``binding.name`` — an attribute of a bound event.

    On a Kleene+ binding the attribute reads the **last** event of the
    run (during consumption that is the event being admitted, so
    per-event predicates see each candidate in turn).
    """

    binding: str
    name: str

    def eval(self, ctx):
        value = ctx.bindings.get(self.binding)
        if value is None:
            return None
        if isinstance(value, list):
            if not value:
                return None
            value = value[-1]
        return value.attr(self.name)

    def unparse(self):
        return f"{self.binding}.{self.name}"


@dataclass(frozen=True)
class Func(Expr):
    """A built-in call: index lookups and small pure helpers."""

    name: str
    args: tuple[Expr, ...]

    def eval(self, ctx):
        values = [arg.eval(ctx) for arg in self.args]
        if self.name == "coalesce":
            for value in values:
                if value is not None:
                    return value
            return None
        if any(value is None for value in values):
            return None
        if self.name == "max":
            return max(values)
        if self.name == "min":
            return min(values)
        if ctx.index is None:
            return None
        if self.name == "loc":
            return ctx.index.location_of(values[0], values[1])
        if self.name == "container":
            return ctx.index.container_of(values[0], values[1])
        if self.name == "missing":
            return bool(ctx.index.is_missing(values[0], values[1]))
        raise ValueError(f"unknown function {self.name!r}")  # pragma: no cover

    def unparse(self):
        return f"{self.name}({', '.join(arg.unparse() for arg in self.args)})"

    def walk(self):
        yield self
        for arg in self.args:
            yield from arg.walk()


@dataclass(frozen=True)
class BinOp(Expr):
    """Additive arithmetic (``+`` / ``-``); ``None`` poisons the result."""

    op: str
    left: Expr
    right: Expr
    precedence = 5

    def eval(self, ctx):
        left, right = self.left.eval(ctx), self.right.eval(ctx)
        if left is None or right is None:
            return None
        return left + right if self.op == "+" else left - right

    def unparse(self):
        # subtraction is left-associative: parenthesize a BinOp right child
        right_min = 6 if self.op == "-" else 5
        return (
            f"{self._child(self.left, 5)} {self.op} {self._child(self.right, right_min)}"
        )

    def walk(self):
        yield self
        yield from self.left.walk()
        yield from self.right.walk()


#: comparison evaluators; ordering comparisons are False when either
#: side is None, equality follows Python (None == None only)
_CMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and a < b,
    "<=": lambda a, b: a is not None and b is not None and a <= b,
    ">": lambda a, b: a is not None and b is not None and a > b,
    ">=": lambda a, b: a is not None and b is not None and a >= b,
}


@dataclass(frozen=True)
class Cmp(Expr):
    """A comparison producing a boolean."""

    op: str
    left: Expr
    right: Expr
    precedence = 4

    def eval(self, ctx):
        return _CMP[self.op](self.left.eval(ctx), self.right.eval(ctx))

    def unparse(self):
        return f"{self._child(self.left, 5)} {self.op} {self._child(self.right, 5)}"

    def walk(self):
        yield self
        yield from self.left.walk()
        yield from self.right.walk()


@dataclass(frozen=True)
class Not(Expr):
    """Boolean negation (``NOT expr``)."""

    operand: Expr
    precedence = 3

    def eval(self, ctx):
        return not self.operand.eval(ctx)

    def unparse(self):
        return f"NOT {self._child(self.operand, 3)}"

    def walk(self):
        yield self
        yield from self.operand.walk()


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction — kept flat so the compiler can split conjuncts."""

    parts: tuple[Expr, ...]
    precedence = 2

    def eval(self, ctx):
        return all(part.eval(ctx) for part in self.parts)

    def unparse(self):
        return " AND ".join(self._child(part, 3) for part in self.parts)

    def walk(self):
        yield self
        for part in self.parts:
            yield from part.walk()


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction."""

    parts: tuple[Expr, ...]
    precedence = 1

    def eval(self, ctx):
        return any(part.eval(ctx) for part in self.parts)

    def unparse(self):
        return " OR ".join(self._child(part, 2) for part in self.parts)

    def walk(self):
        yield self
        for part in self.parts:
            yield from part.walk()


def referenced_bindings(expr: Expr) -> set[str]:
    """Binding names an expression reads."""
    return {node.binding for node in expr.walk() if isinstance(node, Attr)}


def needs_fire_time(expr: Expr) -> bool:
    """Must this expression wait until match completion to evaluate?

    True when it reads ``now`` or consults the live index — index
    answers can change as later messages retro-close intervals, so
    index-dependent predicates are pinned to the match epoch.
    """
    for node in expr.walk():
        if isinstance(node, Now):
            return True
        if isinstance(node, Func) and node.name in INDEX_FUNCS:
            return True
    return False


# ---------------------------------------------------------------------------
# pattern structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Element:
    """One SEQ component: ``[!] class[+] binding``."""

    binding: str
    classes: tuple[str, ...]  # event-class names as written (deduped)
    negated: bool = False
    kleene: bool = False

    def kinds(self) -> frozenset[EventKind]:
        """The event kinds this element admits."""
        kinds: frozenset[EventKind] = frozenset()
        for name in self.classes:
            kinds |= EVENT_CLASSES[name]
        return kinds

    def unparse(self) -> str:
        names = self.classes[0] if len(self.classes) == 1 else f"({' | '.join(self.classes)})"
        return f"{'!' if self.negated else ''}{names}{'+' if self.kleene else ''} {self.binding}"


@dataclass(frozen=True)
class ReturnItem:
    """One RETURN entry: an expression with an optional ``AS`` alias."""

    expr: Expr
    name: str | None = None

    @property
    def label(self) -> str:
        return self.name if self.name is not None else self.expr.unparse()

    def unparse(self) -> str:
        text = self.expr.unparse()
        return f"{text} AS {self.name}" if self.name is not None else text


@dataclass(frozen=True)
class PatternAST:
    """A fully parsed pattern, clause by clause."""

    elements: tuple[Element, ...]
    where: Expr | None = None
    within: int | None = None
    within_unit: str = "epochs"  # 'epochs' | 'seconds', as written
    once_per_epoch: bool = False
    returns: tuple[ReturnItem, ...] = field(default_factory=tuple)

    def window_epochs(self) -> int | None:
        """The WITHIN window normalized to epochs (None = unbounded)."""
        if self.within is None:
            return None
        if self.within_unit == "seconds":
            return self.within * EPOCHS_PER_SECOND
        return self.within


def unparse(ast: PatternAST) -> str:
    """Render a pattern AST back to canonical source text.

    Canonical form: upper-case keywords, lower-case event-class names,
    single spaces, parenthesized unions.  ``parse(unparse(parse(s)))``
    equals ``parse(s)`` for every valid ``s`` (the round-trip fixpoint).
    """
    parts = [f"PATTERN SEQ({', '.join(element.unparse() for element in ast.elements)})"]
    if ast.once_per_epoch:
        parts.append("ONCE PER EPOCH")
    if ast.where is not None:
        parts.append(f"WHERE {ast.where.unparse()}")
    if ast.within is not None:
        parts.append(f"WITHIN {ast.within} {ast.within_unit.upper()}")
    if ast.returns:
        parts.append(f"RETURN {', '.join(item.unparse() for item in ast.returns)}")
    return " ".join(parts)

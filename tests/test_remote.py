"""Remote-transport suite: TCP workers, supervision, and network faults.

The acceptance bar mirrors ``test_parallel.py``'s — **byte-identical**
merged output against the serial :class:`Coordinator` — and extends it
across the transport layer (DESIGN.md §12, docs/SCALING.md):

* clean 3-worker TCP runs reproduce the serial stream exactly;
* transient network faults (drop/delay/duplicate, injected by
  :class:`NetFaultProxy`) are absorbed by the retry layer, leaving the
  stream untouched;
* a worker crash *between* epochs reproduces the stream a scripted
  serial ``fail_zone`` / ``recover_zone`` pair emits at that boundary;
* a permanent partition (or a worker-side error) degrades to fewer
  workers with a well-formed stream instead of aborting.
"""

from __future__ import annotations

import time

import pytest

from repro.api import SpireConfig, SpireSession
from repro.distributed import (
    Coordinator,
    RemoteCoordinator,
    RetryPolicy,
    partition_by_location,
    wire,
)
from repro.distributed.remote import (
    WorkerDaemon,
    parse_address,
    spawn_worker_process,
)
from repro.events.codec import decode_stream, encode_stream
from repro.events.wellformed import check_well_formed
from repro.faults.injector import schedule_from_dict
from repro.faults.network import (
    NetDelay,
    NetDrop,
    NetDup,
    NetFaultProxy,
    NetPartition,
    WorkerCrash,
    split_net_schedule,
)
from repro.faults.warnings import WarningKind
from repro.obs.metrics import MetricRegistry, render_prometheus
from repro.simulator.warehouse import WarehouseSimulator

from tests.test_parallel import ASSIGNMENT, _config, _epochs, _run, _zones

#: settle after a scripted daemon crash: lets the FIN reach the
#: coordinator so the next epoch's EOF probe sees a boundary death
SETTLE_S = 0.3


def _serial_stream(config, chaos_seed=None, actions=None, interval=10) -> bytes:
    sim, epochs = _epochs(config, chaos_seed)
    return _run(Coordinator(_zones(sim), checkpoint_interval=interval), epochs, actions)


# ---------------------------------------------------------------------------
# addresses and envelopes
# ---------------------------------------------------------------------------


class TestParseAddress:
    def test_forms(self):
        assert parse_address("node-7:7171") == ("node-7", 7171)
        assert parse_address(":7171") == ("127.0.0.1", 7171)
        assert parse_address(("host", 9)) == ("host", 9)
        assert parse_address(["host", "9"]) == ("host", 9)

    def test_missing_port_rejected(self):
        with pytest.raises(ValueError, match="no port"):
            parse_address("just-a-host")


class TestEnvelopes:
    def test_request_reply_round_trip(self):
        body = b"payload"
        msg_type, seq, payload = wire.decode_envelope(wire.encode_request(41, body))
        assert (msg_type, seq, payload) == (wire.MSG_REQUEST, 41, body)
        msg_type, seq, payload = wire.decode_envelope(wire.encode_reply(41, b"ok"))
        assert (msg_type, seq, payload) == (wire.MSG_REPLY, 41, b"ok")

    def test_ping_pong_and_hello(self):
        assert wire.decode_envelope(wire.encode_ping(7))[:2] == (wire.MSG_PING, 7)
        assert wire.decode_envelope(wire.encode_pong(7))[:2] == (wire.MSG_PONG, 7)
        ack = wire.encode_hello_ack("w-1", 123, 4)
        name, pid, zones = wire.decode_hello_ack(wire.decode_envelope(ack)[2])
        assert (name, pid, zones) == ("w-1", 123, 4)

    def test_bare_message_is_not_an_envelope(self):
        with pytest.raises(wire.WireError):
            wire.decode_envelope(wire.encode_ok())


# ---------------------------------------------------------------------------
# daemon reply cache (exactly-once effect)
# ---------------------------------------------------------------------------


class _FakeConn:
    """Captures what the daemon would send on its socket."""

    def __init__(self):
        self.sent: list[bytes] = []

    def sendall(self, data: bytes) -> None:
        self.sent.append(data)


def _install_frame(seq: int) -> bytes:
    from repro.core.checkpoint import dumps_spire

    config = _config(seed=5, duration=10)
    sim = WarehouseSimulator(config).run()
    zone = _zones(sim)[0]
    blob = dumps_spire(zone.spire, codec="fast")
    return wire.encode_request(seq, wire.encode_install(0, blob, zone_id=zone.zone_id))


class TestDaemonReplyCache:
    def test_retry_is_answered_from_cache_not_reapplied(self):
        daemon = WorkerDaemon()
        conn = _FakeConn()
        assert daemon._handle_frame(conn, _install_frame(seq=1)) is True
        assert len(daemon._spires) == 1
        first_reply = conn.sent[-1]
        # poison the resident state: if the retry were *re-applied*, the
        # install would overwrite the sentinel
        (index,) = daemon._spires
        daemon._spires[index] = "sentinel"
        assert daemon._handle_frame(conn, _install_frame(seq=1)) is True
        assert conn.sent[-1] == first_reply
        assert daemon._spires[index] == "sentinel"
        daemon.stop()

    def test_stale_seq_beyond_cache_is_dropped(self):
        daemon = WorkerDaemon()
        conn = _FakeConn()
        daemon._last_seq = 500  # as if 500 requests were served and evicted
        assert daemon._handle_frame(conn, _install_frame(seq=3)) is True
        assert conn.sent == []  # no reply: the coordinator moved on long ago
        daemon.stop()

    def test_cache_evicts_oldest(self):
        daemon = WorkerDaemon(reply_cache=4)
        for seq in range(1, 9):
            daemon._remember(seq, b"r%d" % seq)
        assert list(daemon._cache) == [5, 6, 7, 8]
        daemon.stop()


# ---------------------------------------------------------------------------
# construction contracts
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_checkpoint_interval_required(self):
        sim, _ = _epochs(_config(seed=5, duration=10))
        with pytest.raises(ValueError, match="checkpoint_interval"):
            RemoteCoordinator(_zones(sim), workers=2, checkpoint_interval=None)

    def test_addresses_xor_workers(self):
        sim, _ = _epochs(_config(seed=5, duration=10))
        with pytest.raises(ValueError, match="exactly one"):
            RemoteCoordinator(_zones(sim))
        with pytest.raises(ValueError, match="exactly one"):
            RemoteCoordinator(_zones(sim), addresses=[":1"], workers=1)
        with pytest.raises(ValueError, match=">= 1"):
            RemoteCoordinator(_zones(sim), workers=0)


# ---------------------------------------------------------------------------
# schedule plumbing
# ---------------------------------------------------------------------------


class TestNetSchedule:
    def test_json_kinds(self):
        schedule = schedule_from_dict(
            [
                {"kind": "net_delay", "rate": 0.1, "seconds": 0.01},
                {"kind": "net_drop", "rate": 0.05, "start": 10},
                {"kind": "net_dup", "rate": 0.05, "end": 500},
                {"kind": "net_partition", "start": 40, "duration": 20},
                {"kind": "worker_crash", "worker": 1, "at_epoch": 60},
                {"kind": "drop_batches", "rate": 0.03},
            ]
        )
        assert [type(s) for s in schedule] == [
            NetDelay, NetDrop, NetDup, NetPartition, WorkerCrash, type(schedule[-1]),
        ]
        stream_specs, net_specs, crashes = split_net_schedule(schedule)
        assert [type(s) for s in net_specs] == [NetDelay, NetDrop, NetDup, NetPartition]
        assert crashes == [WorkerCrash(worker=1, at_epoch=60)]
        assert len(stream_specs) == 1

    def test_run_remote_rejects_bad_schedules(self):
        from repro.experiments.remote import run_remote

        with pytest.raises(ValueError, match="transport faults only"):
            run_remote(schedule=schedule_from_dict([{"kind": "drop_batches", "rate": 0.1}]))
        with pytest.raises(ValueError, match="names worker"):
            run_remote(workers=2, schedule=[WorkerCrash(worker=5, at_epoch=10)])
        with pytest.raises(ValueError, match="at_epoch"):
            run_remote(workers=2, schedule=[WorkerCrash(worker=0, at_epoch=0)])


# ---------------------------------------------------------------------------
# equivalence: clean, under transport chaos, and across a crash
# ---------------------------------------------------------------------------


class TestRemoteEquivalence:
    def test_clean_run_byte_identical(self):
        config = _config(seed=7)
        serial = _serial_stream(config)
        sim, epochs = _epochs(config)
        with RemoteCoordinator(
            _zones(sim), workers=3, checkpoint_interval=10
        ) as remote:
            stream = _run(remote, epochs)
        assert stream == serial
        assert len(serial) > 0

    def test_chaos_ingestion_byte_identical(self):
        """Reader-stream chaos and the TCP transport compose cleanly."""
        config = _config(seed=13)
        serial = _serial_stream(config, chaos_seed=99)
        sim, epochs = _epochs(config, chaos_seed=99)
        with RemoteCoordinator(
            _zones(sim), workers=2, checkpoint_interval=10
        ) as remote:
            assert _run(remote, epochs) == serial

    def test_transport_faults_absorbed_by_retries(self):
        """Drop + delay + duplication on every link: byte-identical."""
        config = _config(seed=7)
        serial = _serial_stream(config)
        sim, epochs = _epochs(config)
        daemons = [WorkerDaemon() for _ in range(3)]
        proxies = []
        try:
            schedule = [
                NetDrop(rate=0.05),
                NetDelay(rate=0.1, seconds=0.01),
                NetDup(rate=0.05),
            ]
            for i, daemon in enumerate(daemons):
                daemon.start()
                proxies.append(NetFaultProxy(daemon.address, schedule, seed=21 + i))
            policy = RetryPolicy(request_timeout=1.0, max_retries=8, backoff_base=0.02)
            remote = RemoteCoordinator(
                _zones(sim),
                addresses=[proxy.address for proxy in proxies],
                policy=policy,
                checkpoint_interval=10,
            )
            stream = _run(remote, epochs)
            stats = remote.supervisor.stats
        finally:
            for proxy in proxies:
                proxy.stop()
            for daemon in daemons:
                daemon.stop()
        assert stream == serial
        assert stats.worker_deaths == 0
        # the schedule really perturbed the link; the retry layer hid it
        assert stats.retries + stats.dup_replies > 0

    def test_boundary_crash_matches_scripted_serial_failover(self):
        """kill -9 between epochs == scripted fail_zone + recover_zone."""
        crash_index = 60
        config = _config(seed=7)
        sim, epochs = _epochs(config)
        boundary = epochs[crash_index - 1].epoch

        daemons = [WorkerDaemon() for _ in range(3)]
        for daemon in daemons:
            daemon.start()
        remote = RemoteCoordinator(
            _zones(sim),
            addresses=[daemon.address for daemon in daemons],
            checkpoint_interval=10,
        )
        try:
            hosted = sorted(
                zone_id
                for zone_id, worker in remote._worker_of_zone.items()
                if worker is remote.supervisor.workers[0]
            )
            assert hosted  # worker 0 hosts zones in the round-robin layout
            parts = []
            for i, readings in enumerate(epochs):
                if i == crash_index:
                    daemons[0].crash()
                    time.sleep(SETTLE_S)
                parts.append(encode_stream(remote.process_epoch(readings).messages))
            stream = b"".join(parts)
            counts = dict(remote.quarantine.counts())
            # queries keep working against the rehomed zones
            for tag in list(remote._owner)[:5]:
                remote.location_of(tag)
        finally:
            remote.close()
            for daemon in daemons:
                daemon.stop()

        def scripted(coordinator):
            spliced = []
            for zone_id in hosted:
                spliced.extend(coordinator.fail_zone(zone_id, at=boundary))
            for zone_id in hosted:
                spliced.extend(coordinator.recover_zone(zone_id, at=boundary))
            return spliced

        serial = _serial_stream(config, actions={crash_index: scripted})
        assert stream == serial
        assert counts[WarningKind.WORKER_LOST] == 1
        assert counts[WarningKind.ZONE_REHOMED] == len(hosted)


# ---------------------------------------------------------------------------
# degradation: permanent partition, worker-side error
# ---------------------------------------------------------------------------


class TestDegradation:
    def test_permanent_partition_degrades_cleanly(self):
        """A blackholed worker is declared dead; the run completes."""
        config = _config(seed=11)
        sim, epochs = _epochs(config)
        daemons = [WorkerDaemon() for _ in range(3)]
        for daemon in daemons:
            daemon.start()
        # only worker 0's link is partitioned, and never heals
        proxy = NetFaultProxy(
            daemons[0].address, [NetPartition(start=40, duration=10**9)], seed=3
        )
        policy = RetryPolicy(
            request_timeout=0.3,
            max_retries=2,
            backoff_base=0.01,
            lease_interval=0.5,
            max_missed_leases=2,
        )
        remote = RemoteCoordinator(
            _zones(sim),
            addresses=[proxy.address] + [d.address for d in daemons[1:]],
            policy=policy,
            checkpoint_interval=10,
        )
        try:
            stream = _run(remote, epochs)
            stats = remote.supervisor.stats
            counts = dict(remote.quarantine.counts())
        finally:
            proxy.stop()
            for daemon in daemons:
                daemon.stop()
        assert stats.worker_deaths == 1
        assert counts[WarningKind.WORKER_LOST] == 1
        check_well_formed(list(decode_stream(stream)))

    def test_worker_error_fails_over_with_traceback(self):
        """MSG_ERROR mid-run: the worker is retired, its zones rehome."""
        config = _config(seed=7)
        sim, epochs = _epochs(config)
        remote = RemoteCoordinator(_zones(sim), workers=2, checkpoint_interval=10)
        try:
            parts = []
            for i, readings in enumerate(epochs):
                if i == 50:
                    # corrupt every resident substrate on daemon 0: its
                    # next request raises, and the daemon reports the
                    # traceback as MSG_ERROR (state lost by contract)
                    daemon = remote._daemons[0]
                    for index in list(daemon._spires):
                        daemon._spires[index] = None
                parts.append(encode_stream(remote.process_epoch(readings).messages))
            stats = remote.supervisor.stats
            warnings = [
                w for w in remote.quarantine.warnings
                if w.kind == WarningKind.WORKER_LOST
            ]
        finally:
            remote.close()
        assert stats.worker_deaths == 1
        assert len(warnings) == 1
        assert "worker reported an error" in warnings[0].detail
        assert "Traceback" in warnings[0].detail
        check_well_formed(list(decode_stream(b"".join(parts))))


# ---------------------------------------------------------------------------
# the subprocess daemon and the session front door
# ---------------------------------------------------------------------------


class TestWorkerProcess:
    def test_spawned_daemon_serves_a_run_and_exits(self):
        config = _config(seed=5, duration=60)
        serial = _serial_stream(config, interval=10)
        sim, epochs = _epochs(config)
        proc, address = spawn_worker_process()
        try:
            with RemoteCoordinator(
                _zones(sim),
                addresses=[address],
                checkpoint_interval=10,
                stop_workers_on_close=True,
            ) as remote:
                stream = _run(remote, epochs)
            assert stream == serial
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()


class TestSessionRemoteMode:
    def test_workers_and_remote_workers_are_exclusive(self):
        sim = WarehouseSimulator(_config(seed=5, duration=10)).run()
        config = SpireConfig.from_simulation(sim, workers=2, remote_workers=2)
        with pytest.raises(ValueError, match="mutually exclusive"):
            SpireSession(config)

    def test_remote_session_matches_serial(self):
        sim = WarehouseSimulator(_config(seed=5, duration=100)).run()
        with SpireSession(
            SpireConfig.from_simulation(sim, zone_map=ASSIGNMENT)
        ) as serial:
            expected = [r.messages for r in serial.process(sim.stream)]
        with SpireSession(
            SpireConfig.from_simulation(sim, zone_map=ASSIGNMENT, remote_workers=2)
        ) as session:
            assert session.mode == "remote"
            assert isinstance(session.coordinator, RemoteCoordinator)
            results = session.process(sim.stream)
        assert [r.messages for r in results] == expected


class TestRemoteMetrics:
    def test_supervisor_counters_exported(self):
        sim, epochs = _epochs(_config(seed=5, duration=80))
        registry = MetricRegistry()
        with RemoteCoordinator(
            _zones(sim), workers=2, checkpoint_interval=10, metrics=registry
        ) as remote:
            for readings in epochs:
                remote.process_epoch(readings)
            snapshot = registry.snapshot()
        text = render_prometheus(snapshot)
        for name in (
            "spire_remote_requests_total",
            "spire_remote_workers",
            "spire_remote_rtt_seconds",
        ):
            assert name in text

"""Event messages of the compressed output stream (Section V-A).

The five message kinds:

* ``StartLocation(object, location, Vs, Ve=∞)`` /
  ``EndLocation(object, location, Vs, Ve)`` — a paired interval during
  which the object is at the location;
* ``StartContainment(object, container, Vs, Ve=∞)`` /
  ``EndContainment(object, container, Vs, Ve)`` — likewise for containment;
* ``Missing(object, locationMissingFrom, Vs, Ve=Vs)`` — a singleton emitted
  right after the EndLocation of the object's previous location.

A single immutable :class:`EventMessage` type covers all five; the
``place`` field is the location color for location/missing messages and is
unused for containment messages, whose partner object lives in
``container``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.model.objects import TagId

#: The open-interval end timestamp (``Ve = ∞`` on start messages).
INFINITY: float = float("inf")

#: Encoded size in bytes charged per event message when computing
#: compression ratios: 1-byte kind + 8-byte object + 8-byte place/container
#: + 4-byte Vs + 4-byte Ve.  See DESIGN.md §3 (raw readings are charged
#: :data:`repro.readers.stream.RAW_READING_BYTES` = 16 bytes each).
EVENT_MESSAGE_BYTES = 25


class EventKind(Enum):
    """Kind of an output event message."""

    START_LOCATION = "StartLocation"
    END_LOCATION = "EndLocation"
    START_CONTAINMENT = "StartContainment"
    END_CONTAINMENT = "EndContainment"
    MISSING = "Missing"

    @property
    def is_location(self) -> bool:
        """True for location and missing messages."""
        return self in (EventKind.START_LOCATION, EventKind.END_LOCATION, EventKind.MISSING)

    @property
    def is_containment(self) -> bool:
        """True for containment messages."""
        return self in (EventKind.START_CONTAINMENT, EventKind.END_CONTAINMENT)


@dataclass(frozen=True, slots=True)
class EventMessage:
    """One message of the compressed event stream.

    Attributes:
        kind: The message kind.
        obj: The subject object.
        place: Location color (location/missing messages); ``None`` for
            containment messages.
        container: Container tag (containment messages); ``None`` otherwise.
        vs: Validity-interval start.
        ve: Validity-interval end (``INFINITY`` on start messages, ``vs``
            on missing messages).
    """

    kind: EventKind
    obj: TagId
    vs: int
    ve: float
    place: int | None = None
    container: TagId | None = None

    def __post_init__(self) -> None:
        if self.kind.is_containment:
            if self.container is None:
                raise ValueError(f"{self.kind.value} requires a container")
        else:
            if self.place is None:
                raise ValueError(f"{self.kind.value} requires a place")
        if self.ve != INFINITY and self.ve < self.vs:
            raise ValueError(f"validity interval ends before it starts: [{self.vs}, {self.ve}]")
        if self.kind is EventKind.MISSING and self.ve != self.vs:
            raise ValueError("Missing messages are singletons with Ve = Vs")

    def __str__(self) -> str:
        target = self.container if self.kind.is_containment else f"L{self.place}"
        ve = "inf" if self.ve == INFINITY else str(int(self.ve))
        return f"{self.kind.value}({self.obj}, {target}, {self.vs}, {ve})"


def start_location(obj: TagId, place: int, vs: int) -> EventMessage:
    """A ``StartLocation`` message (open interval, ``Ve = ∞``)."""
    return EventMessage(EventKind.START_LOCATION, obj, vs, INFINITY, place=place)


def end_location(obj: TagId, place: int, vs: int, ve: int) -> EventMessage:
    """An ``EndLocation`` closing the interval opened at ``vs``."""
    return EventMessage(EventKind.END_LOCATION, obj, vs, ve, place=place)


def start_containment(obj: TagId, container: TagId, vs: int) -> EventMessage:
    """A ``StartContainment`` message (open interval, ``Ve = ∞``)."""
    return EventMessage(EventKind.START_CONTAINMENT, obj, vs, INFINITY, container=container)


def end_containment(obj: TagId, container: TagId, vs: int, ve: int) -> EventMessage:
    """An ``EndContainment`` closing the interval opened at ``vs``."""
    return EventMessage(EventKind.END_CONTAINMENT, obj, vs, ve, container=container)


def missing(obj: TagId, missing_from: int, vs: int) -> EventMessage:
    """A singleton ``Missing`` message (``Ve = Vs``)."""
    return EventMessage(EventKind.MISSING, obj, vs, vs, place=missing_from)


def stream_bytes(messages) -> int:
    """Encoded size of an iterable of event messages."""
    return sum(EVENT_MESSAGE_BYTES for _ in messages)

"""Fig. 9(c) — location inference error vs. theta (Expt 2).

Reproduces: location error rate as the decay exponent theta sweeps up from
~0.  Expected shape: the error declines steeply from its maximum at
theta -> 0 (inference clings to stale locations of objects that left long
ago), flattens over the paper's favourable mid-range (theta in [1, 2]) and
degrades again at large theta (a few missed readings suffice to declare a
present object missing).

The steep >90 % left end of the paper's figure corresponds to the HARD
population (unobserved objects whose true location changed): with theta ~ 0
essentially all of them are answered with the stale color.
"""

import pytest

from repro.core.params import InferenceParams
from repro.metrics.accuracy import ScoringPolicy

from benchmarks._shared import Table, accuracy_config, get_spire

THETAS = [0.05, 0.5, 1.0, 1.25, 1.5, 2.0, 3.0, 4.0]
SHELF_PERIODS = [10, 60]
POLICIES = (ScoringPolicy.ALL, ScoringPolicy.HARD_ONLY)


def run_experiment() -> dict:
    curves: dict = {}
    for period in SHELF_PERIODS:
        curves[period] = {}
        for theta in THETAS:
            report = get_spire(
                accuracy_config(shelf_read_period=period),
                params=InferenceParams(theta=theta),
                policies=POLICIES,
            )
            curves[period][theta] = {
                policy: report.accuracy[policy].location_error_rate
                for policy in POLICIES
            }
    return curves


@pytest.mark.benchmark(group="fig9c")
def test_fig9c_location_error_vs_theta(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for policy in POLICIES:
        table = Table(
            f"Fig. 9(c): location error rate vs. theta  [{policy.value} population]",
            ["shelf period (s)"] + [f"t={t}" for t in THETAS],
        )
        for period in SHELF_PERIODS:
            table.add(period, *(curves[period][t][policy] for t in THETAS))
        table.show()

    for period in SHELF_PERIODS:
        hard = {t: curves[period][t][ScoringPolicy.HARD_ONLY] for t in THETAS}
        # steep initial decline from the theta -> 0 maximum
        assert hard[0.05] > hard[1.25]
        assert hard[0.05] > 0.5
        # the paper's favourable mid-range does not lose to the extremes
        mid_best = min(hard[t] for t in (1.0, 1.25, 1.5, 2.0))
        assert mid_best <= hard[0.05]
        assert mid_best <= hard[4.0] + 0.02

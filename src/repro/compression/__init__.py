"""Online stream compression (Section V).

Two lossless compressors turn per-epoch interpretation results into the
compressed event stream of §V-A:

* :class:`~repro.compression.level1.RangeCompressor` (level-1 / range
  compression, §V-B) emits messages only on state changes;
* :class:`~repro.compression.level2.ContainmentCompressor` (level-2, §V-C)
  additionally suppresses location updates of contained objects, since
  their location is recoverable from the container's.

:class:`~repro.compression.decompress.Level2Decompressor` (§V-C) turns a
level-2 stream back into its level-1 equivalent on demand, for query
processors that need explicit per-object locations.
"""

from repro.compression.level1 import RangeCompressor, ObjectState
from repro.compression.level2 import ContainmentCompressor
from repro.compression.decompress import Level2Decompressor, decompress_stream

__all__ = [
    "RangeCompressor",
    "ObjectState",
    "ContainmentCompressor",
    "Level2Decompressor",
    "decompress_stream",
]

"""Unit tests for iterative inference (§IV-C) and partial/complete modes (§IV-D)."""

import pytest

from repro.core.capture import GraphUpdater, ReaderInfo
from repro.core.graph import Graph
from repro.core.interpretation import LocationSource
from repro.core.iterative import IterativeInference
from repro.core.params import InferenceParams
from repro.model.locations import UNKNOWN_COLOR

from tests.conftest import case, epoch_readings, item, pallet

BLUE, GREEN = 0, 1
READERS = {
    0: ReaderInfo(reader_id=0, color=BLUE),
    1: ReaderInfo(reader_id=1, color=GREEN),
}


def build(params: InferenceParams = InferenceParams()):
    graph = Graph()
    updater = GraphUpdater(graph, params)
    inference = IterativeInference(graph, params)
    return graph, updater, inference


def apply(updater, epoch, by_reader):
    updater.apply_epoch(epoch_readings(epoch, by_reader), READERS, epoch)


class TestColoredLayer:
    def test_observed_objects_reported_at_reader_location(self):
        graph, updater, inference = build()
        apply(updater, 0, {0: [case(1), item(1)]})
        result = inference.run(now=0, complete=True)
        for tag in (case(1), item(1)):
            estimate = result.get(tag)
            assert estimate.location == BLUE
            assert estimate.source is LocationSource.OBSERVED
            assert estimate.location_prob == 1.0

    def test_observed_child_gets_container_estimate(self):
        graph, updater, inference = build()
        apply(updater, 0, {0: [case(1), item(1)]})
        result = inference.run(now=0, complete=True)
        assert result.get(item(1)).container == case(1)
        assert result.get(case(1)).container is None


class TestSweep:
    def test_unobserved_object_inherits_from_observed_container(self):
        graph, updater, inference = build()
        apply(updater, 0, {0: [case(1), item(1)]})
        apply(updater, 1, {0: [case(1)]})  # item missed one epoch
        result = inference.run(now=1, complete=True)
        estimate = result.get(item(1))
        assert estimate.source is LocationSource.INFERRED
        assert estimate.location == BLUE

    def test_two_hop_propagation(self):
        # pallet--case--item; only the item is observed this epoch
        graph, updater, inference = build()
        apply(updater, 0, {0: [pallet(1), case(1), item(1)]})
        apply(updater, 1, {0: [item(1)]})
        result = inference.run(now=1, complete=True)
        assert result.get(case(1)).location == BLUE   # d = 1
        assert result.get(pallet(1)).location == BLUE  # d = 2

    def test_disconnected_node_decays_to_unknown(self):
        graph, updater, inference = build()
        apply(updater, 0, {0: [item(1)]})
        apply(updater, 20, {1: [item(2)]})  # unrelated observation
        result = inference.run(now=20, complete=True)
        estimate = result.get(item(1))
        assert estimate.location == UNKNOWN_COLOR
        assert estimate.source is LocationSource.INFERRED

    def test_complete_covers_entire_graph(self):
        graph, updater, inference = build()
        apply(updater, 0, {0: [case(1), item(1)], 1: [case(2)]})
        apply(updater, 1, {0: []})
        result = inference.run(now=1, complete=True)
        assert len(result) == 3


class TestPartialInference:
    def test_partial_limits_hops(self):
        params = InferenceParams(partial_hops=1)
        graph, updater, inference = build(params)
        apply(updater, 0, {0: [pallet(1), case(1), item(1)]})
        apply(updater, 1, {0: [item(1)]})
        result = inference.run(now=1, complete=False)
        assert result.get(item(1)) is not None   # d = 0
        assert result.get(case(1)) is not None   # d = 1
        assert result.get(pallet(1)) is None     # d = 2: beyond horizon

    def test_partial_withholds_unknown(self):
        graph, updater, inference = build()
        apply(updater, 0, {0: [case(1), item(1)]})
        # long gap, then only the case is seen (far from item)
        apply(updater, 50, {1: [case(1)]})
        result = inference.run(now=50, complete=False)
        estimate = result.get(item(1))
        assert estimate is not None
        assert estimate.source is LocationSource.WITHHELD

    def test_unvisited_nodes_absent_from_partial_result(self):
        graph, updater, inference = build()
        apply(updater, 0, {0: [item(1)]})
        apply(updater, 10, {1: [item(2)]})
        result = inference.run(now=10, complete=False)
        assert result.get(item(1)) is None  # disconnected: not visited

    def test_larger_hop_budget_reaches_further(self):
        params = InferenceParams(partial_hops=2)
        graph, updater, inference = build(params)
        apply(updater, 0, {0: [pallet(1), case(1), item(1)]})
        apply(updater, 1, {0: [item(1)]})
        result = inference.run(now=1, complete=False)
        assert result.get(pallet(1)) is not None


class TestPruningDuringInference:
    def test_weak_edges_removed(self):
        params = InferenceParams(prune_threshold=0.25)
        graph, updater, inference = build(params)
        apply(updater, 0, {0: [case(1), case(2), item(1)]})
        # case 2 separates; its edge to the item sees only negatives
        for epoch in range(1, 8):
            apply(updater, epoch, {0: [case(1), item(1)], 1: [case(2)]})
        inference.run(now=7, complete=True)
        node = graph.node(item(1))
        assert case(2) not in node.parents
        assert case(1) in node.parents

    def test_pruning_disabled_keeps_edges(self):
        params = InferenceParams(prune_threshold=0.0)
        graph, updater, inference = build(params)
        apply(updater, 0, {0: [case(1), case(2), item(1)]})
        for epoch in range(1, 8):
            apply(updater, epoch, {0: [case(1), case(2), item(1)]})
        inference.run(now=7, complete=True)
        assert len(graph.node(item(1)).parents) == 2


class TestDeterminism:
    def test_same_inputs_same_result(self):
        results = []
        for _ in range(2):
            graph, updater, inference = build()
            apply(updater, 0, {0: [case(1), case(2), item(1), item(2)]})
            apply(updater, 1, {0: [case(1)]})
            result = inference.run(now=1, complete=True)
            results.append(
                {e.tag: (e.location, e.container) for e in result}
            )
        assert results[0] == results[1]

"""Table III — per-epoch update and inference cost vs. graph size (Expt 5).

Reproduces: the paper's table of graph-update cost, inference cost and
total cost per epoch as the number of live objects grows (the paper sweeps
~25k to ~175k using a pallet every 4 s).  Expected shape: per-epoch costs
comfortably below the 1 s epoch on average, growing with the node count.

Two cost views are reported per milestone:

* **avg/epoch** — averaged over all epochs (partial inference most epochs,
  complete inference on the LCM grid), the "can it keep up" number the
  paper reports;
* **complete epoch** — the cost of the expensive complete-inference epochs
  alone, the worst case that must still fit in an epoch.

This is a pure-Python re-implementation of a Java prototype, so absolute
times differ from the paper's, and the update/inference split differs too
(our Fig.-4 statistics pass costs about as much as inference; the paper
found inference dominant).  Milestones are scaled down by default
(SPIRE_BENCH_SCALE=paper raises them).

The sweep itself lives in :mod:`repro.experiments.table3` (shared with the
``repro-spire bench`` subcommand and the CI perf-smoke job); this test
drives it once and checks the shape of the result — no pytest-benchmark
fixture involved.
"""

from repro.experiments.table3 import (
    DEFAULT_CASES_PER_PALLET,
    duration_for,
    run_sweep,
)

from benchmarks._shared import PAPER_SCALE, Table, get_sim, scale_config

MILESTONES = (
    [25_000, 55_000, 95_000, 135_000, 175_000] if PAPER_SCALE else [2_000, 4_000, 8_000, 12_000]
)
CASES_PER_PALLET = DEFAULT_CASES_PER_PALLET
DURATION = duration_for(MILESTONES, CASES_PER_PALLET)


def test_table3_update_and_inference_cost():
    sim = get_sim(scale_config(CASES_PER_PALLET, DURATION))
    sweep = run_sweep(sim, MILESTONES)
    rows = sweep["milestones"]

    table = Table(
        "Table III: per-epoch costs (s) of graph update and inference",
        [
            "num. objects",
            "edges",
            "update (avg)",
            "inference (avg)",
            "total (avg)",
            "total (complete epoch)",
        ],
    )
    for row in rows:
        table.add(
            row.nodes,
            row.edges,
            row.avg_update_s,
            row.avg_inference_s,
            row.avg_update_s + row.avg_inference_s,
            row.complete_epoch_s,
        )
    table.show()
    hits, misses = sweep["cache_hits"], sweep["cache_misses"]
    print(f"decision cache: {hits} hits / {misses} misses "
          f"({hits / max(hits + misses, 1):.1%})")

    assert len(rows) >= 3, "graph never reached enough milestones"
    # averaged per-epoch cost stays well inside the 1 s epoch at bench scale
    if not PAPER_SCALE:
        for row in rows:
            assert row.avg_update_s + row.avg_inference_s < 0.5
    # update and inference are the same order of magnitude (the paper found
    # inference dominant in its Java prototype; see the module docstring)
    for row in rows[1:]:
        ratio = row.avg_inference_s / max(row.avg_update_s, 1e-9)
        assert 0.2 < ratio < 10.0
    # costs grow with the graph
    first, last = rows[0], rows[-1]
    assert (last.avg_update_s + last.avg_inference_s) > (
        first.avg_update_s + first.avg_inference_s
    )

"""Command-line interface for the SPIRE substrate.

Four subcommands cover the trace lifecycle:

* ``simulate`` — generate a synthetic warehouse trace and persist it (raw
  binary readings + a JSON sidecar with the configuration);
* ``interpret`` — run SPIRE over a persisted trace, writing the compressed
  event stream and printing summary statistics;
* ``evaluate`` — simulate + interpret + score in one go (accuracy,
  compression ratio, optional SMURF comparison);
* ``query`` — answer point/path queries over a persisted event stream.

Examples::

    repro-spire simulate --duration 1200 --read-rate 0.85 -o trace.bin
    repro-spire interpret trace.bin -o events.bin --compression 2
    repro-spire evaluate --duration 1800 --read-rate 0.7 --smurf
    repro-spire query events.bin --object case:3 --at 500
    repro-spire query events.bin --object case:3 --path
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.baselines.smurf import SmurfPipeline
from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.events import codec as event_codec
from repro.metrics.accuracy import AccuracyAccumulator, ScoringPolicy
from repro.metrics.sizing import compression_ratio
from repro.model.objects import PackagingLevel, TagId
from repro.query.index import EventStreamIndex
from repro.readers import codec as reading_codec
from repro.simulator.config import SimulationConfig
from repro.simulator.layout import WarehouseLayout
from repro.simulator.warehouse import WarehouseSimulator


def _sidecar_path(trace_path: Path) -> Path:
    return trace_path.with_suffix(trace_path.suffix + ".json")


def parse_tag(text: str) -> TagId:
    """Parse a ``level:serial`` tag spec, e.g. ``case:3``."""
    try:
        level_name, serial_text = text.split(":")
        level = PackagingLevel[level_name.upper()]
        return TagId(level, int(serial_text))
    except (ValueError, KeyError) as exc:
        raise argparse.ArgumentTypeError(
            f"invalid tag {text!r}; expected e.g. 'item:5', 'case:3', 'pallet:1'"
        ) from exc


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = SimulationConfig()
    parser.add_argument("--duration", type=int, default=1800, help="epochs to simulate")
    parser.add_argument("--pallet-period", type=int, default=300)
    parser.add_argument("--cases-per-pallet", type=int, default=defaults.cases_per_pallet_min)
    parser.add_argument("--items-per-case", type=int, default=8)
    parser.add_argument("--read-rate", type=float, default=defaults.read_rate)
    parser.add_argument("--shelf-period", type=int, default=defaults.shelf_read_period)
    parser.add_argument("--num-shelves", type=int, default=defaults.num_shelves)
    parser.add_argument("--shelving-time", type=int, default=600)
    parser.add_argument("--anomaly-period", type=int, default=0)
    parser.add_argument("--seed", type=int, default=defaults.seed)


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    return SimulationConfig(
        duration=args.duration,
        pallet_period=args.pallet_period,
        cases_per_pallet_min=args.cases_per_pallet,
        cases_per_pallet_max=args.cases_per_pallet,
        items_per_case=args.items_per_case,
        read_rate=args.read_rate,
        shelf_read_period=args.shelf_period,
        num_shelves=args.num_shelves,
        shelving_time_mean=args.shelving_time,
        shelving_time_jitter=max(1, args.shelving_time // 5),
        anomaly_period=args.anomaly_period,
        seed=args.seed,
    )


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    """Generate a synthetic trace and persist it with its config sidecar."""
    config = _config_from_args(args)
    sim = WarehouseSimulator(config).run()
    trace_path = Path(args.output)
    with trace_path.open("wb") as fp:
        written = reading_codec.write_trace(sim.stream, fp)
    with _sidecar_path(trace_path).open("w") as fp:
        json.dump(dataclasses.asdict(config), fp, indent=2)
    print(
        f"wrote {sim.stream.total_readings} readings ({written} bytes) over "
        f"{len(sim.stream)} epochs to {trace_path}"
    )
    print(
        f"pallets: {sim.pallets_arrived} in / {sim.pallets_assembled} assembled; "
        f"peak objects {sim.peak_objects}; removals {len(sim.removals)}"
    )
    return 0


def cmd_interpret(args: argparse.Namespace) -> int:
    """Run SPIRE over a persisted trace and write the event stream."""
    trace_path = Path(args.trace)
    sidecar = _sidecar_path(trace_path)
    if not sidecar.exists():
        print(f"error: missing deployment sidecar {sidecar}", file=sys.stderr)
        return 2
    config = SimulationConfig(**json.loads(sidecar.read_text()))
    layout = WarehouseLayout.build(config)
    with trace_path.open("rb") as fp:
        stream = reading_codec.read_trace(fp)

    deployment = Deployment.from_readers(layout.readers, layout.registry)
    spire = Spire(
        deployment,
        InferenceParams(),
        compression_level=args.compression,
    )
    messages = []
    for epoch_readings in stream:
        messages.extend(spire.process_epoch(epoch_readings).messages)

    with Path(args.output).open("wb") as fp:
        written = event_codec.write_stream(messages, fp)
    ratio = compression_ratio(messages, stream.raw_bytes)
    print(
        f"interpreted {stream.total_readings} readings -> {len(messages)} events "
        f"({written} bytes, {ratio:.1%} of raw) to {args.output}"
    )
    print(f"objects tracked at end: {spire.tracked_objects}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Simulate, interpret and score in one go (optionally vs. SMURF)."""
    config = _config_from_args(args)
    sim = WarehouseSimulator(config).run()
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    exclude = frozenset({sim.layout.entry_door.color})

    spire = Spire(deployment, InferenceParams(), compression_level=args.compression)
    accuracy = AccuracyAccumulator(policy=ScoringPolicy.ALL, exclude_colors=exclude)
    messages = []
    for epoch_readings, snapshot in zip(sim.stream, sim.truth.snapshots):
        messages.extend(spire.process_epoch(epoch_readings).messages)
        accuracy.score_epoch(spire, snapshot)

    print(f"trace: {sim.stream.total_readings} readings, {len(sim.stream)} epochs, "
          f"read rate {config.read_rate}")
    print(f"SPIRE (level {args.compression}):")
    print(f"  location error     {accuracy.location_error_rate:8.3%}")
    print(f"  containment error  {accuracy.containment_error_rate:8.3%}")
    print(f"  compression ratio  {compression_ratio(messages, sim.stream.raw_bytes):8.3%}")
    print(f"  output events      {len(messages):8d}")

    if args.smurf:
        smurf = SmurfPipeline(deployment)
        smurf_messages = []
        errors = total = 0
        for epoch_readings, snapshot in zip(sim.stream, sim.truth.snapshots):
            smurf_messages.extend(smurf.process_epoch(epoch_readings))
            for tag, location in snapshot.locations.items():
                if location.color in exclude:
                    continue
                total += 1
                if smurf.location_of(tag) != location.color:
                    errors += 1
        print("SMURF baseline (location only):")
        print(f"  location error     {errors / total if total else 0.0:8.3%}")
        print(f"  compression ratio  {compression_ratio(smurf_messages, sim.stream.raw_bytes):8.3%}")
        print(f"  output events      {len(smurf_messages):8d}")
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    """Expand a level-2 event stream file to its level-1 equivalent."""
    from repro.compression.decompress import decompress_stream

    with Path(args.events).open("rb") as fp:
        messages = list(event_codec.read_stream(fp))
    expanded = decompress_stream(messages)
    with Path(args.output).open("wb") as fp:
        written = event_codec.write_stream(expanded, fp)
    print(
        f"decompressed {len(messages)} -> {len(expanded)} messages "
        f"({written} bytes) to {args.output}"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Answer point/path/tree queries over a persisted event stream."""
    with Path(args.events).open("rb") as fp:
        messages = list(event_codec.read_stream(fp))
    index = EventStreamIndex(messages, decompress=args.decompress)

    if args.path:
        for interval in index.path(args.object):
            ve = "now" if interval.ve == float("inf") else int(interval.ve)
            print(f"L{interval.value}: [{interval.vs}, {ve})")
        for report in index.missing_reports(args.object):
            print(f"reported missing at {report}")
        return 0

    if args.at is None:
        print("error: provide --at EPOCH or --path", file=sys.stderr)
        return 2
    place = index.location_of(args.object, args.at)
    container = index.container_of(args.object, args.at)
    top = index.top_level_container(args.object, args.at)
    print(f"object     {args.object}")
    print(f"location   {'L' + str(place) if place is not None else 'unknown'}")
    print(f"container  {container if container is not None else '-'}")
    if top != args.object:
        print(f"top-level  {top}")
    if index.is_missing(args.object, args.at):
        print("status     reported missing")
    if args.tree:
        print("containment tree:")
        print(index.render_tree(top, args.at))
    return 0


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-spire argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-spire",
        description="SPIRE: RFID stream interpretation and compression",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="generate a synthetic trace")
    _add_config_arguments(simulate)
    simulate.add_argument("-o", "--output", required=True, help="trace output path")
    simulate.set_defaults(func=cmd_simulate)

    interpret = subparsers.add_parser("interpret", help="run SPIRE over a trace")
    interpret.add_argument("trace", help="trace file written by 'simulate'")
    interpret.add_argument("-o", "--output", required=True, help="event stream output path")
    interpret.add_argument("--compression", type=int, choices=(1, 2), default=2)
    interpret.set_defaults(func=cmd_interpret)

    evaluate = subparsers.add_parser("evaluate", help="simulate + interpret + score")
    _add_config_arguments(evaluate)
    evaluate.add_argument("--compression", type=int, choices=(1, 2), default=2)
    evaluate.add_argument("--smurf", action="store_true", help="also run the SMURF baseline")
    evaluate.set_defaults(func=cmd_evaluate)

    decompress = subparsers.add_parser(
        "decompress", help="expand a level-2 event stream to level-1 (§V-C)"
    )
    decompress.add_argument("events", help="level-2 event stream file")
    decompress.add_argument("-o", "--output", required=True, help="level-1 output path")
    decompress.set_defaults(func=cmd_decompress)

    query = subparsers.add_parser("query", help="query a persisted event stream")
    query.add_argument("events", help="event stream file written by 'interpret'")
    query.add_argument("--object", type=parse_tag, required=True, help="e.g. case:3")
    query.add_argument("--at", type=int, help="epoch to query")
    query.add_argument("--path", action="store_true", help="print the full trajectory")
    query.add_argument(
        "--tree",
        action="store_true",
        help="with --at: print the containment tree of the object's top-level container",
    )
    query.add_argument(
        "--decompress",
        action="store_true",
        help="treat the input as a level-2 stream and decompress first",
    )
    query.set_defaults(func=cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Shared workloads, caching and reporting for the paper's benchmarks.

Every benchmark regenerates one table or figure of Section VI.  Workloads
are scaled-down versions of the paper's traces so the whole suite runs in
minutes on a laptop; set ``SPIRE_BENCH_SCALE=paper`` for paper-scale runs
(hours).  Simulated traces and pipeline runs are memoised per pytest
session, so benchmarks that share a trace (e.g. Figs. 11(a)–(c)) only pay
for it once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.baselines.smurf import SmurfParams
from repro.core.params import InferenceParams
from repro.experiments.runner import (
    SmurfRunReport,
    SpireRunReport,
    ground_truth_stream,
    run_smurf,
    run_spire,
)
from repro.metrics.accuracy import ScoringPolicy
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import SimulationResult, WarehouseSimulator

PAPER_SCALE = os.environ.get("SPIRE_BENCH_SCALE", "").lower() == "paper"

_SIM_CACHE: dict = {}
_SPIRE_CACHE: dict = {}
_SMURF_CACHE: dict = {}
_TRUTH_CACHE: dict = {}


def accuracy_config(
    shelf_read_period: int = 60,
    read_rate: float = 0.85,
    anomaly_period: int = 0,
    seed: int = 7,
) -> SimulationConfig:
    """The Section VI-B accuracy workload (scaled down by default).

    Paper values: 3 h duration, 6 pallets/hour, 5 cases/pallet, 20
    items/case, 1 h shelving.  The scaled version keeps the same structure
    with a ~6x shorter timeline and smaller cases so a full parameter sweep
    stays laptop-friendly.
    """
    if PAPER_SCALE:
        return SimulationConfig(
            duration=3 * 3600,
            pallet_period=600,
            cases_per_pallet_min=5,
            cases_per_pallet_max=5,
            items_per_case=20,
            read_rate=read_rate,
            shelf_read_period=shelf_read_period,
            num_shelves=4,
            shelving_time_mean=3600,
            shelving_time_jitter=600,
            anomaly_period=anomaly_period,
            seed=seed,
        )
    return SimulationConfig(
        duration=1800,
        pallet_period=200,
        cases_per_pallet_min=4,
        cases_per_pallet_max=4,
        items_per_case=6,
        read_rate=read_rate,
        shelf_read_period=shelf_read_period,
        num_shelves=3,
        shelving_time_mean=600,
        shelving_time_jitter=120,
        anomaly_period=anomaly_period,
        seed=seed,
    )


def output_config(read_rate: float, seed: int = 17) -> SimulationConfig:
    """The Section VI-D output/compression workload (16 h trace, scaled)."""
    if PAPER_SCALE:
        return SimulationConfig(
            duration=16 * 3600,
            pallet_period=240,
            cases_per_pallet_min=5,
            cases_per_pallet_max=8,
            items_per_case=20,
            read_rate=read_rate,
            shelf_read_period=60,
            num_shelves=4,
            shelving_time_mean=3600,
            shelving_time_jitter=600,
            seed=seed,
        )
    return SimulationConfig(
        duration=2400,
        pallet_period=150,
        cases_per_pallet_min=4,
        cases_per_pallet_max=5,
        items_per_case=6,
        read_rate=read_rate,
        shelf_read_period=30,
        num_shelves=3,
        shelving_time_mean=500,
        shelving_time_jitter=100,
        seed=seed,
    )


def scale_config(cases_per_pallet: int, duration: int, seed: int = 41) -> SimulationConfig:
    """High-injection workload for Table III / Fig. 10 graph growth.

    The injection rate is chosen so the receiving belt (one case at a time,
    one epoch each) keeps up — cases_per_pallet/pallet_period must stay
    below 1 case/epoch or the dock queue (and the dock reader's quadratic
    edge-creation cost) grows without bound.
    """
    return SimulationConfig(
        duration=duration,
        pallet_period=2 * cases_per_pallet,
        cases_per_pallet_min=cases_per_pallet,
        cases_per_pallet_max=cases_per_pallet,
        items_per_case=20,
        read_rate=0.85,
        shelf_read_period=60,
        num_shelves=8,
        shelving_time_mean=10 * duration,  # nothing leaves: the graph grows
        shelving_time_jitter=0,
        belt_dwell=1,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# memoised runs
# ---------------------------------------------------------------------------


def get_sim(config: SimulationConfig) -> SimulationResult:
    if config not in _SIM_CACHE:
        _SIM_CACHE[config] = WarehouseSimulator(config).run()
    return _SIM_CACHE[config]


def get_spire(
    config: SimulationConfig,
    params: InferenceParams = InferenceParams(),
    compression_level: int = 2,
    policies: tuple[ScoringPolicy, ...] = (ScoringPolicy.ALL,),
    score: bool = True,
) -> SpireRunReport:
    key = (config, params, compression_level, policies, score)
    if key not in _SPIRE_CACHE:
        _SPIRE_CACHE[key] = run_spire(
            get_sim(config),
            params=params,
            compression_level=compression_level,
            policies=policies,
            score=score,
        )
    return _SPIRE_CACHE[key]


def get_smurf(config: SimulationConfig, score: bool = True) -> SmurfRunReport:
    key = (config, score)
    if key not in _SMURF_CACHE:
        _SMURF_CACHE[key] = run_smurf(get_sim(config), SmurfParams(), score=score)
    return _SMURF_CACHE[key]


def get_truth_stream(config: SimulationConfig) -> list:
    if config not in _TRUTH_CACHE:
        _TRUTH_CACHE[config] = ground_truth_stream(get_sim(config))
    return _TRUTH_CACHE[config]


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


@dataclass
class Table:
    """Paper-style results table printed beneath each benchmark."""

    title: str
    columns: list[str]
    rows: list[list] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.rows is None:
            self.rows = []

    def add(self, *row) -> None:
        self.rows.append(list(row))

    def render(self) -> str:
        widths = [
            max(len(str(c)), *(len(_fmt(r[i])) for r in self.rows)) if self.rows else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths)))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)

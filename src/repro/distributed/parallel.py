"""Multi-core sharded execution: persistent zone workers.

:class:`ParallelCoordinator` runs the same contract as the serial
:class:`~repro.distributed.coordinator.Coordinator`, but each zone's
substrate lives inside a **persistent worker process**.  Workers are
spawned once; zone state stays resident between epochs, so the per-epoch
cost is two compact binary frames per **worker** on a pipe (all its
zones' pre-partitioned readings out, their event messages back) — never a
pickled graph.

Determinism is the design constraint: the merged event stream is
**byte-identical** to the serial coordinator's.  The protocol preserves
every ordering the serial code path depends on:

* migration detection runs coordinator-side over the same structures in
  the same order; releases and adoptions are batched **per zone in global
  migration order**, which commutes with the serial interleaving (a
  release touches only the released object's state, an adoption only
  appends to the target zone's structures);
* release closures are re-assembled into global migration order before
  any zone output;
* zone outputs are concatenated in sorted-zone order (the serial merge
  order) — the fan-in receives one batched reply per worker (each worker
  answers its pipe FIFO) and then merges per zone in that order;
* epoch frames preserve reader/tag insertion order, so each worker's
  deduplication sees exactly the bytes the in-process substrate would.

Checkpoints move into the workers: the coordinator sets a flag on the
epoch message when a zone's replay buffer reaches the checkpoint
interval, and the worker returns a checkpoint blob (fast codec by
default) captured right after it processed the epoch — the epoch loop no
longer stalls on serialization.  ``fail_zone`` / ``recover_zone`` keep
their semantics: recovery rebuilds the zone substrate coordinator-side
from the last checkpoint plus the replay buffer (shared code with the
serial coordinator) and installs the rebuilt state into the worker —
respawning the worker process first if it died.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.checkpoint import dumps_spire, loads_spire
from repro.distributed import wire
from repro.distributed.coordinator import (
    Coordinator,
    EpochResult,
    Zone,
    _ZoneCheckpoint,
)
from repro.events.messages import EventMessage
from repro.faults.warnings import WarningKind
from repro.model.objects import TagId
from repro.obs.metrics import MetricRegistry, snapshot_from_json, snapshot_to_json
from repro.readers.codec import decode_epoch_frame, encode_epoch_frame
from repro.readers.stream import EpochReadings


def handle_request(
    data: bytes,
    spires: dict[int, object],
    registries: dict[int, MetricRegistry],
) -> bytes | None:
    """Serve one coordinator request against resident zone state.

    The transport-agnostic worker core, shared by the pipe worker loop
    (:func:`_worker_main`) and the TCP daemon
    (:class:`repro.distributed.remote.WorkerDaemon`).  Returns the reply
    bytes, or ``None`` for :data:`wire.MSG_STOP` (the caller acknowledges
    and shuts down).  Exceptions propagate: the caller decides how to
    surface them (the pipe worker replies :data:`wire.MSG_ERROR` and
    dies; the daemon replies and drops its zone state).
    """
    msg_type = data[0] if data else 0
    if msg_type == wire.MSG_EPOCH:
        results = []
        for zone_index, flags, frame in wire.decode_epoch_batch(data):
            readings, _ = decode_epoch_frame(frame)
            spire = spires[zone_index]
            start = time.perf_counter()
            output = spire.process_epoch(readings)
            busy_s = time.perf_counter() - start
            checkpoint = None
            checkpoint_s = 0.0
            if flags & wire.FLAG_CHECKPOINT:
                codec = "pickle" if flags & wire.FLAG_CHECKPOINT_PICKLE else "fast"
                start = time.perf_counter()
                checkpoint = dumps_spire(spire, codec=codec)
                checkpoint_s = time.perf_counter() - start
            registry = registries.get(zone_index)
            metrics_blob = (
                snapshot_to_json(registry.snapshot()) if registry is not None else None
            )
            results.append(
                (
                    zone_index,
                    wire.encode_epoch_result(
                        output.messages,
                        output.departed,
                        busy_s,
                        checkpoint_s,
                        checkpoint,
                        metrics_blob,
                    ),
                )
            )
        return wire.encode_epoch_batch_result(results)
    if msg_type == wire.MSG_RELEASE:
        zone_index, now, tags = wire.decode_release(data)
        spire = spires[zone_index]
        releases = []
        for tag in tags:
            record, closing = spire.release(tag, now)
            releases.append((wire.encode_record(record), closing))
        return wire.encode_release_result(releases)
    if msg_type == wire.MSG_ADOPT:
        zone_index, now, records = wire.decode_adopt(data)
        spire = spires[zone_index]
        for record in records:
            spire.adopt(record, now)
        return wire.encode_ok()
    if msg_type == wire.MSG_QUERY:
        zone_index, kind, tag = wire.decode_query(data)
        spire = spires[zone_index]
        if kind == wire.QUERY_LOCATION:
            value = spire.location_of(tag)
        elif kind == wire.QUERY_CONTAINER:
            container = spire.container_of(tag)
            value = 0 if container is None else container.key()
        else:
            raise ValueError(f"unknown query kind {kind}")
        return wire.encode_query_result(value)
    if msg_type == wire.MSG_INSTALL:
        zone_index, checkpoint, zone_id, metrics_on, seed = wire.decode_install(data)
        spire = loads_spire(checkpoint)
        if metrics_on:
            # checkpoints never carry registries: build the zone's
            # registry here, seeded so totals survive reinstalls
            registry = MetricRegistry(const_labels={"zone": zone_id})
            if seed:
                registry.restore(snapshot_from_json(seed))
            registries[zone_index] = registry
            spire.attach_metrics(registry)
        else:
            registries.pop(zone_index, None)
        spires[zone_index] = spire
        return wire.encode_ok()
    if msg_type == wire.MSG_STOP:
        return None
    raise ValueError(f"unknown message type {msg_type}")


def _worker_main(conn) -> None:
    """Worker process: serve zone substrates over a duplex pipe, FIFO."""
    spires: dict[int, object] = {}
    registries: dict[int, MetricRegistry] = {}
    while True:
        try:
            data = conn.recv_bytes()
        except EOFError:
            return
        try:
            reply = handle_request(data, spires, registries)
        except BaseException:
            conn.send_bytes(wire.encode_error(traceback.format_exc()))
            return
        if reply is None:  # MSG_STOP: acknowledge and shut down
            conn.send_bytes(wire.encode_ok())
            return
        conn.send_bytes(reply)


@dataclass
class WorkerStats:
    """Observability counters for one coordinated run (all zones)."""

    epochs: int = 0
    bytes_to_workers: int = 0
    bytes_from_workers: int = 0
    fanout_s: float = 0.0  #: time spent encoding + writing requests
    fanin_wait_s: float = 0.0  #: time blocked waiting on worker replies
    checkpoint_s: float = 0.0  #: in-worker checkpoint time (sum)
    checkpoints: int = 0
    busy_s: dict[str, float] = field(default_factory=dict)  #: per-zone compute
    zone_epochs: dict[str, int] = field(default_factory=dict)

    def summary_lines(self) -> list[str]:
        """Human-readable block for the ``bench`` subcommand."""
        lines = [
            f"epochs coordinated      {self.epochs}",
            f"bytes over pipes        {self.bytes_to_workers} out / "
            f"{self.bytes_from_workers} back",
            f"fan-out / fan-in wait   {self.fanout_s:.3f}s / {self.fanin_wait_s:.3f}s",
            f"checkpoints (in-worker) {self.checkpoints} in {self.checkpoint_s:.3f}s",
        ]
        for zone_id in sorted(self.busy_s):
            epochs = self.zone_epochs.get(zone_id, 0) or 1
            lines.append(
                f"zone {zone_id:<12} busy {self.busy_s[zone_id]:.3f}s "
                f"({1e3 * self.busy_s[zone_id] / epochs:.3f} ms/epoch)"
            )
        return lines


class WorkerFailure(wire.WireError):
    """A worker failed mid-epoch; the coordinator failed its zones over.

    Raised by :meth:`ParallelCoordinator.process_epoch` when a worker
    reports :data:`wire.MSG_ERROR` (or its pipe breaks) during the epoch
    fan-in.  The torn epoch couples all zones through merge order, so
    every live zone is marked failed for a global resync.  ``messages``
    holds what the caller must splice into the merged stream to keep it
    well-formed (the epoch's already-produced handoff closures plus the
    interval closures from failing each zone); recover the zones with
    :meth:`~ParallelCoordinator.recover_zone` and continue.
    """

    def __init__(
        self, message: str, failed_zones: list[str], messages: list[EventMessage]
    ) -> None:
        super().__init__(message)
        self.failed_zones = failed_zones
        self.messages = messages


class _Worker:
    """Coordinator-side handle to one worker process."""

    def __init__(self, ctx, index: int) -> None:
        self.index = index
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True, name=f"spire-worker-{index}"
        )
        self.process.start()
        child_conn.close()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def send_bytes(self, payload: bytes) -> None:
        self.conn.send_bytes(payload)

    def recv_bytes(self) -> bytes:
        return self.conn.recv_bytes()

    def kill(self, warn=None) -> None:
        """Stop the process, escalating terminate -> kill -> quarantine.

        ``terminate`` (SIGTERM) can be absorbed by a worker wedged in
        uninterruptible I/O; ``join(timeout)`` then returns with the
        process still alive and the old code leaked it as a zombie.  Now
        SIGKILL follows, and if even that does not reap the process
        within the timeout, ``warn`` (a ``detail -> None`` callable) is
        invoked so the leak lands in the quarantine instead of vanishing.
        """
        process = self.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
            if process.is_alive() and warn is not None:
                warn(
                    f"worker {self.index} (pid {process.pid}) survived "
                    "terminate and kill; leaking it as a zombie"
                )
        self.conn.close()


class ParallelCoordinator(Coordinator):
    """Drop-in parallel variant of :class:`Coordinator`.

    Args:
        zones: The site partition, exactly as for the serial coordinator.
        workers: Number of worker processes (clamped to the zone count;
            default: one per zone).  Zones are assigned round-robin in
            sorted-zone-id order.
        start_method: ``multiprocessing`` start method; default ``"fork"``
            where available (workers inherit the loaded library), else the
            platform default.

    All other arguments match the serial coordinator.  The merged event
    stream, handoffs, warnings, ownership and query results are
    byte-for-byte identical to a serial run over the same input.
    """

    def __init__(
        self,
        zones: Iterable[Zone],
        strict: bool = False,
        checkpoint_interval: int | None = None,
        checkpoint_codec: str = "fast",
        workers: int | None = None,
        start_method: str | None = None,
        metrics: MetricRegistry | None = None,
    ) -> None:
        super().__init__(
            zones,
            strict=strict,
            checkpoint_interval=checkpoint_interval,
            checkpoint_codec=checkpoint_codec,
            metrics=metrics,
        )
        ordered = sorted(self.zones)
        self._zone_index: dict[str, int] = {z: i for i, z in enumerate(ordered)}
        if workers is None:
            workers = len(ordered)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.num_workers = min(workers, len(ordered))
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        self._worker_of_zone: dict[str, _Worker] = {}
        self._workers: list[_Worker] = []
        self._closed = False
        self.stats = WorkerStats()
        #: latest cumulative registry snapshot each worker shipped, by zone
        #: (replaced every epoch — never summed, so no double counting)
        self._zone_snapshots: dict[str, dict] = {}

        try:
            self._workers = self._spawn_workers()
            for i, zone_id in enumerate(ordered):
                self._worker_of_zone[zone_id] = self._workers[i % self.num_workers]
            # ship each zone's pristine substrate to its worker, then drop
            # the in-process copy: worker state is authoritative from here
            for zone_id in ordered:
                blob = dumps_spire(self.zones[zone_id].spire, codec="fast")
                self._send(zone_id, wire.encode_install(
                    self._zone_index[zone_id], blob, **self._install_metrics(zone_id)
                ))
            for zone_id in ordered:
                wire.expect_ok(self._recv(zone_id))
            for zone_id in ordered:
                self.zones[zone_id].spire = None  # type: ignore[assignment]
        except BaseException:
            self.close()
            raise

    def _spawn_workers(self) -> list:
        """Create the worker pool (overridden by the remote transport)."""
        return [_Worker(self._ctx, i) for i in range(self.num_workers)]

    def _install_metrics(self, zone_id: str, seed: dict | None = None) -> dict:
        """Keyword arguments telling an install to set up zone telemetry."""
        if self.metrics is None:
            return {"zone_id": zone_id}
        if seed is None:
            seed = self._zone_registries[zone_id].snapshot()
        self._zone_snapshots[zone_id] = seed
        return {
            "zone_id": zone_id,
            "metrics": True,
            "metrics_seed": snapshot_to_json(seed),
        }

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _send(self, zone_id: str, payload: bytes) -> None:
        self._worker_of_zone[zone_id].send_bytes(payload)
        self.stats.bytes_to_workers += len(payload)

    def _recv(self, zone_id: str) -> bytes:
        data = self._worker_of_zone[zone_id].recv_bytes()
        self.stats.bytes_from_workers += len(data)
        return data

    def _kill_warn(self, detail: str) -> None:
        """Quarantine-warning sink for :meth:`_Worker.kill` escalation."""
        self.quarantine.warn(WarningKind.WORKER_ZOMBIE, self._last_epoch or 0, detail=detail)

    def close(self) -> None:
        """Stop all workers; the coordinator is unusable afterwards."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                if worker.alive:
                    worker.send_bytes(wire.encode_stop())
                    worker.recv_bytes()
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                worker.kill(warn=self._kill_warn)

    def __enter__(self) -> "ParallelCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # the parallel epoch loop
    # ------------------------------------------------------------------

    def process_epoch(self, readings: EpochReadings) -> EpochResult:
        """Coordinate one epoch: fan out to workers, fan in in merge order."""
        now = readings.epoch
        self._last_epoch = now
        warnings_before = len(self.quarantine.warnings)
        per_zone = self._split_by_zone(readings)
        result = EpochResult(epoch=now, messages=[])

        # migration detection is coordinator-local: it reads only the
        # ownership map and the split readings, in the serial iteration
        # order, so the detected list (and its order) matches exactly
        migrations: list[tuple[TagId, str, str, bool]] = []
        for zone_id, zone_readings in per_zone.items():
            if zone_id in self._failed:
                continue
            for tag in zone_readings.tags_seen():
                owner = self._owner.get(tag)
                if owner is None:
                    self._owner[tag] = zone_id
                elif owner != zone_id:
                    migrations.append((tag, owner, zone_id, owner not in self._failed))
                    self._owner[tag] = zone_id
                    result.handoffs.append((tag, owner, zone_id))
        if migrations:
            self._apply_migrations(migrations, now, result.messages)

        # fan out: one batch per worker carrying all of its live zones'
        # shares (a single pipe round-trip per worker per epoch); the
        # checkpoint decision replicates the serial post-epoch rule (the
        # replay buffer was appended pre-fan-out, so it is decidable now)
        start = time.perf_counter()
        order = sorted(per_zone)
        checkpointing: set[str] = set()
        batches: dict[int, tuple[_Worker, list[tuple[int, int, bytes]]]] = {}
        for zone_id in order:
            if zone_id in self._failed:
                continue
            flags = 0
            if (
                self.failover_enabled
                and len(self._replay[zone_id]) >= self._checkpoint_interval  # type: ignore[operator]
            ):
                flags = wire.FLAG_CHECKPOINT
                if self.checkpoint_codec == "pickle":
                    flags |= wire.FLAG_CHECKPOINT_PICKLE
                checkpointing.add(zone_id)
            frame = encode_epoch_frame(per_zone[zone_id])
            worker = self._worker_of_zone[zone_id]
            batches.setdefault(worker.index, (worker, []))[1].append(
                (self._zone_index[zone_id], flags, frame)
            )
        for worker, entries in batches.values():
            payload = wire.encode_epoch_batch(entries)
            worker.send_bytes(payload)
            self.stats.bytes_to_workers += len(payload)
        self.stats.fanout_s += time.perf_counter() - start

        # fan in: one reply per worker (each worker answers FIFO), then
        # merge per zone in the serial merge order (sorted zone ids).
        # Every worker is drained before any error is surfaced — raising
        # at the first bad reply would leave the other pipes holding
        # answered requests and desync their FIFO on the next epoch.
        start = time.perf_counter()
        results_by_index: dict[int, bytes] = {}
        failures: list[str] = []
        failed_workers: list[_Worker] = []
        for worker, _entries in batches.values():
            try:
                data = worker.recv_bytes()
            except (OSError, EOFError) as exc:
                failures.append(f"worker {worker.index} connection lost: {exc!r}")
                failed_workers.append(worker)
                continue
            self.stats.bytes_from_workers += len(data)
            if data and data[0] == wire.MSG_ERROR:
                failures.append(
                    f"worker {worker.index} failed:\n"
                    + data[1:].decode("utf-8", "replace")
                )
                failed_workers.append(worker)
                continue
            for zone_index, zone_result in wire.decode_epoch_batch_result(data):
                results_by_index[zone_index] = zone_result
        self.stats.fanin_wait_s += time.perf_counter() - start
        if failures:
            raise self._epoch_failure(failures, now, result, failed_workers)
        for zone_id in order:
            if zone_id in self._failed:
                continue
            (
                messages, departed, busy_s, checkpoint_s, checkpoint, metrics_blob,
            ) = wire.decode_epoch_result(results_by_index[self._zone_index[zone_id]])
            result.messages.extend(messages)
            for tag in departed:
                self._owner.pop(tag, None)
            self.stats.busy_s[zone_id] = self.stats.busy_s.get(zone_id, 0.0) + busy_s
            self.stats.zone_epochs[zone_id] = self.stats.zone_epochs.get(zone_id, 0) + 1
            if metrics_blob is not None:
                # cumulative snapshot: replace, never sum
                self._zone_snapshots[zone_id] = snapshot_from_json(metrics_blob)
            if zone_id in checkpointing:
                if checkpoint is None:
                    raise wire.WireError(f"zone {zone_id!r} returned no checkpoint")
                self._checkpoints[zone_id] = _ZoneCheckpoint(
                    epoch=now,
                    data=checkpoint,
                    metrics=self._zone_snapshots.get(zone_id),
                )
                self._replay[zone_id] = []
                self.stats.checkpoint_s += checkpoint_s
                self.stats.checkpoints += 1
                if self.metrics is not None:
                    self._m_checkpoints.inc()
                    self._m_checkpoint_seconds.observe(checkpoint_s)

        if self.failover_enabled:
            self._track_messages(result.messages)
        self.stats.epochs += 1
        if self.metrics is not None:
            self._m_epochs.inc()
            self._m_handoffs.inc(len(result.handoffs))
        result.warnings = self.quarantine.warnings[warnings_before:]
        return result

    def _apply_migrations(
        self,
        migrations: list[tuple[TagId, str, str, bool]],
        now: int,
        out_messages: list[EventMessage],
    ) -> None:
        """Release and adopt migrating tags, preserving serial ordering.

        Releases are batched per owner zone and adoptions per target zone,
        each batch in global migration order.  This commutes with the
        serial one-at-a-time interleaving: a release only reads/removes
        the released object's own state, and an adoption only appends to
        the target zone's structures, so per-zone order is the only order
        that matters — and it is preserved.  The closing messages are
        re-assembled into global migration order before being emitted.
        """
        release_plan: dict[str, list[int]] = {}  # owner zone -> migration indices
        for i, (tag, owner, _target, needs_release) in enumerate(migrations):
            if needs_release:
                release_plan.setdefault(owner, []).append(i)

        for owner, indices in release_plan.items():
            tags = [migrations[i][0] for i in indices]
            self._send(owner, wire.encode_release(self._zone_index[owner], now, tags))

        closings: dict[int, list[EventMessage]] = {}
        records: dict[int, bytes] = {}
        start = time.perf_counter()
        for owner, indices in release_plan.items():
            releases = wire.decode_release_result(self._recv(owner))
            for i, (record, closing) in zip(indices, releases):
                records[i] = record
                closings[i] = closing
        self.stats.fanin_wait_s += time.perf_counter() - start

        adopt_plan: dict[str, list[bytes]] = {}  # target zone -> records in order
        for i, (tag, _owner, target, needs_release) in enumerate(migrations):
            out_messages.extend(closings.get(i, ()))
            if needs_release:
                record = records[i]
            else:
                # the owner crashed: re-adopt with no exported knowledge
                record = wire.encode_record({"tag": tag})
            adopt_plan.setdefault(target, []).append(record)

        for target, target_records in adopt_plan.items():
            self._send(
                target, wire.encode_adopt(self._zone_index[target], now, target_records)
            )
        start = time.perf_counter()
        for target in adopt_plan:
            wire.expect_ok(self._recv(target))
        self.stats.fanin_wait_s += time.perf_counter() - start

    def _epoch_failure(
        self,
        failures: list[str],
        now: int,
        result: EpochResult,
        failed_workers: Iterable["_Worker"] = (),
    ) -> wire.WireError:
        """Build the exception for a torn epoch, failing zones over first.

        A worker died (or reported an error) after the epoch's migrations
        ran and after the surviving workers processed their shares, so no
        zone's view of this epoch can be merged consistently.  With
        failover enabled every live zone is failed — closing its open
        intervals — and the :class:`WorkerFailure` carries the messages
        the caller must splice into the stream (the epoch's handoff
        closures, which were never emitted, plus the fail closures).
        Without failover there is nothing to recover from; the raw
        :class:`wire.WireError` is all we can offer.
        """
        message = "; ".join(failures)
        # reap the failed workers *now*: a worker that reported MSG_ERROR
        # is mid-exit, and recovery must respawn it rather than race the
        # dying process's half-closed pipe
        for worker in failed_workers:
            worker.kill(warn=self._kill_warn)
        if not self.failover_enabled:
            return wire.WireError(message)
        # the epoch's own messages so far (handoff closures) were never
        # returned to the caller: track them so fail_zone sees current
        # open intervals, and hand them over for splicing
        self._track_messages(result.messages)
        spliced = list(result.messages)
        failed: list[str] = []
        for zone_id in sorted(self.zones):
            if zone_id in self._failed:
                continue
            spliced.extend(self.fail_zone(zone_id, now))
            failed.append(zone_id)
        return WorkerFailure(message, failed, spliced)

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def fail_zone(
        self, zone_id: str, at: int | None = None, kill_worker: bool = False
    ) -> list[EventMessage]:
        """Mark a zone crashed (optionally killing its worker process).

        ``kill_worker=True`` simulates a real process crash: every zone
        hosted by the same worker loses its resident state.  The worker is
        respawned immediately and its surviving (non-failed) zones are
        re-installed from their checkpoints + replay buffers — exactly the
        state they held pre-crash — while ``zone_id`` itself stays down
        until :meth:`recover_zone`.
        """
        closures = super().fail_zone(zone_id, at)
        if kill_worker:
            self._worker_of_zone[zone_id].kill(warn=self._kill_warn)
            self._ensure_worker(zone_id)
        return closures

    def recover_zone(self, zone_id: str, at: int | None = None) -> list[EventMessage]:
        """Restore a failed zone into its (possibly respawned) worker."""
        self._require_failover()
        if zone_id not in self._failed:
            raise ValueError(f"zone {zone_id!r} is not failed")
        now = self._resolve_epoch(at)
        self._ensure_worker(zone_id)
        checkpoint = self._checkpoints[zone_id]
        spire, messages = self._rebuild_spire(zone_id, checkpoint, now)

        # _rebuild_spire seeded a registry from the checkpoint snapshot and
        # replayed into it; ship that state to the worker alongside the
        # substrate (the checkpoint blob itself never carries a registry)
        rebuilt_metrics = (
            spire.metrics.snapshot() if spire.metrics is not None else None
        )
        blob = dumps_spire(spire, codec=self.checkpoint_codec)
        self._send(zone_id, wire.encode_install(
            self._zone_index[zone_id], blob,
            **self._install_metrics(zone_id, seed=rebuilt_metrics),
        ))
        wire.expect_ok(self._recv(zone_id))
        self._checkpoints[zone_id] = _ZoneCheckpoint(
            epoch=now, data=blob, metrics=rebuilt_metrics
        )
        self._replay[zone_id] = []
        if self.metrics is not None:
            self._m_checkpoints.inc()

        self._failed.discard(zone_id)
        if self.metrics is not None:
            self._m_failed.set(len(self._failed))
        self._track_messages(messages)
        self.quarantine.warn(
            WarningKind.ZONE_RECOVERED,
            now,
            detail=(
                f"zone {zone_id!r} restored from checkpoint at epoch "
                f"{checkpoint.epoch}; {len(messages)} interval(s) re-opened"
            ),
        )
        return messages

    def _ensure_worker(self, zone_id: str) -> None:
        """Respawn ``zone_id``'s worker if its process died.

        Co-hosted zones that were *not* failed are rebuilt exactly —
        checkpoint plus deterministic replay reproduces their pre-crash
        state, and the replayed epochs' messages were already emitted so
        they are discarded.
        """
        worker = self._worker_of_zone[zone_id]
        if worker.alive:
            return
        replacement = _Worker(self._ctx, worker.index)
        self._workers[self._workers.index(worker)] = replacement
        hosted = [z for z, w in self._worker_of_zone.items() if w is worker]
        for hosted_zone in hosted:
            self._worker_of_zone[hosted_zone] = replacement
        for hosted_zone in sorted(hosted):
            if hosted_zone in self._failed:
                continue  # installed by recover_zone with fresh intervals
            hosted_ckpt = self._checkpoints[hosted_zone]
            spire = loads_spire(hosted_ckpt.data)
            if self.metrics is not None:
                # seed before replay so the replayed epochs re-increment
                # the counters to their pre-crash totals
                registry = MetricRegistry(const_labels={"zone": hosted_zone})
                if hosted_ckpt.metrics:
                    registry.restore(hosted_ckpt.metrics)
                spire.attach_metrics(registry)
            for zone_readings in self._replay[hosted_zone]:
                output = spire.process_epoch(zone_readings)
                for tag in output.departed:
                    if self._owner.get(tag) == hosted_zone:
                        self._owner.pop(tag)
            rebuilt_metrics = (
                spire.metrics.snapshot() if spire.metrics is not None else None
            )
            blob = dumps_spire(spire, codec=self.checkpoint_codec)
            self._send(
                hosted_zone, wire.encode_install(
                    self._zone_index[hosted_zone], blob,
                    **self._install_metrics(hosted_zone, seed=rebuilt_metrics),
                )
            )
            wire.expect_ok(self._recv(hosted_zone))

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def _zone_metrics_snapshot(self, zone_id: str) -> dict:
        """Latest cumulative snapshot the zone's worker shipped (replaced
        every epoch), so :meth:`Coordinator.metrics_snapshot` merges live
        worker state without extra round-trips."""
        return self._zone_snapshots.get(zone_id) or {"series": [], "help": {}}

    # ------------------------------------------------------------------
    # global queries (RPC to the owning worker)
    # ------------------------------------------------------------------

    def location_of(self, tag: TagId) -> int:
        from repro.model.locations import UNKNOWN_COLOR

        owner = self._owner.get(tag)
        if owner is None or owner in self._failed:
            return UNKNOWN_COLOR
        self._send(owner, wire.encode_query(self._zone_index[owner], wire.QUERY_LOCATION, tag))
        return wire.decode_query_result(self._recv(owner))

    def container_of(self, tag: TagId) -> TagId | None:
        owner = self._owner.get(tag)
        if owner is None or owner in self._failed:
            return None
        self._send(
            owner, wire.encode_query(self._zone_index[owner], wire.QUERY_CONTAINER, tag)
        )
        key = wire.decode_query_result(self._recv(owner))
        return None if key == 0 else TagId.from_key(key)

"""Grammar tests for the pattern language (repro.sase.parser).

Three layers: positive grammar cases (every clause and operator),
negative cases pinning the error *messages and offsets*, and a seeded
fuzz test generating random ASTs and checking the ``parse ∘ unparse``
round-trip fixpoint the canonical unparser promises.
"""

from __future__ import annotations

import random

import pytest

from repro.events.messages import EventKind
from repro.model.objects import PackagingLevel, TagId
from repro.sase import PatternSemanticError, PatternSyntaxError, unparse
from repro.sase.ast import (
    And,
    Attr,
    BinOp,
    Cmp,
    Element,
    EVENT_ATTRS,
    EVENT_CLASSES,
    Func,
    Literal,
    Not,
    Now,
    Or,
    PatternAST,
    ReturnItem,
)
from repro.sase.nfa import compile_ast
from repro.sase.parser import parse_pattern_source


# ---------------------------------------------------------------------------
# positive grammar cases
# ---------------------------------------------------------------------------


class TestGrammar:
    def test_full_clause_pattern(self):
        ast = parse_pattern_source(
            "PATTERN SEQ(arrival a, !(departure | missing) d) "
            "WHERE a.place == 3 AND d.obj == a.obj "
            "WITHIN 50 EPOCHS RETURN a.obj AS obj, a.vs AS since"
        )
        assert [e.binding for e in ast.elements] == ["a", "d"]
        assert ast.elements[1].negated and ast.elements[1].classes == (
            "departure", "missing",
        )
        assert ast.within == 50 and ast.within_unit == "epochs"
        assert [item.label for item in ast.returns] == ["obj", "since"]

    def test_pattern_keyword_is_optional(self):
        assert parse_pattern_source("SEQ(any e)") == parse_pattern_source(
            "pattern seq(any e)"
        )

    def test_keywords_case_insensitive_bindings_case_sensitive(self):
        ast = parse_pattern_source("seq(arrival Ab) where Ab.place == 1")
        assert ast.elements[0].binding == "Ab"
        assert ast.where == Cmp("==", Attr("Ab", "place"), Literal(1))

    def test_kleene_plus(self):
        ast = parse_pattern_source("SEQ(arrival a, contain+ c, departure d)")
        assert ast.elements[1].kleene and not ast.elements[0].kleene

    def test_union_classes_are_deduped(self):
        ast = parse_pattern_source("SEQ((arrival | missing | arrival) e)")
        assert ast.elements[0].classes == ("arrival", "missing")
        assert ast.elements[0].kinds() == (
            EVENT_CLASSES["arrival"] | EVENT_CLASSES["missing"]
        )

    def test_within_seconds_normalizes_to_epochs(self):
        ast = parse_pattern_source("SEQ(any e) WITHIN 7 SECONDS")
        assert ast.within_unit == "seconds" and ast.window_epochs() == 7

    def test_once_per_epoch_clause(self):
        assert parse_pattern_source("SEQ(any e) ONCE PER EPOCH").once_per_epoch

    def test_tag_literal(self):
        ast = parse_pattern_source("SEQ(any e) WHERE e.obj == case:3")
        assert ast.where.right == Literal(TagId(PackagingLevel.CASE, 3))

    def test_string_literal_and_kind_attr(self):
        ast = parse_pattern_source("SEQ(any e) WHERE e.kind == 'StartLocation'")
        assert ast.where.right == Literal("StartLocation")

    def test_operator_precedence(self):
        ast = parse_pattern_source(
            "SEQ(any e) WHERE NOT e.place == 1 OR e.vs + 2 - 1 > 3 AND e.place == 4"
        )
        # OR binds loosest, then AND, then NOT, then comparisons, then +/-
        assert isinstance(ast.where, Or)
        assert isinstance(ast.where.parts[0], Not)
        assert isinstance(ast.where.parts[1], And)

    def test_functions_and_now(self):
        ast = parse_pattern_source(
            "SEQ(any e) WHERE loc(e.obj, now) == 1 AND "
            "coalesce(container(e.obj, e.vs), e.obj) != e.obj"
        )
        calls = [n.name for n in ast.where.walk() if isinstance(n, Func)]
        assert calls == ["loc", "coalesce", "container"]

    def test_parenthesized_expression(self):
        ast = parse_pattern_source("SEQ(any e) WHERE (e.vs + 1) - 2 == 0")
        assert isinstance(ast.where.left, BinOp) and ast.where.left.op == "-"

    def test_return_without_alias_uses_expression_label(self):
        ast = parse_pattern_source("SEQ(any e) RETURN e.obj, now AS at")
        assert [item.label for item in ast.returns] == ["e.obj", "at"]


# ---------------------------------------------------------------------------
# error reporting: message content and offsets
# ---------------------------------------------------------------------------


class TestErrors:
    @pytest.mark.parametrize("source", ["", "   "])
    def test_empty_source(self, source):
        with pytest.raises(PatternSyntaxError, match="empty pattern"):
            parse_pattern_source(source)

    def test_unexpected_character_carries_offset(self):
        with pytest.raises(PatternSyntaxError) as err:
            parse_pattern_source("SEQ(any e) WHERE e.vs == #")
        assert err.value.offset == 25 and "(at offset 25)" in str(err.value)

    def test_unclosed_seq(self):
        with pytest.raises(PatternSyntaxError, match=r"expected '\)' to close SEQ"):
            parse_pattern_source("SEQ(arrival a")

    def test_missing_binding_name(self):
        with pytest.raises(PatternSyntaxError, match="binding name after the event class"):
            parse_pattern_source("SEQ(arrival)")

    def test_reserved_binding_name(self):
        with pytest.raises(PatternSyntaxError, match="'now' is reserved"):
            parse_pattern_source("SEQ(arrival now)")

    def test_unknown_event_class_lists_alternatives(self):
        with pytest.raises(PatternSyntaxError, match="an event class \\(one of"):
            parse_pattern_source("SEQ(landing e)")

    def test_unknown_function_lists_available(self):
        with pytest.raises(PatternSyntaxError, match="unknown function 'median'"):
            parse_pattern_source("SEQ(any e) WHERE median(e.vs) == 1")

    def test_unknown_attribute_lists_attrs(self):
        with pytest.raises(PatternSyntaxError, match="an event attribute"):
            parse_pattern_source("SEQ(any e) WHERE e.colour == 1")

    def test_bare_identifier_is_not_a_value(self):
        with pytest.raises(PatternSyntaxError, match="bare names are not values"):
            parse_pattern_source("SEQ(any e) WHERE e.obj == thing")

    def test_clause_order_is_named_in_trailing_junk_error(self):
        with pytest.raises(PatternSyntaxError, match="clause order is SEQ"):
            parse_pattern_source("SEQ(any e) WITHIN 5 EPOCHS WHERE e.place == 1")

    def test_window_requires_integer_and_unit(self):
        with pytest.raises(PatternSyntaxError, match="window length"):
            parse_pattern_source("SEQ(any e) WITHIN soon")
        with pytest.raises(PatternSyntaxError, match="EPOCHS or SECONDS"):
            parse_pattern_source("SEQ(any e) WITHIN 5 FORTNIGHTS")

    def test_offset_points_at_the_failing_token(self):
        source = "SEQ(arrival a, departure deux) WHERE deux.obj == a.obj AND ,"
        with pytest.raises(PatternSyntaxError) as err:
            parse_pattern_source(source)
        assert err.value.offset == source.index(",", 30 + 1)


class TestSemanticErrors:
    @pytest.mark.parametrize(
        "source, message",
        [
            ("SEQ(arrival a, departure a)", "declared twice"),
            ("SEQ(!arrival+ a, departure d)", "Kleene"),
            ("SEQ(!arrival a, departure d)", "negated element"),
            ("SEQ(!arrival a)", "positive"),
            ("SEQ(arrival a, !departure d)", "WITHIN"),
            ("SEQ(any e) WHERE x.place == 1", "unknown binding"),
        ],
    )
    def test_rejected_patterns(self, source, message):
        with pytest.raises(PatternSemanticError, match=message):
            compile_ast(parse_pattern_source(source))

    def test_fire_time_predicate_on_negated_binding(self):
        source = (
            "SEQ(arrival a, !departure d) "
            "WHERE loc(d.obj, now) == 1 WITHIN 5 EPOCHS"
        )
        with pytest.raises(PatternSemanticError, match="fire time"):
            compile_ast(parse_pattern_source(source))


# ---------------------------------------------------------------------------
# fuzz: random ASTs round-trip through unparse -> parse
# ---------------------------------------------------------------------------

_CLASS_NAMES = sorted(EVENT_CLASSES)
_BINDINGS = "abcdefgh"


def _random_expr(rng: random.Random, bindings: list[str], depth: int):
    if depth <= 0 or rng.random() < 0.3:
        leaf = rng.randrange(5)
        if leaf == 0:
            return Literal(rng.randrange(100))
        if leaf == 1:
            return Literal("s" + str(rng.randrange(10)))
        if leaf == 2:
            return Literal(TagId(rng.choice(list(PackagingLevel)), rng.randrange(50)))
        if leaf == 3:
            return Now()
        return Attr(rng.choice(bindings), rng.choice(EVENT_ATTRS))

    shape = rng.randrange(6)
    sub = lambda: _random_expr(rng, bindings, depth - 1)  # noqa: E731
    if shape == 0:
        return Cmp(rng.choice(["==", "!=", "<", "<=", ">", ">="]), sub(), sub())
    if shape == 1:
        return BinOp(rng.choice(["+", "-"]), sub(), sub())
    if shape == 2:
        return Not(sub())
    if shape == 3:
        return And(tuple(sub() for _ in range(rng.randrange(2, 4))))
    if shape == 4:
        return Or(tuple(sub() for _ in range(rng.randrange(2, 4))))
    name = rng.choice(["max", "min", "coalesce", "loc", "container", "missing"])
    arity = rng.randrange(1, 4) if name == "coalesce" else 2
    return Func(name, tuple(sub() for _ in range(arity)))


def _random_ast(rng: random.Random) -> PatternAST:
    count = rng.randrange(1, 5)
    bindings = list(_BINDINGS[:count])
    elements = []
    for position, binding in enumerate(bindings):
        classes = tuple(
            dict.fromkeys(
                rng.sample(_CLASS_NAMES, rng.randrange(1, 4))
            )
        )
        negated = position > 0 and rng.random() < 0.3
        elements.append(
            Element(
                binding=binding,
                classes=classes,
                negated=negated,
                kleene=not negated and rng.random() < 0.2,
            )
        )
    where = (
        _random_expr(rng, bindings, depth=rng.randrange(1, 4))
        if rng.random() < 0.8
        else None
    )
    returns = tuple(
        ReturnItem(
            expr=_random_expr(rng, bindings, depth=2),
            name=f"r{i}" if rng.random() < 0.5 else None,
        )
        for i in range(rng.randrange(0, 3))
    )
    return PatternAST(
        elements=tuple(elements),
        where=where,
        within=rng.randrange(1, 200) if rng.random() < 0.6 else None,
        within_unit=rng.choice(["epochs", "seconds"]),
        once_per_epoch=rng.random() < 0.2,
        returns=returns,
    )


@pytest.mark.parametrize("seed", range(8))
def test_unparse_parse_roundtrip_fixpoint(seed):
    rng = random.Random(0xC0C1 + seed)
    for _ in range(50):
        ast = _random_ast(rng)
        source = unparse(ast)
        reparsed = parse_pattern_source(source)
        assert unparse(reparsed) == source, source
        assert parse_pattern_source(unparse(reparsed)) == reparsed


def test_roundtrip_of_the_library_sources():
    """Every shipped catalogue definition survives the round trip."""
    from repro.model.objects import PackagingLevel, TagId
    from repro.sase import library

    patterns = [
        library.tail(obj=TagId(PackagingLevel.CASE, 3), place=7),
        library.object_watch(TagId(PackagingLevel.ITEM, 12)),
        library.place_watch(4),
        library.dwell_exceeded(place=2, k=9),
        library.missing_overdue(k=5),
        library.left_without_container(place=6),
    ]
    for pattern in patterns:
        reparsed = parse_pattern_source(pattern.source)
        assert parse_pattern_source(unparse(reparsed)) == reparsed

"""Unit tests for EPC-style tags and packaging levels."""

import pytest

from repro.model.objects import PackagingLevel, TagAllocator, TagId, allocate_tags


class TestPackagingLevel:
    def test_ordering_matches_containment_direction(self):
        assert PackagingLevel.ITEM < PackagingLevel.CASE < PackagingLevel.PALLET

    def test_levels_below_case(self):
        assert PackagingLevel.CASE.levels_below() == [PackagingLevel.ITEM]

    def test_levels_below_pallet_closest_first(self):
        assert PackagingLevel.PALLET.levels_below() == [
            PackagingLevel.CASE,
            PackagingLevel.ITEM,
        ]

    def test_levels_above_item_closest_first(self):
        assert PackagingLevel.ITEM.levels_above() == [
            PackagingLevel.CASE,
            PackagingLevel.PALLET,
        ]

    def test_pallet_has_nothing_above(self):
        assert PackagingLevel.PALLET.levels_above() == []

    def test_short_name(self):
        assert PackagingLevel.ITEM.short_name == "item"


class TestTagId:
    def test_value_semantics(self):
        assert TagId(PackagingLevel.ITEM, 5) == TagId(PackagingLevel.ITEM, 5)
        assert TagId(PackagingLevel.ITEM, 5) != TagId(PackagingLevel.CASE, 5)

    def test_hashable(self):
        tags = {TagId(PackagingLevel.ITEM, 1), TagId(PackagingLevel.ITEM, 1)}
        assert len(tags) == 1

    def test_urn_encodes_level_and_serial(self):
        urn = TagId(PackagingLevel.CASE, 42).urn()
        assert "case" in urn and urn.endswith(".42")
        assert urn.startswith("urn:epc:id:sgtin:")

    def test_str_representation(self):
        assert str(TagId(PackagingLevel.PALLET, 7)) == "pallet:7"

    def test_sortable_within_level(self):
        a, b = TagId(PackagingLevel.ITEM, 1), TagId(PackagingLevel.ITEM, 2)
        assert sorted([b, a]) == [a, b]


class TestTagAllocator:
    def test_serials_are_unique_and_monotonic(self):
        alloc = TagAllocator()
        tags = alloc.allocate_many(PackagingLevel.ITEM, 10)
        assert [t.serial for t in tags] == list(range(1, 11))
        assert len(set(tags)) == 10

    def test_levels_have_independent_counters(self):
        alloc = TagAllocator()
        item = alloc.allocate(PackagingLevel.ITEM)
        case = alloc.allocate(PackagingLevel.CASE)
        assert item.serial == 1 and case.serial == 1

    def test_allocated_count(self):
        alloc = TagAllocator()
        alloc.allocate_many(PackagingLevel.CASE, 3)
        assert alloc.allocated_count(PackagingLevel.CASE) == 3
        assert alloc.allocated_count(PackagingLevel.ITEM) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            TagAllocator().allocate_many(PackagingLevel.ITEM, -1)


class TestAllocateTags:
    def test_yields_consecutive_serials(self):
        tags = list(allocate_tags(PackagingLevel.ITEM, 3, start=10))
        assert [t.serial for t in tags] == [10, 11, 12]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            list(allocate_tags(PackagingLevel.ITEM, -2))

"""Unit tests for the query-index snapshot codec."""

from __future__ import annotations

import pytest

from repro.events.messages import INFINITY
from repro.query.index import EventStreamIndex
from repro.query.snapshot import (
    SnapshotError,
    dumps_index,
    fingerprint_stream,
    load_index,
    loads_index,
    save_index,
)

from tests.conftest import case, item

from repro.events.messages import (
    end_location,
    missing,
    start_containment,
    start_location,
)

L1, L2 = 0, 1


def _index() -> EventStreamIndex:
    return EventStreamIndex([
        start_location(item(1), L1, 0),
        start_location(case(1), L1, 0),
        start_containment(item(1), case(1), 2),
        end_location(item(1), L1, 0, 5),
        start_location(item(1), L2, 5),
        end_location(case(1), L1, 0, 9),
        missing(case(1), L1, 9),
    ])


class TestRoundTrip:
    def test_bytes_round_trip_preserves_histories(self):
        index = _index()
        restored, meta = loads_index(dumps_index(index))
        assert restored._objects == index._objects
        assert meta.messages_indexed == index.messages_indexed
        assert meta.decompress is False

    def test_open_intervals_survive(self):
        restored, _ = loads_index(dumps_index(_index()))
        path = restored.path(item(1))
        assert path[-1].ve == INFINITY
        assert restored.location_of(item(1), 10_000) == L2

    def test_secondary_indexes_rebuilt(self):
        index = _index()
        restored, _ = loads_index(dumps_index(index))
        assert restored.objects_at(L1, 3) == index.objects_at(L1, 3)
        assert restored.visitors(L1, 0, 100) == index.visitors(L1, 0, 100)
        assert restored.contents_of(case(1), 3) == index.contents_of(case(1), 3)
        assert restored.is_missing(case(1), 12) is True

    def test_restored_index_is_extendable(self):
        restored, _ = loads_index(dumps_index(_index()))
        restored.extend([start_location(item(2), L2, 20)])
        assert restored.location_of(item(2), 21) == L2
        assert set(restored.objects_at(L2, 21)) == {item(1), item(2)}

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "index.snap"
        fingerprint = fingerprint_stream(b"some event bytes")
        written = save_index(_index(), path, fingerprint=fingerprint, decompress=True)
        assert written == path.stat().st_size
        restored, meta = load_index(path)
        assert meta.fingerprint == fingerprint
        assert meta.decompress is True
        assert restored._objects == _index()._objects

    def test_empty_index_round_trips(self):
        restored, meta = loads_index(dumps_index(EventStreamIndex()))
        assert restored.objects() == []
        assert meta.messages_indexed == 0


class TestErrors:
    def test_bad_magic_rejected(self):
        with pytest.raises(SnapshotError, match="magic"):
            loads_index(b"NOTASNAP" + b"\x00" * 64)

    def test_truncated_rejected(self):
        data = dumps_index(_index())
        with pytest.raises(SnapshotError):
            loads_index(data[: len(data) // 2])

    def test_bad_fingerprint_length_rejected(self):
        with pytest.raises(SnapshotError, match="fingerprint"):
            dumps_index(_index(), fingerprint=b"short")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_index(tmp_path / "nope.snap")

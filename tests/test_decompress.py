"""Unit tests for level-2 → level-1 decompression (§V-C)."""

import pytest

from repro.compression.decompress import Level2Decompressor, decompress_stream
from repro.compression.level1 import RangeCompressor
from repro.compression.level2 import ContainmentCompressor
from repro.events.messages import EventKind, start_containment, start_location
from repro.events.wellformed import check_well_formed, open_intervals
from repro.model.locations import UNKNOWN_COLOR

from tests.conftest import case, item, pallet

L1, L2, L3, L4 = 0, 1, 2, 3


def final_locations(messages):
    """Current (open) location per object after replaying a level-1 stream."""
    states = open_intervals(messages)
    return {
        tag: state.open_location[0]
        for tag, state in states.items()
        if state.open_location is not None
    }


class TestPropagation:
    def test_container_location_propagates_to_children(self):
        stream = [
            start_containment(case(1), pallet(1), 0),
            start_location(pallet(1), L1, 0),
        ]
        out = decompress_stream(stream)
        locations = final_locations(out)
        assert locations[pallet(1)] == L1
        assert locations[case(1)] == L1

    def test_propagation_is_transitive(self):
        stream = [
            start_containment(item(1), case(1), 0),
            start_containment(case(1), pallet(1), 0),
            start_location(pallet(1), L2, 0),
        ]
        out = decompress_stream(stream)
        assert final_locations(out)[item(1)] == L2

    def test_moves_propagate(self):
        compressor = ContainmentCompressor()
        stream = []
        stream += compressor.observe(case(1), L1, pallet(1), now=0)
        stream += compressor.observe(pallet(1), L1, None, now=0)
        stream += compressor.observe(case(1), L2, pallet(1), now=3)
        stream += compressor.observe(pallet(1), L2, None, now=3)
        out = decompress_stream(stream)
        check_well_formed(out)
        assert final_locations(out) == {pallet(1): L2, case(1): L2}


class TestPaperSubtlety:
    def test_duplicate_start_after_containment_end_suppressed(self):
        """The paper's duplicate case: C2's catch-up StartLocation at T3
        duplicates the location the decompressor already propagated at T2."""
        compressor = ContainmentCompressor()
        p, c2 = pallet(1), case(2)
        stream = []
        stream += compressor.observe(c2, L1, p, now=1)
        stream += compressor.observe(p, L1, None, now=1)
        stream += compressor.observe(c2, L2, p, now=2)
        stream += compressor.observe(p, L2, None, now=2)
        stream += compressor.observe(c2, L2, None, now=3)   # leaves the pallet at L2
        stream += compressor.observe(p, L3, None, now=3)
        out = decompress_stream(stream)
        check_well_formed(out)
        # exactly one StartLocation(C2, L2): the propagated one at T2;
        # the compressor's catch-up copy at T3 is removed as a duplicate
        c2_starts = [
            m
            for m in out
            if m.kind is EventKind.START_LOCATION and m.obj == c2 and m.place == L2
        ]
        assert len(c2_starts) == 1
        assert c2_starts[0].vs == 2

    def test_end_interval_normalised_to_propagated_vs(self):
        compressor = ContainmentCompressor()
        p, c2 = pallet(1), case(2)
        stream = []
        stream += compressor.observe(c2, L1, p, now=1)
        stream += compressor.observe(p, L1, None, now=1)
        stream += compressor.observe(c2, L2, p, now=2)
        stream += compressor.observe(p, L2, None, now=2)
        stream += compressor.observe(c2, L2, None, now=3)
        stream += compressor.observe(p, L3, None, now=3)
        stream += compressor.observe(c2, L4, None, now=4)   # compressor vs = 3
        out = decompress_stream(stream)
        check_well_formed(out)
        ends = [
            m
            for m in out
            if m.kind is EventKind.END_LOCATION and m.obj == c2 and m.place == L2
        ]
        # the decompressed stream opened C2@L2 at T2, so the end interval
        # starts at 2, not at the compressor's stale 3
        assert len(ends) == 1 and ends[0].vs == 2 and ends[0].ve == 4


class TestLosslessness:
    def test_level2_decompressed_matches_level1_final_state(self):
        """Losslessness: replaying level-2 output through the decompressor
        ends in the same per-object location state as direct level-1."""
        l1, l2 = RangeCompressor(), ContainmentCompressor()
        msgs1, msgs2 = [], []
        history = [
            # (epoch, tag, location, container)
            (0, pallet(1), L1, None),
            (0, case(1), L1, pallet(1)),
            (0, item(1), L1, case(1)),
            (1, pallet(1), L2, None),
            (1, case(1), L2, pallet(1)),
            (1, item(1), L2, case(1)),
            (2, pallet(1), L3, None),
            (2, case(1), L2, None),       # case leaves at L2
            (2, item(1), L2, case(1)),
            (3, case(1), L4, None),
            (3, item(1), L4, case(1)),
        ]
        for now, tag, loc, cont in history:
            msgs1.extend(l1.observe(tag, loc, cont, now))
            msgs2.extend(l2.observe(tag, loc, cont, now))
        decompressed = decompress_stream(msgs2)
        check_well_formed(decompressed)
        assert final_locations(decompressed) == final_locations(msgs1)

    def test_missing_propagates_to_children(self):
        compressor = ContainmentCompressor()
        stream = []
        stream += compressor.observe(case(1), L1, pallet(1), now=0)
        stream += compressor.observe(pallet(1), L1, None, now=0)
        # whole group goes missing: only the pallet is reported
        stream += compressor.observe(case(1), UNKNOWN_COLOR, pallet(1), now=5)
        stream += compressor.observe(pallet(1), UNKNOWN_COLOR, None, now=5)
        out = decompress_stream(stream)
        check_well_formed(out)
        missing_objs = {m.obj for m in out if m.kind is EventKind.MISSING}
        assert missing_objs == {pallet(1), case(1)}


class TestStreamingAPI:
    def test_process_one_message_at_a_time(self):
        decomp = Level2Decompressor()
        out = decomp.process(start_containment(case(1), pallet(1), 0))
        assert [m.kind for m in out] == [EventKind.START_CONTAINMENT]
        out = decomp.process(start_location(pallet(1), L1, 0))
        assert {m.obj for m in out} == {pallet(1), case(1)}

    def test_unknown_kind_rejected(self):
        decomp = Level2Decompressor()
        with pytest.raises(AttributeError):
            decomp.process("not a message")  # type: ignore[arg-type]

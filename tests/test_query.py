"""Unit tests for the event-stream query index."""

import pytest

from repro.compression.level1 import RangeCompressor
from repro.compression.level2 import ContainmentCompressor
from repro.events.messages import (
    end_containment,
    end_location,
    missing,
    start_containment,
    start_location,
)
from repro.model.locations import UNKNOWN_COLOR
from repro.query.index import EventStreamIndex, Interval

from tests.conftest import case, item, pallet

L1, L2, L3 = 0, 1, 2


@pytest.fixture
def index() -> EventStreamIndex:
    """Index over a hand-built stream:

    * item 1: L1 [0, 5), L2 [5, 12), missing at 12, L1 from 20 (open)
    * item 1 contained in case 1 during [2, 9)
    * case 1: L1 [0, 5), L2 from 5 (open)
    """
    return EventStreamIndex(
        [
            start_location(item(1), L1, 0),
            start_location(case(1), L1, 0),
            start_containment(item(1), case(1), 2),
            end_location(item(1), L1, 0, 5),
            start_location(item(1), L2, 5),
            end_location(case(1), L1, 0, 5),
            start_location(case(1), L2, 5),
            end_containment(item(1), case(1), 2, 9),
            end_location(item(1), L2, 5, 12),
            missing(item(1), L2, 12),
            start_location(item(1), L1, 20),
        ]
    )


class TestPointQueries:
    def test_location_of(self, index):
        assert index.location_of(item(1), 0) == L1
        assert index.location_of(item(1), 4) == L1
        assert index.location_of(item(1), 5) == L2
        assert index.location_of(item(1), 11) == L2
        assert index.location_of(item(1), 15) is None   # missing gap
        assert index.location_of(item(1), 25) == L1     # open interval

    def test_unknown_object(self, index):
        assert index.location_of(item(99), 0) is None
        assert index.container_of(item(99), 0) is None
        assert index.path(item(99)) == []

    def test_container_of(self, index):
        assert index.container_of(item(1), 1) is None
        assert index.container_of(item(1), 2) == case(1)
        assert index.container_of(item(1), 8) == case(1)
        assert index.container_of(item(1), 9) is None

    def test_is_missing(self, index):
        assert not index.is_missing(item(1), 11)
        assert index.is_missing(item(1), 12)
        assert index.is_missing(item(1), 19)
        assert not index.is_missing(item(1), 20)  # reappeared

    def test_top_level_container(self):
        index = EventStreamIndex(
            [
                start_containment(item(1), case(1), 0),
                start_containment(case(1), pallet(1), 0),
            ]
        )
        assert index.top_level_container(item(1), 0) == pallet(1)
        assert index.top_level_container(pallet(1), 0) == pallet(1)
        assert index.top_level_container(item(1), 100) == pallet(1)


class TestInverseQueries:
    def test_contents_of(self, index):
        assert index.contents_of(case(1), 3) == [item(1)]
        assert index.contents_of(case(1), 10) == []

    def test_objects_at(self, index):
        assert index.objects_at(L1, 0) == [item(1), case(1)]
        assert index.objects_at(L2, 6) == [item(1), case(1)]
        assert index.objects_at(L2, 15) == [case(1)]

    def test_visitors(self, index):
        assert index.visitors(L1, 0, 100) == [item(1), case(1)]
        assert index.visitors(L2, 13, 19) == [case(1)]
        assert index.visitors(L3, 0, 100) == []


class TestTrajectories:
    def test_path(self, index):
        path = index.path(item(1))
        assert [(p.value, p.vs, p.ve) for p in path] == [
            (L1, 0, 5),
            (L2, 5, 12),
            (L1, 20, float("inf")),
        ]

    def test_containment_history(self, index):
        history = index.containment_history(item(1))
        assert history == [Interval(case(1), 2, 9)]

    def test_missing_reports(self, index):
        assert index.missing_reports(item(1)) == [12]

    def test_dwell_time(self, index):
        assert index.dwell_time(item(1), L2) == 7
        assert index.dwell_time(item(1), L1, horizon=30) == 5 + 10
        with pytest.raises(ValueError, match="horizon"):
            index.dwell_time(item(1), L1)

    def test_objects_listing(self, index):
        assert index.objects() == [item(1), case(1)]


class TestContainmentTree:
    @pytest.fixture
    def tree_index(self):
        return EventStreamIndex(
            [
                start_containment(item(1), case(1), 0),
                start_containment(item(2), case(1), 0),
                start_containment(case(1), pallet(1), 0),
                start_containment(case(2), pallet(1), 0),
                start_location(pallet(1), L1, 0),
            ]
        )

    def test_tree_structure(self, tree_index):
        tree = tree_index.containment_tree(pallet(1), 0)
        assert tree["tag"] == pallet(1)
        case_tags = [child["tag"] for child in tree["children"]]
        assert case_tags == [case(1), case(2)]
        items_in_case1 = [c["tag"] for c in tree["children"][0]["children"]]
        assert items_in_case1 == [item(1), item(2)]

    def test_tree_respects_time(self, tree_index):
        tree_index.extend([end_containment(case(2), pallet(1), 0, 5)])
        before = tree_index.containment_tree(pallet(1), 4)
        after = tree_index.containment_tree(pallet(1), 5)
        assert len(before["children"]) == 2
        assert len(after["children"]) == 1

    def test_render_tree(self, tree_index):
        text = tree_index.render_tree(pallet(1), 0)
        assert text.splitlines()[0].startswith("pallet:1")
        assert "|-- case:1" in text
        assert "`-- case:2" in text
        assert "item:1" in text

    def test_render_leaf(self, tree_index):
        assert tree_index.render_tree(item(1), 0).startswith("item:1")


class TestStreamIntegrity:
    def test_mismatched_end_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            EventStreamIndex(
                [start_location(item(1), L1, 0), end_location(item(1), L2, 0, 5)]
            )

    def test_end_without_start_rejected(self):
        with pytest.raises(ValueError, match="without a matching start"):
            EventStreamIndex([end_location(item(1), L1, 0, 5)])


class TestOverCompressedStreams:
    def _history(self):
        # pallet with a case moving L1 -> L2; case leaves at L2
        return [
            (0, pallet(1), L1, None),
            (0, case(1), L1, pallet(1)),
            (3, pallet(1), L2, None),
            (3, case(1), L2, pallet(1)),
            (6, pallet(1), L3, None),
            (6, case(1), L2, None),
        ]

    def test_level1_stream_indexes_directly(self):
        compressor = RangeCompressor()
        messages = []
        for now, tag, loc, cont in self._history():
            messages.extend(compressor.observe(tag, loc, cont, now))
        index = EventStreamIndex(messages)
        assert index.location_of(case(1), 4) == L2
        assert index.container_of(case(1), 4) == pallet(1)

    def test_level2_stream_requires_decompression(self):
        compressor = ContainmentCompressor()
        messages = []
        for now, tag, loc, cont in self._history():
            messages.extend(compressor.observe(tag, loc, cont, now))
        index = EventStreamIndex(messages, decompress=True)
        # the case's suppressed move to L2 is recovered via the pallet
        assert index.location_of(case(1), 4) == L2
        assert index.location_of(case(1), 7) == L2
        assert index.location_of(pallet(1), 7) == L3

    def test_pipeline_output_is_queriable(self, small_sim):
        from repro.core.pipeline import Deployment, Spire

        deployment = Deployment.from_readers(small_sim.layout.readers)
        spire = Spire(deployment, compression_level=2)
        messages = [m for out in spire.run(small_sim.stream) for m in out.messages]
        index = EventStreamIndex(messages, decompress=True)
        assert index.objects()
        # spot-check agreement with the live estimate store at the end
        final_epoch = len(small_sim.stream) - 1
        for tag, current in list(spire.estimates.items())[:20]:
            if current.location != UNKNOWN_COLOR:
                assert index.location_of(tag, final_epoch) == current.location


class TestSecondaryIndexRegression:
    """Pin the secondary-index-backed inverse queries to the original
    linear-scan implementation's results on a full pipeline trace."""

    @staticmethod
    def _linear_objects_at(index, place, t):
        from repro.query.index import _at

        return sorted(
            obj
            for obj, history in index._objects.items()
            if _at(history.locations, t) == place
        )

    @staticmethod
    def _linear_contents_of(index, container, t):
        from repro.query.index import _at

        return sorted(
            obj
            for obj, history in index._objects.items()
            if _at(history.containers, t) == container
        )

    @staticmethod
    def _linear_visitors(index, place, t1, t2):
        out = []
        for obj, history in index._objects.items():
            for interval in history.locations:
                if interval.value == place and interval.vs <= t2 and interval.ve > t1:
                    out.append(obj)
                    break
        return sorted(out)

    @pytest.fixture()
    def pipeline_index(self, small_sim):
        from repro.core.pipeline import Deployment, Spire

        deployment = Deployment.from_readers(small_sim.layout.readers)
        spire = Spire(deployment, compression_level=2)
        messages = [m for out in spire.run(small_sim.stream) for m in out.messages]
        return EventStreamIndex(messages, decompress=True), len(small_sim.stream)

    def test_objects_at_matches_linear_scan(self, pipeline_index):
        index, duration = pipeline_index
        places = {iv.value for obj in index.objects() for iv in index.path(obj)}
        for t in range(0, duration, 37):
            for place in places:
                assert index.objects_at(place, t) == self._linear_objects_at(
                    index, place, t
                )

    def test_contents_of_matches_linear_scan(self, pipeline_index):
        index, duration = pipeline_index
        containers = {
            iv.value
            for obj in index.objects()
            for iv in index.containment_history(obj)
        }
        assert containers
        for t in range(0, duration, 37):
            for container in containers:
                assert index.contents_of(container, t) == self._linear_contents_of(
                    index, container, t
                )

    def test_visitors_matches_linear_scan(self, pipeline_index):
        index, duration = pipeline_index
        places = {iv.value for obj in index.objects() for iv in index.path(obj)}
        windows = [(0, duration), (50, 120), (300, 301), (duration - 40, duration)]
        for place in places:
            for t1, t2 in windows:
                assert index.visitors(place, t1, t2) == self._linear_visitors(
                    index, place, t1, t2
                )

    def test_hand_built_edge_cases_match(self, index):
        # exact boundaries: interval ends are exclusive, starts inclusive
        for t in (0, 4, 5, 11, 12, 15, 19, 20, 25):
            for place in (L1, L2, L3):
                assert index.objects_at(place, t) == self._linear_objects_at(
                    index, place, t
                )
        for t1, t2 in ((0, 0), (5, 5), (12, 20), (13, 19), (21, 100)):
            for place in (L1, L2, L3):
                assert index.visitors(place, t1, t2) == self._linear_visitors(
                    index, place, t1, t2
                )

"""Telemetry overhead — the disabled path must cost (almost) nothing.

The obs substrate's contract (DESIGN.md §11) is near-zero overhead when
disabled: every instrument call in the hot path resolves to a shared
no-op, and whole blocks are guarded by one ``registry.enabled`` check.
This benchmark runs the same seeded trace through a plain :class:`Spire`
with metrics disabled (the default, NULL_REGISTRY path) and enabled
(a live :class:`MetricRegistry`), and checks

* the disabled run is not slower than the enabled one beyond timer
  jitter (generous 15% tolerance for shared CI runners), and
* the enabled run's own overhead stays modest (< 2x disabled — in
  practice it is a few percent; the loose bound only guards absurd
  regressions like per-event snapshotting).

The CI perf-smoke job complements this with an absolute gate: the
``bench`` subcommand (metrics disabled) must stay within the recorded
regression budget of benchmarks/baselines/perf_smoke.json.
"""

from __future__ import annotations

from time import perf_counter

from repro.core.pipeline import Deployment, Spire
from repro.obs.metrics import MetricRegistry

from benchmarks._shared import Table, get_sim, scale_config

DURATION = 400
REPEATS = 3


def _run_seconds(sim, registry) -> float:
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    spire = Spire(deployment, metrics=registry)
    start = perf_counter()
    for readings in sim.stream:
        spire.process_epoch(readings)
    return perf_counter() - start


def test_disabled_metrics_cost_nothing():
    sim = get_sim(scale_config(3, DURATION))
    disabled = min(_run_seconds(sim, None) for _ in range(REPEATS))
    enabled = min(_run_seconds(sim, MetricRegistry()) for _ in range(REPEATS))

    table = Table(
        "Telemetry overhead over one trace (best of 3)",
        ["metrics", "seconds", "s/epoch"],
    )
    table.add("disabled", disabled, disabled / len(sim.stream))
    table.add("enabled", enabled, enabled / len(sim.stream))
    table.show()

    assert disabled <= enabled * 1.15, (disabled, enabled)
    assert enabled <= disabled * 2.0, (disabled, enabled)

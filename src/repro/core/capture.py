"""Stream-driven graph construction (Section III-B, Fig. 4).

:class:`GraphUpdater` applies one reader's epoch reading set at a time,
exactly as the paper's ``graph_update`` procedure: (1) create and color
nodes, (2) add candidate containment edges for nodes that gained a *new*
color, (3) remove outdated edges (different colors, or contradicted by a
special-reader confirmation), (4) update per-edge co-location statistics and
per-node confirmations.  Processing is incremental per reader and leaves the
graph consistent after each reading set, so coarsely synchronised readers
are handled naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import Graph, GraphNode
from repro.core.params import InferenceParams
from repro.model.objects import PackagingLevel, TagId
from repro.readers.reader import Reader
from repro.readers.stream import EpochReadings


@dataclass(frozen=True)
class ReaderInfo:
    """The deployment knowledge SPIRE holds about one reader.

    Attributes:
        reader_id: Reader id appearing in the raw stream.
        color: Color (location) the reader's readings imply.
        is_special: Whether readings from this reader confirm containment.
        singulation_level: For special readers, the container level the
            reader scans one at a time.
        is_exit: Whether the reader marks a proper exit channel — objects it
            observes leave the monitored world, and their nodes are removed
            after inference.
        period: Interrogation period in epochs (drives the partial/complete
            inference schedule, §IV-D).
    """

    reader_id: int
    color: int
    is_special: bool = False
    singulation_level: PackagingLevel | None = None
    is_exit: bool = False
    period: int = 1

    @classmethod
    def from_reader(cls, reader: Reader) -> "ReaderInfo":
        return cls(
            reader_id=reader.reader_id,
            color=reader.location.color,
            is_special=reader.is_special,
            singulation_level=reader.singulation_level,
            is_exit=reader.is_exit,
            period=reader.period,
        )


@dataclass(frozen=True)
class Confirmation:
    """What one special-reader reading set confirms (§II, §III-B step 3).

    A special reader scans containers at ``singulation_level`` one at a
    time, so when exactly one tag at that level appears in the reading set:

    * that container is confirmed to be a *top-level* container (any parent
      edge of it can be dropped), and
    * it is confirmed to be the parent of every co-read tag one packaging
      level below it.
    """

    top_container: TagId | None
    parent_of: dict[TagId, TagId]

    @classmethod
    def from_readings(
        cls, tags: list[TagId], singulation_level: PackagingLevel | None
    ) -> "Confirmation":
        if singulation_level is None:
            return cls(top_container=None, parent_of={})
        containers = [t for t in tags if t.level == singulation_level]
        if len(containers) != 1:
            # Nothing (or several containers — impossible under proper
            # singulation, but the stream is untrusted) at the singulated
            # level: no confirmation can be drawn this epoch.
            return cls(top_container=None, parent_of={})
        container = containers[0]
        child_level = singulation_level - 1
        parent_of = {t: container for t in tags if t.level == child_level}
        return cls(top_container=container, parent_of=parent_of)


NO_CONFIRMATION = Confirmation(top_container=None, parent_of={})


class GraphUpdater:
    """Applies epoch reading sets to a :class:`Graph` (the data-capture module)."""

    def __init__(self, graph: Graph, params: InferenceParams) -> None:
        self.graph = graph
        self.params = params
        #: tags observed by an exit reader in the current epoch; the
        #: pipeline removes their nodes after inference (§IV-C pruning).
        self.exiting: set[TagId] = set()
        #: locations whose readers are presumed dead this epoch (set by the
        #: pipeline from the reader-health monitor).  A non-co-location
        #: against a node last seen at a suppressed color is withheld from
        #: the edge statistics: the missing read is explained by the outage
        #: and must not erode containment evidence or confirmations.
        self.suppressed_colors: frozenset[int] = frozenset()
        #: cumulative candidate-edge draws (plain int: the telemetry layer
        #: reads per-epoch deltas off the hot path, see repro.obs)
        self.candidate_edges = 0
        # registration-time reader cache (see register_readers)
        self._registered: dict[int, ReaderInfo] | None = None
        self._derived: dict[int, tuple[ReaderInfo, int | None]] = {}

    # ------------------------------------------------------------------

    def register_readers(self, readers: dict[int, ReaderInfo]) -> None:
        """Cache per-reader derived values at registration time.

        Derives once what :meth:`apply_epoch` would otherwise recompute per
        epoch: the singulation *child* level a special reader confirms
        parents at, bundled with the info record so the per-epoch loop does
        a single dict lookup per reporting reader.
        """
        self._registered = readers
        self._derived = {
            reader_id: (
                info,
                info.singulation_level - 1
                if info.singulation_level is not None
                else None,
            )
            for reader_id, info in readers.items()
        }

    def begin_epoch(self) -> None:
        """Start a new epoch: uncolor all nodes, reset per-epoch state."""
        self.graph.begin_epoch()
        self.exiting = set()

    def apply_epoch(
        self,
        readings: EpochReadings,
        readers: dict[int, ReaderInfo],
        now: int,
    ) -> None:
        """Apply a full (deduplicated) epoch of readings, one reader at a time."""
        if readers is not self._registered:
            self.register_readers(readers)
        derived = self._derived
        self.begin_epoch()
        for reader_id in sorted(readings.by_reader):
            entry = derived.get(reader_id)
            if entry is None:
                raise KeyError(f"reading from unknown reader id {reader_id}")
            self.apply_reader(readings.by_reader[reader_id], entry[0], now)
        self.graph.finalize_epoch()

    def apply_reader(self, tags: list[TagId], info: ReaderInfo, now: int) -> None:
        """The ``graph_update(G, R_k)`` procedure of Fig. 4 for one reader."""
        graph = self.graph
        color = info.color

        # Step 1: create and color nodes (Fig. 4 lines 2-6).
        newly_colored: list[GraphNode] = []
        colored: list[GraphNode] = []
        for tag in tags:
            node = graph.get_or_create(tag, now)
            is_new_color = graph.set_color(node, color, now)
            colored.append(node)
            if is_new_color:
                newly_colored.append(node)

        if info.is_exit:
            self.exiting.update(tags)

        confirmation = (
            Confirmation.from_readings(tags, info.singulation_level)
            if info.is_special
            else NO_CONFIRMATION
        )

        # Step 2: add candidate edges for nodes with a new color
        # (Fig. 4 lines 9-13, with the §III-B "newly colored only"
        # optimisation).  Process levels bottom-up as in the paper.
        for node in sorted(newly_colored, key=lambda n: n.level):
            self._add_candidate_edges(node, color, now)

        # Steps 3+4: remove outdated edges and update statistics
        # (Fig. 4 lines 14-31) for every colored node.
        for node in colored:
            self._refresh_edges(node, confirmation, now)

        # Confirmation effects that do not hinge on a visited edge: record
        # the confirmed parent even if the corresponding edge was only just
        # created, and drop edges contradicted by the confirmation.
        self._apply_confirmation(confirmation, now)

    # ------------------------------------------------------------------
    # step 2
    # ------------------------------------------------------------------

    def _add_candidate_edges(self, node: GraphNode, color: int, now: int) -> None:
        """Connect ``node`` to same-colored nodes in the closest layers.

        If the adjacent layer has no node of this color, the edge is drawn
        to the next higher/lower layer that does (§III-B step 2), so e.g. an
        item whose case was missed can still be tied to a co-located pallet.

        Candidates are taken in tag order: the colored-at index holds sets,
        whose iteration order follows object identity hashes — letting that
        order leak into edge insertion order (and through dict-order
        tie-breaking, into container choices) makes otherwise identical
        runs diverge between processes.

        **Confirmation-aware filtering** (DESIGN.md §8): a child bound to a
        different parent by a standing, conflict-free special-reader
        confirmation draws no new candidate edge.  While the confirmation is
        unconflicted the confirmed edge only ever receives co-location
        pushes (a contradicting push records a conflict in the same breath),
        so its Eq. 2 confidence stays at the ``(1 - beta) + beta`` ceiling
        and strictly dominates any rival's ``beta``-bounded confidence —
        the rival could never be chosen, but would be maintained forever
        when the pair keeps sharing a location (e.g. co-shelved objects).
        The first conflict, or the confirmed parent leaving the graph,
        reopens normal candidate generation.
        """
        graph = self.graph
        tag = node.tag
        drawn = 0
        above = graph.closest_colored_level(node.level, color, direction=+1)
        if above is not None:
            confirmed = self._binding_parent(node)
            if confirmed is not None:
                if confirmed.color == color and confirmed.level > node.level:
                    graph.add_edge(confirmed, node, now)
                    drawn += 1
            else:
                for parent in sorted(graph.colored_at(above, color), key=lambda n: n.tag):
                    graph.add_edge(parent, node, now)
                    drawn += 1
        below = graph.closest_colored_level(node.level, color, direction=-1)
        if below is not None:
            for child in sorted(graph.colored_at(below, color), key=lambda n: n.tag):
                confirmed = self._binding_parent(child)
                if confirmed is None or confirmed.tag == tag:
                    graph.add_edge(node, child, now)
                    drawn += 1
        self.candidate_edges += drawn

    def _binding_parent(self, node: GraphNode) -> GraphNode | None:
        """The node's confirmed parent, when that confirmation still binds:
        conflict-free and the parent still in the graph (see
        :meth:`_add_candidate_edges`)."""
        confirmed = node.confirmed_parent
        if confirmed is None or node.confirmed_conflicts:
            return None
        return self.graph.get(confirmed)

    # ------------------------------------------------------------------
    # steps 3 + 4
    # ------------------------------------------------------------------

    def _refresh_edges(self, node: GraphNode, confirmation: Confirmation, now: int) -> None:
        """Drop outdated edges of ``node`` and update edge statistics.

        ``node`` is colored (the caller iterates this epoch's colored
        nodes), which lets the parent-side and child-side loops specialise
        the co-location and skip tests instead of re-deriving them per edge
        via :meth:`GraphEdge.other`.  Removals are collected and applied
        after the loops so the edge dicts can be iterated without snapshot
        copies; per-edge work is independent, so deferral does not change
        behaviour.
        """
        graph = self.graph
        size = self.params.history_size
        mask = (1 << size) - 1
        color = node.color
        tag = node.tag
        parent_of = confirmation.parent_of
        top = confirmation.top_container
        suppressed = self.suppressed_colors
        dirty_add = graph._dirty.add
        removals: list = []

        # node as the parent endpoint: same-colored edges are visited only
        # once, from here — the higher packaging level (§III-B cost
        # analysis; both endpoints of a same-colored edge are colored by
        # the same reader, so this visit does the full work).  The history
        # push and version bump (GraphEdge.push_history + Graph.mark_changed)
        # are inlined: this loop touches every standing edge of every
        # colored node each epoch and the call dispatch alone dominates it.
        for edge in node.children.values():
            child = edge.child
            co_located = child.color == color

            # Step 3 (lines 15-20): removal applies to pre-existing edges.
            if edge.created_at < now:
                if child.color is not None and not co_located:
                    removals.append(edge)
                    continue
                child_tag = child.tag
                if top == child_tag:
                    # the child is confirmed to be a top-level container
                    removals.append(edge)
                    continue
                confirmed = parent_of.get(child_tag)
                if confirmed is not None and confirmed != tag:
                    # the child has a different confirmed parent this epoch
                    removals.append(edge)
                    continue

            # Step 4 (lines 21-31): update statistics once per epoch.
            if edge.update_time < now:
                if not co_located and suppressed and self._outage_explains(child):
                    # graceful degradation: the partner was last seen at a
                    # location whose reader is down, so this epoch carries
                    # no co-location evidence either way
                    edge.update_time = now
                    continue
                old = edge.history
                new = ((old << 1) | 1) & mask if co_located else (old << 1) & mask
                edge.history = new
                if edge.filled < size:
                    edge.filled += 1
                    child.version += 1
                    dirty_add(child)
                elif new != old:
                    child.version += 1
                    dirty_add(child)
                if co_located:
                    if parent_of.get(child.tag) == tag:
                        if child.confirmed_parent != tag or child.confirmed_conflicts:
                            child.version += 1
                            dirty_add(child)
                        child.set_confirmed_parent(tag, now)
                elif child.confirmed_parent == tag:
                    child.record_conflict()
                    child.version += 1
                    dirty_add(child)
                edge.update_time = now

        # node as the child endpoint: a parent sharing this epoch's color
        # was (or will be) handled by its own parent-side visit above, so
        # only differently-colored or unobserved parents remain — never a
        # co-location.
        for edge in node.parents.values():
            parent = edge.parent
            if parent.color == color:
                continue

            if edge.created_at < now:
                if parent.color is not None:
                    removals.append(edge)
                    continue
                if top == tag:
                    removals.append(edge)
                    continue
                confirmed = parent_of.get(tag)
                if confirmed is not None and confirmed != parent.tag:
                    removals.append(edge)
                    continue

            if edge.update_time < now:
                if suppressed and self._outage_explains(parent):
                    edge.update_time = now
                    continue
                old = edge.history
                new = (old << 1) & mask
                edge.history = new
                if edge.filled < size:
                    edge.filled += 1
                    node.version += 1
                    dirty_add(node)
                elif new != old:
                    node.version += 1
                    dirty_add(node)
                if node.confirmed_parent == parent.tag:
                    node.record_conflict()
                    node.version += 1
                    dirty_add(node)
                edge.update_time = now

        for edge in removals:
            graph.remove_edge(edge)

    def _outage_explains(self, other: GraphNode) -> bool:
        """True when ``other`` is unobserved and its last known location's
        reader is presumed dead — the non-read is the outage's fault."""
        return (
            bool(self.suppressed_colors)
            and not other.is_colored
            and other.recent_color is not None
            and other.recent_color in self.suppressed_colors
        )

    def _apply_confirmation(self, confirmation: Confirmation, now: int) -> None:
        """Apply confirmation effects beyond the per-edge pass.

        Fig. 4 folds confirmation handling into the edge loop; when a
        confirmed pair's edge was created only this epoch (so step 3 skipped
        it) the child must still learn its confirmed parent, and parent
        edges of a confirmed top-level container must still be dropped even
        if the container itself was the unvisited endpoint.
        """
        graph = self.graph
        if confirmation.top_container is not None:
            top = graph.get(confirmation.top_container)
            if top is not None:
                for edge in list(top.parents.values()):
                    graph.remove_edge(edge)
        for child_tag, parent_tag in confirmation.parent_of.items():
            child = graph.get(child_tag)
            if child is None:
                continue
            if child.confirmed_parent != parent_tag:
                child.set_confirmed_parent(parent_tag, now)
                graph.mark_changed(child)
            # drop alternative parent edges contradicted by the confirmation
            for edge in list(child.parents.values()):
                if edge.parent.tag != parent_tag and edge.created_at < now:
                    graph.remove_edge(edge)

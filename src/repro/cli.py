"""Command-line interface for the SPIRE substrate.

Subcommands cover the trace lifecycle:

* ``simulate`` — generate a synthetic warehouse trace and persist it (raw
  binary readings + a JSON sidecar with the configuration);
* ``interpret`` — run SPIRE over a persisted trace, writing the compressed
  event stream and printing summary statistics;
* ``evaluate`` — simulate + interpret + score in one go (accuracy,
  compression ratio, optional SMURF comparison);
* ``query`` — answer point/path queries over a persisted event stream
  (``--index-cache`` persists the built index for instant reloads);
* ``serve`` — replay a persisted trace through a (optionally sharded)
  coordinator and serve continuous queries over TCP: one-shot lookups
  against the live index plus standing-pattern subscriptions
  (see docs/SERVING.md);
* ``client`` — connect to a running ``serve`` instance: issue a point
  query, follow a subscription, or dump serving statistics;
* ``chaos`` — run the same simulation fault-free and under a fault
  schedule (reader outages, dropped/delayed/duplicated batches, unknown
  readers) through the resilient ingestion front-end, and report the
  event-stream F-measure degradation;
* ``bench`` — run the Table III per-epoch cost sweep and write the
  ``BENCH_table3.json`` payload (optionally gating against a committed
  baseline; see docs/BENCHMARKS.md);
* ``worker`` — run one remote zone-worker daemon: a TCP process that
  hosts zone substrates for a ``RemoteCoordinator`` on another host
  (see docs/SCALING.md).

Examples::

    repro-spire simulate --duration 1200 --read-rate 0.85 -o trace.bin
    repro-spire interpret trace.bin -o events.bin --compression 2
    repro-spire evaluate --duration 1800 --read-rate 0.7 --smurf
    repro-spire query events.bin --object case:3 --at 500
    repro-spire query events.bin --object case:3 --path --index-cache events.idx
    repro-spire serve trace.bin --port 7070 --workers 2
    repro-spire client --port 7070 --object case:3 --at 500
    repro-spire client --port 7070 --subscribe dwell:3:50 --count 5
    repro-spire client --port 7070 --metrics
    repro-spire chaos --epochs 600 --outage-epochs 50 --drop-rate 0.02 --delay-rate 0.05
    repro-spire chaos --epochs 600 --workers 2 --metrics-json metrics.json
    repro-spire chaos --epochs 600 --schedule faults.json --remote-workers 3
    repro-spire worker --port 7171
    repro-spire bench -o BENCH_table3.json --compare-full
    repro-spire bench --milestones 2000 --remote-workers 3
    repro-spire bench --milestones 1000 2000 --check-against benchmarks/baselines/perf_smoke.json

Cross-command flags are normalized: ``--seed``, ``--workers`` and
``--metrics-json`` come from shared parent parsers, and the epoch-count
knob is ``--epochs`` everywhere (the old ``--duration`` / ``--max-epochs``
spellings still work, with a deprecation warning).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.baselines.smurf import SmurfPipeline
from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.events import codec as event_codec
from repro.metrics.accuracy import AccuracyAccumulator, ScoringPolicy
from repro.metrics.sizing import compression_ratio
from repro.model.objects import PackagingLevel, TagId
from repro.query.index import EventStreamIndex
from repro.readers import codec as reading_codec
from repro.simulator.config import SimulationConfig
from repro.simulator.layout import WarehouseLayout
from repro.simulator.warehouse import WarehouseSimulator


def _sidecar_path(trace_path: Path) -> Path:
    return trace_path.with_suffix(trace_path.suffix + ".json")


# ---------------------------------------------------------------------------
# shared flags
# ---------------------------------------------------------------------------


def _deprecated_alias(canonical: str) -> type[argparse.Action]:
    """An argparse action that accepts an old spelling with a warning."""

    class _Alias(argparse.Action):
        def __call__(self, parser, namespace, values, option_string=None):
            print(
                f"warning: {option_string} is deprecated; use {canonical}",
                file=sys.stderr,
            )
            setattr(namespace, self.dest, values)

    return _Alias


#: parent parser carrying the canonical cross-command flags (--seed,
#: --workers, --metrics-json); subcommands opt in via ``parents=[...]``
def _seed_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--seed", type=int, default=None,
        help="deterministic RNG seed (default: the subcommand's own)",
    )
    return parent


def _workers_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers", type=int, default=None,
        help="shard zones over this many persistent worker processes",
    )
    return parent


def _metrics_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="enable the telemetry substrate and write the merged metrics "
             "snapshot as JSON here ('-' writes to stdout)",
    )
    return parent


def _dump_metrics_json(snapshot: dict, destination: str) -> None:
    """Write an obs snapshot where ``--metrics-json`` asked for it."""
    payload = json.dumps(snapshot, sort_keys=True, indent=2)
    if destination == "-":
        print(payload)
    else:
        Path(destination).write_text(payload + "\n")
        print(f"wrote metrics snapshot to {destination}")


def parse_tag(text: str) -> TagId:
    """Parse a ``level:serial`` tag spec, e.g. ``case:3``."""
    try:
        level_name, serial_text = text.split(":")
        level = PackagingLevel[level_name.upper()]
        return TagId(level, int(serial_text))
    except (ValueError, KeyError) as exc:
        raise argparse.ArgumentTypeError(
            f"invalid tag {text!r}; expected e.g. 'item:5', 'case:3', 'pallet:1'"
        ) from exc


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = SimulationConfig()
    parser.add_argument("--epochs", dest="epochs", type=int, default=1800,
                        help="epochs to simulate")
    parser.add_argument("--duration", dest="epochs", type=int,
                        action=_deprecated_alias("--epochs"), help=argparse.SUPPRESS)
    parser.add_argument("--pallet-period", type=int, default=300)
    parser.add_argument("--cases-per-pallet", type=int, default=defaults.cases_per_pallet_min)
    parser.add_argument("--items-per-case", type=int, default=8)
    parser.add_argument("--read-rate", type=float, default=defaults.read_rate)
    parser.add_argument("--shelf-period", type=int, default=defaults.shelf_read_period)
    parser.add_argument("--num-shelves", type=int, default=defaults.num_shelves)
    parser.add_argument("--shelving-time", type=int, default=600)
    parser.add_argument("--anomaly-period", type=int, default=0)


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    defaults = SimulationConfig()
    return SimulationConfig(
        duration=args.epochs,
        pallet_period=args.pallet_period,
        cases_per_pallet_min=args.cases_per_pallet,
        cases_per_pallet_max=args.cases_per_pallet,
        items_per_case=args.items_per_case,
        read_rate=args.read_rate,
        shelf_read_period=args.shelf_period,
        num_shelves=args.num_shelves,
        shelving_time_mean=args.shelving_time,
        shelving_time_jitter=max(1, args.shelving_time // 5),
        anomaly_period=args.anomaly_period,
        seed=defaults.seed if args.seed is None else args.seed,
    )


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    """Generate a synthetic trace and persist it with its config sidecar."""
    config = _config_from_args(args)
    sim = WarehouseSimulator(config).run()
    trace_path = Path(args.output)
    with trace_path.open("wb") as fp:
        written = reading_codec.write_trace(sim.stream, fp)
    with _sidecar_path(trace_path).open("w") as fp:
        json.dump(dataclasses.asdict(config), fp, indent=2)
    print(
        f"wrote {sim.stream.total_readings} readings ({written} bytes) over "
        f"{len(sim.stream)} epochs to {trace_path}"
    )
    print(
        f"pallets: {sim.pallets_arrived} in / {sim.pallets_assembled} assembled; "
        f"peak objects {sim.peak_objects}; removals {len(sim.removals)}"
    )
    return 0


def cmd_interpret(args: argparse.Namespace) -> int:
    """Run SPIRE over a persisted trace and write the event stream."""
    trace_path = Path(args.trace)
    sidecar = _sidecar_path(trace_path)
    if not sidecar.exists():
        print(f"error: missing deployment sidecar {sidecar}", file=sys.stderr)
        return 2
    config = SimulationConfig(**json.loads(sidecar.read_text()))
    layout = WarehouseLayout.build(config)
    with trace_path.open("rb") as fp:
        stream = reading_codec.read_trace(fp)

    deployment = Deployment.from_readers(layout.readers, layout.registry)
    spire = Spire(
        deployment,
        InferenceParams(),
        compression_level=args.compression,
    )
    messages = []
    for epoch_readings in stream:
        messages.extend(spire.process_epoch(epoch_readings).messages)

    with Path(args.output).open("wb") as fp:
        written = event_codec.write_stream(messages, fp)
    ratio = compression_ratio(messages, stream.raw_bytes)
    print(
        f"interpreted {stream.total_readings} readings -> {len(messages)} events "
        f"({written} bytes, {ratio:.1%} of raw) to {args.output}"
    )
    print(f"objects tracked at end: {spire.tracked_objects}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Simulate, interpret and score in one go (optionally vs. SMURF)."""
    config = _config_from_args(args)
    sim = WarehouseSimulator(config).run()
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    exclude = frozenset({sim.layout.entry_door.color})

    spire = Spire(deployment, InferenceParams(), compression_level=args.compression)
    accuracy = AccuracyAccumulator(policy=ScoringPolicy.ALL, exclude_colors=exclude)
    messages = []
    for epoch_readings, snapshot in zip(sim.stream, sim.truth.snapshots):
        messages.extend(spire.process_epoch(epoch_readings).messages)
        accuracy.score_epoch(spire, snapshot)

    print(f"trace: {sim.stream.total_readings} readings, {len(sim.stream)} epochs, "
          f"read rate {config.read_rate}")
    print(f"SPIRE (level {args.compression}):")
    print(f"  location error     {accuracy.location_error_rate:8.3%}")
    print(f"  containment error  {accuracy.containment_error_rate:8.3%}")
    print(f"  compression ratio  {compression_ratio(messages, sim.stream.raw_bytes):8.3%}")
    print(f"  output events      {len(messages):8d}")

    if args.smurf:
        smurf = SmurfPipeline(deployment)
        smurf_messages = []
        errors = total = 0
        for epoch_readings, snapshot in zip(sim.stream, sim.truth.snapshots):
            smurf_messages.extend(smurf.process_epoch(epoch_readings))
            for tag, location in snapshot.locations.items():
                if location.color in exclude:
                    continue
                total += 1
                if smurf.location_of(tag) != location.color:
                    errors += 1
        print("SMURF baseline (location only):")
        print(f"  location error     {errors / total if total else 0.0:8.3%}")
        print(f"  compression ratio  {compression_ratio(smurf_messages, sim.stream.raw_bytes):8.3%}")
        print(f"  output events      {len(smurf_messages):8d}")
    return 0


def cmd_decompress(args: argparse.Namespace) -> int:
    """Expand a level-2 event stream file to its level-1 equivalent."""
    from repro.compression.decompress import decompress_stream

    with Path(args.events).open("rb") as fp:
        messages = list(event_codec.read_stream(fp))
    expanded = decompress_stream(messages)
    with Path(args.output).open("wb") as fp:
        written = event_codec.write_stream(expanded, fp)
    print(
        f"decompressed {len(messages)} -> {len(expanded)} messages "
        f"({written} bytes) to {args.output}"
    )
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Run one remote zone-worker daemon until stopped."""
    from repro.distributed.remote import WorkerDaemon

    daemon = WorkerDaemon(host=args.host, port=args.port, name=args.name)
    # the banner is machine-read by spawn_worker_process: keep the format
    print(f"spire-worker {daemon.name} listening on {daemon.host}:{daemon.port}",
          flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        daemon.stop()
    print("spire-worker stopped")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a simulation fault-free and under faults; report the degradation."""
    from repro.events.wellformed import WellFormednessError, check_well_formed
    from repro.experiments.runner import ground_truth_stream
    from repro.faults import (
        DelayBatches,
        DropBatches,
        DuplicateBatches,
        FaultInjector,
        ReaderHealthMonitor,
        ReaderOutage,
        ResilientStream,
        schedule_from_dict,
    )
    from repro.metrics.events import f_measure

    config = _config_from_args(args)
    sim = WarehouseSimulator(config).run()
    deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
    reference = ground_truth_stream(sim)
    tolerance = max(r.period for r in sim.layout.readers) + args.max_delay + 2

    registry = None
    if args.metrics_json:
        from repro.obs.metrics import MetricRegistry

        registry = MetricRegistry()

    if args.schedule:
        try:
            schedule = schedule_from_dict(json.loads(Path(args.schedule).read_text()))
        except (OSError, ValueError) as exc:  # ValueError covers bad JSON too
            print(f"error: cannot load schedule {args.schedule}: {exc}", file=sys.stderr)
            return 2
    else:
        schedule = []
        if args.outage_epochs > 0:
            shelves = [r for r in sim.layout.readers if "shelf" in r.location.name]
            target = shelves[0] if shelves else sim.layout.readers[0]
            schedule.append(
                ReaderOutage(
                    reader_id=target.reader_id,
                    start=args.outage_start,
                    duration=args.outage_epochs,
                )
            )
        if args.drop_rate > 0:
            schedule.append(DropBatches(rate=args.drop_rate))
        if args.delay_rate > 0:
            schedule.append(DelayBatches(rate=args.delay_rate, max_delay=args.max_delay))
        if args.dup_rate > 0:
            schedule.append(DuplicateBatches(rate=args.dup_rate))

    full_schedule = list(schedule)
    net_specs: list = []
    crashes: list = []
    if args.remote_workers:
        if args.workers:
            print("error: --workers and --remote-workers are mutually exclusive",
                  file=sys.stderr)
            return 2
        from repro.faults import split_net_schedule

        # transport faults and scripted crashes go to the remote layer;
        # the injector keeps only the stream-level specs
        schedule, net_specs, crashes = split_net_schedule(schedule)

    injector = FaultInjector(sim.stream, schedule, seed=args.fault_seed)
    resilient = ResilientStream(
        injector,
        max_delay=args.max_delay,
        known_readers=[r.reader_id for r in sim.layout.readers],
        metrics=registry,
    )

    faulted = None
    faulted_coordinator = None
    supervisor_stats = None
    if args.remote_workers:
        from repro.distributed import Coordinator, partition_by_location
        from repro.experiments.remote import RemoteHarness
        from repro.experiments.table3 import scaling_zone_assignment

        def _remote_zones():
            return partition_by_location(
                sim.layout.readers,
                scaling_zone_assignment(config.num_shelves),
                sim.layout.registry,
                compression_level=args.compression,
            )

        # serial baseline: the remote engine's clean-run stream is
        # byte-identical to it, so the degradation isolates the faults
        baseline_coordinator = Coordinator(_remote_zones(), checkpoint_interval=50)
        baseline_messages = []
        for epoch_readings in sim.stream:
            baseline_messages.extend(
                baseline_coordinator.process_epoch(epoch_readings).messages
            )
        crash_at = {crash.at_epoch: crash.worker for crash in crashes}
        harness = RemoteHarness(
            _remote_zones(),
            args.remote_workers,
            net_specs=net_specs,
            net_seed=args.fault_seed,
            metrics=registry,
        )
        faulted_coordinator = harness.coordinator
        faulted_messages = []
        try:
            for epoch_readings in resilient:
                if epoch_readings.epoch in crash_at:
                    harness.crash_worker(crash_at[epoch_readings.epoch])
                faulted_messages.extend(
                    faulted_coordinator.process_epoch(epoch_readings).messages
                )
            faulted_stats = faulted_coordinator.stats
            supervisor_stats = faulted_coordinator.supervisor.stats
        finally:
            harness.close()
    elif args.workers:
        # zone-sharded engine: both runs go through ParallelCoordinator so
        # the degradation isolates the faults, not the execution model
        from repro.distributed import ParallelCoordinator, partition_by_location
        from repro.experiments.table3 import scaling_zone_assignment

        def _make_coordinator(metrics=None):
            zones = partition_by_location(
                sim.layout.readers,
                scaling_zone_assignment(config.num_shelves),
                sim.layout.registry,
                compression_level=args.compression,
            )
            return ParallelCoordinator(
                zones, checkpoint_interval=50, workers=args.workers, metrics=metrics
            )

        baseline_messages = []
        with _make_coordinator() as baseline_coordinator:
            for epoch_readings in sim.stream:
                baseline_messages.extend(
                    baseline_coordinator.process_epoch(epoch_readings).messages
                )
        faulted_messages = []
        faulted_coordinator = _make_coordinator(metrics=registry)
        with faulted_coordinator:
            for epoch_readings in resilient:
                faulted_messages.extend(
                    faulted_coordinator.process_epoch(epoch_readings).messages
                )
            faulted_stats = faulted_coordinator.stats
    else:
        # fault-free baseline
        baseline = Spire(deployment, InferenceParams(), compression_level=args.compression)
        baseline_messages = []
        for epoch_readings in sim.stream:
            baseline_messages.extend(baseline.process_epoch(epoch_readings).messages)

        # faulted run: injector -> resilient front-end -> substrate with health
        faulted = Spire(
            deployment,
            InferenceParams(),
            compression_level=args.compression,
            health=ReaderHealthMonitor(deployment.readers, k=args.health_k),
            metrics=registry,
        )
        faulted_messages = []
        for epoch_readings in resilient:
            faulted_messages.extend(faulted.process_epoch(epoch_readings).messages)

    f_baseline = f_measure(baseline_messages, reference, tolerance)
    f_faulted = f_measure(faulted_messages, reference, tolerance)
    degradation = 100.0 * (f_baseline - f_faulted)

    print(f"trace: {sim.stream.total_readings} readings, {len(sim.stream)} epochs")
    print(f"fault schedule ({len(full_schedule)} spec(s)):")
    for spec in full_schedule:
        print(f"  {spec}")
    print(f"injected: {len(injector.dropped_epochs)} dropped, "
          f"{len(injector.delayed_epochs)} delayed, "
          f"{len(injector.duplicated_epochs)} duplicated batch(es)")
    print(f"absorbed: {resilient.synthesized_epochs} epoch(s) synthesized; warnings "
          f"{resilient.quarantine.counts() or '{}'}")
    if faulted is not None and faulted.health is not None:
        silent = sum(1 for w in faulted.health.events if w.kind == "reader_silent")
        print(f"reader health: {silent} silent transition(s), "
              f"{len(faulted.health.events) - silent} recovery transition(s)")
    if faulted_coordinator is not None:
        engine = "remote" if args.remote_workers else "parallel"
        print(f"{engine} engine: {args.remote_workers or args.workers} worker(s), "
              f"{len(faulted_coordinator.zones)} zones")
        for line in faulted_stats.summary_lines():
            print(f"  {line}")
        if supervisor_stats is not None:
            for line in supervisor_stats.summary_lines():
                print(f"  {line}")
            counts = faulted_coordinator.quarantine.counts()
            if counts:
                print(f"  coordinator warnings  {counts}")
    print(f"F-measure (tolerance {tolerance} epochs):")
    print(f"  fault-free   {f_baseline:8.4f}  ({len(baseline_messages)} events)")
    print(f"  under faults {f_faulted:8.4f}  ({len(faulted_messages)} events)")
    print(f"  degradation  {degradation:+8.2f} points")

    exit_code = 0
    for label, messages in (("fault-free", baseline_messages), ("faulted", faulted_messages)):
        try:
            check_well_formed(messages)
            print(f"well-formedness ({label}): ok")
        except WellFormednessError as exc:
            print(f"well-formedness ({label}): VIOLATED — {exc}", file=sys.stderr)
            exit_code = 1
    if args.max_degradation is not None and degradation > args.max_degradation:
        print(
            f"error: degradation {degradation:.2f} exceeds "
            f"--max-degradation {args.max_degradation}",
            file=sys.stderr,
        )
        exit_code = 1
    if registry is not None:
        # coordinator snapshots fold in the per-zone registries its
        # workers shipped; the in-process path is all in one registry
        snapshot = (
            faulted_coordinator.metrics_snapshot()
            if faulted_coordinator is not None
            else registry.snapshot()
        )
        _dump_metrics_json(snapshot, args.metrics_json)
    return exit_code


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the Table III speed sweep and write ``BENCH_table3.json``."""
    from repro.experiments import table3

    if args.seed is None:
        args.seed = 41
    registry = None
    if args.metrics_json:
        from repro.obs.metrics import MetricRegistry

        registry = MetricRegistry()
    milestones = args.milestones or list(table3.DEFAULT_MILESTONES)
    payload = table3.run_table3(
        milestones=milestones,
        cases_per_pallet=args.cases,
        seed=args.seed,
        compare_full=args.compare_full,
        metrics=registry,
    )
    rows = payload["incremental"]["milestones"]
    print(f"workload: {payload['workload']['duration']} epochs, "
          f"{args.cases} cases/pallet, seed {args.seed}")
    print(f"{'milestone':>9}  {'nodes':>6}  {'edges':>7}  "
          f"{'avg/epoch':>10}  {'complete':>10}")
    for row in rows:
        print(f"{row['milestone']:>9}  {row['nodes']:>6}  {row['edges']:>7}  "
              f"{row['avg_epoch_s'] * 1000:>8.2f}ms  "
              f"{row['complete_epoch_s'] * 1000:>8.1f}ms")
    hits, misses = payload["incremental"]["cache_hits"], payload["incremental"]["cache_misses"]
    print(f"decision cache: {hits} hits / {misses} misses "
          f"({hits / max(hits + misses, 1):.1%}); peak RSS {payload['peak_rss_kb']} kB")
    if args.compare_full:
        for entry in payload["speedup_vs_full_scan"]:
            print(f"speedup vs full scan @ {entry['milestone']}: "
                  f"avg {entry['avg_epoch']:.2f}x, complete {entry['complete_epoch']:.2f}x")

    exit_code = 0
    if args.workers:
        scaling = table3.run_scaling(
            milestones=milestones,
            worker_counts=tuple(args.workers),
            cases_per_pallet=args.cases,
            seed=args.seed,
        )
        payload["scaling"] = scaling
        serial = scaling["serial_fast_checkpoints"]
        print(f"scaling sweep over {scaling['workload']['zones']} zones "
              f"(machine has {scaling['machine']['cpu_count']} CPU(s)):")
        print(f"  {'config':>24}  {'total':>8}  {'msg/s':>8}  stream sha256")
        for label, run in (
            ("serial (pickle ckpt)", scaling["serial_pickle_checkpoints"]),
            ("serial (fast ckpt)", serial),
            *((f"{run['workers']} worker(s)", run) for run in scaling["parallel"].values()),
        ):
            rate = run["messages"] / max(run["total_s"], 1e-12)
            print(f"  {label:>24}  {run['total_s']:>7.2f}s  {rate:>8.0f}  "
                  f"{run['stream_sha256'][:16]}")
        print(f"  streams identical: {scaling['streams_identical']}")
        if "checkpoint_codecs" in scaling:
            ckpt = scaling["checkpoint_codecs"]
            print(f"  checkpoint codec @ {ckpt['nodes']} nodes: encode "
                  f"{ckpt['encode_speedup']:.2f}x, decode {ckpt['decode_speedup']:.2f}x "
                  f"faster than pickle")
        for name, run in scaling["parallel"].items():
            ipc = run["ipc"]
            print(f"  {name}: {ipc['bytes_to_workers']} B out / "
                  f"{ipc['bytes_from_workers']} B back, fan-out {ipc['fanout_s']:.2f}s, "
                  f"fan-in wait {ipc['fanin_wait_s']:.2f}s, "
                  f"{ipc['checkpoints']} in-worker checkpoint(s) "
                  f"in {ipc['checkpoint_s']:.2f}s")
        if not scaling["streams_identical"]:
            print("error: parallel merged stream diverged from serial", file=sys.stderr)
            exit_code = 1
        if args.check_parallel:
            problems = table3.check_parallel_throughput(
                scaling,
                workers_key=f"workers_{args.workers[0]}",
                tolerance=args.parallel_tolerance,
            )
            if problems:
                for problem in problems:
                    print(f"parallel gate: {problem}", file=sys.stderr)
                exit_code = 1
            else:
                print(f"parallel throughput gate (workers={args.workers[0]}, "
                      f"tolerance {args.parallel_tolerance:.0%}): ok")

    if args.remote_workers:
        from repro.experiments.remote import run_remote
        from repro.faults import schedule_from_dict

        remote_schedule = []
        if args.remote_schedule:
            try:
                remote_schedule = schedule_from_dict(
                    json.loads(Path(args.remote_schedule).read_text())
                )
            except (OSError, ValueError) as exc:
                print(f"error: cannot load schedule {args.remote_schedule}: {exc}",
                      file=sys.stderr)
                return 2
        remote = run_remote(
            milestones=milestones,
            workers=args.remote_workers,
            cases_per_pallet=args.cases,
            seed=args.seed,
            schedule=remote_schedule,
        )
        payload["remote"] = remote
        sup = remote["remote"]["supervisor"]
        print(f"remote sweep: {args.remote_workers} TCP worker(s), "
              f"{len(remote['net_schedule'])} net fault(s), "
              f"{len(remote['crashes'])} scripted crash(es)")
        print(f"  remote {remote['remote']['total_s']:.2f}s / "
              f"serial {remote['serial']['total_s']:.2f}s; "
              f"requests {sup['requests']}, retries {sup['retries']}, "
              f"worker deaths {sup['worker_deaths']}")
        print(f"  streams identical: {remote['streams_identical']}")
        if not remote["streams_identical"]:
            print("error: remote merged stream diverged from serial", file=sys.stderr)
            exit_code = 1

    if args.patterns:
        from repro.experiments import sase

        patterns = sase.run_patterns_bench(
            milestone=max(milestones),
            cases_per_pallet=args.cases,
            seed=args.seed,
        )
        payload["patterns"] = patterns
        print(f"pattern catalogue @ {patterns['workload']['milestone']}: "
              f"legacy {patterns['legacy_s']:.2f}s, "
              f"compiled {patterns['compiled_s']:.2f}s "
              f"({patterns['overhead_ratio']:.2f}x), "
              f"{patterns['matches']} matches "
              f"({patterns['match_throughput_per_s']:.0f}/s), "
              f"compile {patterns['compile_seconds_total'] * 1e3:.1f}ms total")
        for row in patterns["catalogue"]:
            marker = "ok" if row["equivalent"] else "DIVERGED"
            print(f"  {row['name']:>16}  {row['matches']:>6} match(es)  {marker}")
        for problem in sase.check_patterns(patterns):
            print(f"pattern gate: {problem}", file=sys.stderr)
            exit_code = 1

    if args.fanout:
        from repro.experiments import fanout as fanout_mod

        fanout = fanout_mod.run_fanout_bench(
            milestone=max(milestones),
            cases_per_pallet=args.cases,
            seed=args.seed,
            subscribers=args.fanout_subscribers,
            distinct=args.fanout_distinct,
        )
        payload["fanout"] = fanout
        inproc, tcp = fanout["fanout"], fanout["tcp"]
        print(f"fan-out @ {inproc['milestone']}: {inproc['subscribers']} "
              f"subscriber(s) over {inproc['distinct_patterns']} pattern(s), "
              f"{inproc['shared_runtimes']} shared runtime(s), "
              f"{inproc['evaluations_per_epoch']:.0f} eval(s)/epoch, "
              f"publish mean {inproc['publish_latency']['mean_ms']:.2f}ms, "
              f"{inproc['notifications_delivered']} delivered")
        print(f"  equivalence: byte_identical={fanout['equivalence']['byte_identical']}, "
              f"{fanout['equivalence']['evaluation_savings_x']:.1f}x fewer evaluations")
        print(f"  tcp @ {tcp['milestone']}: {tcp['queries_per_s']:.0f} queries/s "
              f"sustained under {tcp['tcp_subscribers']} pushed subscription(s), "
              f"{tcp['subscriptions_evicted']} eviction(s)")
        for problem in fanout_mod.check_fanout(fanout):
            print(f"fanout gate: {problem}", file=sys.stderr)
            exit_code = 1

    if args.check_against:
        baseline_path = Path(args.check_against)
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        problems = table3.check_regression(
            payload, table3.load_payload(baseline_path), args.max_regression
        )
        if problems:
            for problem in problems:
                print(f"regression: {problem}", file=sys.stderr)
            exit_code = 1
        else:
            print(f"regression check vs {baseline_path}: ok "
                  f"(tolerance {args.max_regression:.0%})")

    if registry is not None:
        _dump_metrics_json(registry.snapshot(), args.metrics_json)
    if args.output:
        table3.write_payload(payload, args.output)
        print(f"wrote {args.output}")
    return exit_code


def _load_query_index(args: argparse.Namespace) -> EventStreamIndex:
    """Build the query index, through the snapshot cache when requested.

    The cache is keyed on the sha256 of the raw event-stream bytes plus
    the ``--decompress`` flag: a hit skips decoding and index construction
    entirely; a miss (or a stale/corrupt snapshot) rebuilds and rewrites.
    """
    import io

    raw = Path(args.events).read_bytes()
    cache = getattr(args, "index_cache", None)
    if cache:
        from repro.query.snapshot import (
            SnapshotError,
            fingerprint_stream,
            load_index,
            save_index,
        )

        fingerprint = fingerprint_stream(raw)
        cache_path = Path(cache)
        if cache_path.exists():
            try:
                index, meta = load_index(cache_path)
            except SnapshotError as exc:
                print(f"index cache unreadable ({exc}); rebuilding", file=sys.stderr)
            else:
                if meta.fingerprint == fingerprint and meta.decompress == args.decompress:
                    return index
                print("index cache stale; rebuilding", file=sys.stderr)
        messages = list(event_codec.read_stream(io.BytesIO(raw)))
        index = EventStreamIndex(messages, decompress=args.decompress)
        written = save_index(
            index, cache_path, fingerprint=fingerprint, decompress=args.decompress
        )
        print(f"wrote index cache {cache_path} ({written} bytes)", file=sys.stderr)
        return index
    messages = list(event_codec.read_stream(io.BytesIO(raw)))
    return EventStreamIndex(messages, decompress=args.decompress)


def cmd_query(args: argparse.Namespace) -> int:
    """Answer point/path/tree queries over a persisted event stream."""
    index = _load_query_index(args)

    if args.path:
        for interval in index.path(args.object):
            ve = "now" if interval.ve == float("inf") else int(interval.ve)
            print(f"L{interval.value}: [{interval.vs}, {ve})")
        for report in index.missing_reports(args.object):
            print(f"reported missing at {report}")
        return 0

    if args.at is None:
        print("error: provide --at EPOCH or --path", file=sys.stderr)
        return 2
    place = index.location_of(args.object, args.at)
    container = index.container_of(args.object, args.at)
    top = index.top_level_container(args.object, args.at)
    print(f"object     {args.object}")
    print(f"location   {'L' + str(place) if place is not None else 'unknown'}")
    print(f"container  {container if container is not None else '-'}")
    if top != args.object:
        print(f"top-level  {top}")
    if index.is_missing(args.object, args.at):
        print("status     reported missing")
    if args.tree:
        print("containment tree:")
        print(index.render_tree(top, args.at))
    return 0


#: legacy shorthand -> (argument field names, expected form); the field
#: list drives per-field error messages in parse_pattern
_PATTERN_FORMS = {
    "tail": ((), "tail or tail:PLACE"),
    "object": (("LEVEL", "SERIAL"), "object:LEVEL:SERIAL (e.g. object:item:5)"),
    "place": (("PLACE",), "place:PLACE"),
    "dwell": (("PLACE", "K"), "dwell:PLACE:K"),
    "missing": (("K",), "missing:K"),
    "anomaly": (("PLACE",), "anomaly:PLACE"),
}


def _looks_like_pattern_source(text: str) -> bool:
    head = text.lstrip().upper()
    return head.startswith("PATTERN") or head.startswith("SEQ")


def _int_field(parts: list[str], index: int, name: str, head: str, form: str) -> int:
    """One integer field of a legacy shorthand, with a named error."""
    if index >= len(parts) or not parts[index]:
        raise argparse.ArgumentTypeError(
            f"{head} pattern is missing its {name} field; expected {form}"
        )
    try:
        return int(parts[index])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{head} pattern field {name} must be an integer, "
            f"got {parts[index]!r}; expected {form}"
        ) from None


def parse_pattern(text: str):
    """Parse a ``client --subscribe`` argument into a pattern spec.

    Accepts the legacy shorthands — ``tail[:PLACE]``,
    ``object:LEVEL:SERIAL``, ``place:PLACE``, ``dwell:PLACE:K``,
    ``missing:K``, ``anomaly:PLACE`` (each now served by its
    :mod:`repro.sase` library definition) — or full pattern source text
    (anything starting with ``PATTERN`` or ``SEQ``), validated by the
    local compiler before it is shipped to the server.
    """
    from repro.serving.patterns import (
        PATTERN_DWELL,
        PATTERN_LEFT_WITHOUT_CONTAINER,
        PATTERN_MISSING,
        PATTERN_OBJECT,
        PATTERN_PLACE,
        PATTERN_SASE,
        PATTERN_TAIL,
        PatternSpec,
    )

    if _looks_like_pattern_source(text):
        from repro.sase import PatternError, compile_pattern

        try:
            compile_pattern(text)
        except PatternError as exc:
            raise argparse.ArgumentTypeError(f"pattern does not compile: {exc}") from exc
        return PatternSpec(PATTERN_SASE, source=text)

    parts = text.split(":")
    head = parts[0]
    if head not in _PATTERN_FORMS:
        forms = ", ".join(form for _, form in _PATTERN_FORMS.values())
        raise argparse.ArgumentTypeError(
            f"unknown pattern {text!r}; expected one of: {forms}; "
            f"or full pattern source starting with PATTERN/SEQ "
            f"(e.g. \"PATTERN SEQ(arrival a, !departure d) WHERE ... WITHIN 10 EPOCHS\")"
        )
    fields, form = _PATTERN_FORMS[head]
    extra = len(parts) - 1 - len(fields)
    if head == "tail":
        if len(parts) > 2:
            raise argparse.ArgumentTypeError(
                f"tail pattern takes at most one field; expected {form}"
            )
        place = _int_field(parts, 1, "PLACE", head, form) if len(parts) > 1 else None
        return PatternSpec(PATTERN_TAIL, place=place)
    if extra > 0:
        raise argparse.ArgumentTypeError(
            f"{head} pattern has {extra} extra field(s); expected {form}"
        )
    if head == "object":
        if len(parts) < 3 or not parts[1] or not parts[2]:
            raise argparse.ArgumentTypeError(
                f"object pattern is missing its LEVEL:SERIAL tag; expected {form}"
            )
        try:
            obj = parse_tag(f"{parts[1]}:{parts[2]}")
        except argparse.ArgumentTypeError as exc:
            raise argparse.ArgumentTypeError(
                f"object pattern tag field: {exc}; expected {form}"
            ) from exc
        return PatternSpec(PATTERN_OBJECT, obj=obj)
    if head == "place":
        return PatternSpec(PATTERN_PLACE, place=_int_field(parts, 1, "PLACE", head, form))
    if head == "dwell":
        return PatternSpec(
            PATTERN_DWELL,
            place=_int_field(parts, 1, "PLACE", head, form),
            k=_int_field(parts, 2, "K", head, form),
        )
    if head == "missing":
        return PatternSpec(PATTERN_MISSING, k=_int_field(parts, 1, "K", head, form))
    return PatternSpec(
        PATTERN_LEFT_WITHOUT_CONTAINER, place=_int_field(parts, 1, "PLACE", head, form)
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Replay a trace through a coordinator and serve continuous queries."""
    import asyncio
    import itertools

    from repro.distributed import (
        Coordinator,
        ParallelCoordinator,
        partition_by_location,
    )
    from repro.experiments.table3 import scaling_zone_assignment
    from repro.serving.frontend import MultiProcessFrontend, try_install_uvloop
    from repro.serving.server import SpireServer, pump_coordinator

    if args.uvloop:
        installed = try_install_uvloop()
        print(f"uvloop {'installed' if installed else 'not importable; using asyncio'}")

    trace_path = Path(args.trace)
    sidecar = _sidecar_path(trace_path)
    if not sidecar.exists():
        print(f"error: missing deployment sidecar {sidecar}", file=sys.stderr)
        return 2
    config = SimulationConfig(**json.loads(sidecar.read_text()))
    layout = WarehouseLayout.build(config)
    with trace_path.open("rb") as fp:
        stream = reading_codec.read_trace(fp)

    registry = None
    if args.metrics_json:
        from repro.obs.metrics import MetricRegistry

        registry = MetricRegistry()
    multiproc = args.acceptors > 0
    if multiproc:
        server = MultiProcessFrontend(
            args.host,
            args.port,
            acceptors=args.acceptors,
            expand_level2=(args.compression == 2),
            evict_after=args.evict_after,
            use_uvloop=args.uvloop,
        )
        if args.state:
            print("warning: --state is ignored with --acceptors "
                  "(subscription persistence is single-process only)",
                  file=sys.stderr)
        quarantine = None
    else:
        server = SpireServer(
            args.host,
            args.port,
            expand_level2=(args.compression == 2),
            evict_after=args.evict_after,
        )
        if args.state:
            restored = server.load_subscriptions(args.state)
            if restored:
                print(f"restored {restored} subscription(s) from {args.state}")
        quarantine = server.engine.quarantine
    zones = partition_by_location(
        layout.readers,
        scaling_zone_assignment(config.num_shelves),
        layout.registry,
        compression_level=args.compression,
        quarantine=quarantine,
    )
    if args.workers:
        coordinator = ParallelCoordinator(
            zones, checkpoint_interval=50, workers=args.workers, metrics=registry
        )
    else:
        coordinator = Coordinator(zones, checkpoint_interval=50, metrics=registry)

    async def run() -> int:
        epochs = stream
        if args.epochs is not None:
            epochs = itertools.islice(stream, args.epochs)
        async with server:
            print(
                f"serving on {server.host}:{server.port} "
                f"({len(zones)} zone(s), "
                f"{args.workers or 'no'} worker(s), "
                f"compression level {args.compression}"
                + (f", {args.acceptors} acceptor(s)" if multiproc else "")
                + ")"
            )
            pumped = await pump_coordinator(
                server, coordinator, epochs, epoch_interval=args.epoch_interval
            )
            print(f"pumped {pumped} epoch(s); stream exhausted")
            if args.linger > 0:
                print(f"lingering {args.linger:.0f}s for queries")
                await asyncio.sleep(args.linger)
            if not multiproc and args.state:
                saved = server.save_subscriptions(args.state)
                print(f"saved {saved} subscription(s) to {args.state}")
        return pumped

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
    finally:
        if isinstance(coordinator, ParallelCoordinator):
            coordinator.close()
        print("serving statistics:")
        if multiproc:
            for key, value in sorted(server.stats_dict().items()):
                print(f"  {key:26} {value}")
        else:
            for line in server.engine.stats.summary_lines():
                print(f"  {line}")
            counts = server.engine.quarantine.counts()
            if counts:
                print(f"  warnings              {counts}")
            if registry is not None:
                _dump_metrics_json(server.metrics_snapshot(), args.metrics_json)
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    """Connect to a running ``serve`` instance and query or follow it."""
    import asyncio

    from repro.serving.client import ServingError, SpireClient

    async def run() -> int:
        client = await SpireClient.connect(args.host, args.port)
        try:
            if args.metrics:
                print(await client.metrics(), end="")
                return 0
            if args.stats:
                for key, value in (await client.stats()).items():
                    print(f"{key:26} {value}")
                return 0
            if args.subscribe:
                subs = []
                for text in args.subscribe:
                    spec = parse_pattern(text)
                    sub = await client.subscribe(spec.source or spec)
                    print(f"subscribed #{sub.id} to {text}")
                    subs.append(sub)
                received = 0
                while args.count is None or received < args.count:
                    try:
                        sub_id, note = await client.next_notification(
                            timeout=args.timeout
                        )
                    except asyncio.TimeoutError:
                        print(f"no notification within {args.timeout:.0f}s", file=sys.stderr)
                        return 1
                    print(f"#{sub_id} {note}" if len(subs) > 1 else note)
                    received += 1
                for sub in subs:
                    await sub.cancel()
                return 0
            if args.object is None or args.at is None:
                print("error: provide --object and --at, --subscribe, --stats, "
                      "or --metrics", file=sys.stderr)
                return 2
            place = await client.location_of(args.object, args.at)
            container = await client.container_of(args.object, args.at)
            missing = await client.is_missing(args.object, args.at)
            print(f"object     {args.object}")
            print(f"location   {'L' + str(place) if place is not None else 'unknown'}")
            print(f"container  {container if container is not None else '-'}")
            if missing:
                print("status     reported missing")
            return 0
        finally:
            await client.close()

    try:
        return asyncio.run(run())
    except argparse.ArgumentTypeError as exc:
        print(f"error: argument --subscribe: {exc}", file=sys.stderr)
        return 2
    except (ConnectionError, ServingError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-spire argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-spire",
        description="SPIRE: RFID stream interpretation and compression",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    seed_parent = _seed_parent()
    workers_parent = _workers_parent()
    metrics_parent = _metrics_parent()

    simulate = subparsers.add_parser("simulate", help="generate a synthetic trace",
                                     parents=[seed_parent])
    _add_config_arguments(simulate)
    simulate.add_argument("-o", "--output", required=True, help="trace output path")
    simulate.set_defaults(func=cmd_simulate)

    interpret = subparsers.add_parser("interpret", help="run SPIRE over a trace")
    interpret.add_argument("trace", help="trace file written by 'simulate'")
    interpret.add_argument("-o", "--output", required=True, help="event stream output path")
    interpret.add_argument("--compression", type=int, choices=(1, 2), default=2)
    interpret.set_defaults(func=cmd_interpret)

    evaluate = subparsers.add_parser("evaluate", help="simulate + interpret + score",
                                     parents=[seed_parent])
    _add_config_arguments(evaluate)
    evaluate.add_argument("--compression", type=int, choices=(1, 2), default=2)
    evaluate.add_argument("--smurf", action="store_true", help="also run the SMURF baseline")
    evaluate.set_defaults(func=cmd_evaluate)

    decompress = subparsers.add_parser(
        "decompress", help="expand a level-2 event stream to level-1 (§V-C)"
    )
    decompress.add_argument("events", help="level-2 event stream file")
    decompress.add_argument("-o", "--output", required=True, help="level-1 output path")
    decompress.set_defaults(func=cmd_decompress)

    chaos = subparsers.add_parser(
        "chaos", help="run a simulation under an injected fault schedule",
        parents=[seed_parent, workers_parent, metrics_parent],
    )
    _add_config_arguments(chaos)
    chaos.add_argument("--compression", type=int, choices=(1, 2), default=2)
    chaos.add_argument(
        "--schedule",
        help="JSON fault schedule file (see docs/FAULTS.md); overrides the flags below",
    )
    chaos.add_argument("--fault-seed", type=int, default=7, help="injector RNG seed")
    chaos.add_argument("--outage-epochs", type=int, default=50,
                       help="length of the shelf-reader outage (0 disables)")
    chaos.add_argument("--outage-start", type=int, default=200)
    chaos.add_argument("--drop-rate", type=float, default=0.02,
                       help="per-batch drop probability")
    chaos.add_argument("--delay-rate", type=float, default=0.05,
                       help="per-batch delay probability")
    chaos.add_argument("--dup-rate", type=float, default=0.0,
                       help="per-batch duplication probability")
    chaos.add_argument("--max-delay", type=int, default=3,
                       help="injector max delay and ingestion watermark lag (epochs)")
    chaos.add_argument("--health-k", type=float, default=3.0,
                       help="reader-health silence tolerance in interrogation periods")
    chaos.add_argument("--max-degradation", type=float, default=None,
                       help="fail (exit 1) if F-measure degrades by more than this many points")
    chaos.add_argument(
        "--remote-workers", type=int, default=None,
        help="run the faulted engine over this many localhost TCP worker "
             "daemons; net_delay/net_drop/net_dup/net_partition/worker_crash "
             "entries in --schedule apply to the transport (docs/FAULTS.md)",
    )
    chaos.set_defaults(func=cmd_chaos)

    worker = subparsers.add_parser(
        "worker", help="run one remote zone-worker daemon (TCP)"
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free one and prints it)")
    worker.add_argument("--name", default=None,
                        help="identity reported in the HELLO handshake")
    worker.set_defaults(func=cmd_worker)

    bench = subparsers.add_parser(
        "bench", help="run the Table III speed sweep (writes BENCH_table3.json)",
        parents=[seed_parent, metrics_parent],
    )
    bench.add_argument(
        "--milestones", type=int, nargs="+", default=None,
        help="node-count milestones to window costs at (default: 2k 4k 8k 12k)",
    )
    bench.add_argument("--cases", type=int, default=5, help="cases per pallet")
    bench.add_argument("-o", "--output", default=None,
                       help="write the JSON payload here (e.g. BENCH_table3.json)")
    bench.add_argument("--compare-full", action="store_true",
                       help="also run the full-scan pipeline and report speedups")
    bench.add_argument("--check-against", default=None,
                       help="baseline payload to gate against (exit 1 on regression)")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="allowed fractional avg-epoch regression vs the baseline")
    bench.add_argument(
        "--workers", type=int, nargs="+", default=None,
        help="also run the multi-worker scaling sweep at these worker counts "
             "(e.g. --workers 1 2 4 8); adds a 'scaling' section to the payload",
    )
    bench.add_argument(
        "--check-parallel", action="store_true",
        help="with --workers: fail unless the first worker count's throughput "
             "is within --parallel-tolerance of the serial run and streams match",
    )
    bench.add_argument("--parallel-tolerance", type=float, default=0.25,
                       help="allowed fractional throughput shortfall vs serial")
    bench.add_argument(
        "--remote-workers", type=int, default=None,
        help="also run the remote-transport determinism sweep over this many "
             "localhost TCP workers; adds a 'remote' section to the payload "
             "and fails (exit 1) if its stream diverges from serial",
    )
    bench.add_argument(
        "--remote-schedule", default=None,
        help="JSON transport-fault schedule for the remote sweep "
             "(net_* and worker_crash kinds only; see docs/FAULTS.md)",
    )
    bench.add_argument(
        "--patterns", action="store_true",
        help="also run the pattern-compiler bench at the largest milestone "
             "(legacy catalogue vs repro.sase compiled patterns); adds a "
             "'patterns' section and fails (exit 1) if notifications diverge",
    )
    bench.add_argument(
        "--fanout", action="store_true",
        help="also run the subscription fan-out bench at the largest "
             "milestone (shared fan-out tree, batched push frames, "
             "sustained queries under push load); adds a 'fanout' section "
             "and fails (exit 1) on any floor violation",
    )
    bench.add_argument("--fanout-subscribers", type=int, default=10_000,
                       help="subscriber count for the fan-out bench")
    bench.add_argument("--fanout-distinct", type=int, default=100,
                       help="distinct pattern count for the fan-out bench")
    bench.set_defaults(func=cmd_bench)

    query = subparsers.add_parser("query", help="query a persisted event stream")
    query.add_argument("events", help="event stream file written by 'interpret'")
    query.add_argument("--object", type=parse_tag, required=True, help="e.g. case:3")
    query.add_argument("--at", type=int, help="epoch to query")
    query.add_argument("--path", action="store_true", help="print the full trajectory")
    query.add_argument(
        "--tree",
        action="store_true",
        help="with --at: print the containment tree of the object's top-level container",
    )
    query.add_argument(
        "--decompress",
        action="store_true",
        help="treat the input as a level-2 stream and decompress first",
    )
    query.add_argument(
        "--index-cache",
        default=None,
        help="snapshot file to persist/reload the built index (keyed on the "
             "event file's sha256; stale or corrupt caches are rebuilt)",
    )
    query.set_defaults(func=cmd_query)

    serve = subparsers.add_parser(
        "serve", help="replay a trace and serve continuous queries over TCP",
        parents=[workers_parent, metrics_parent],
    )
    serve.add_argument("trace", help="trace file written by 'simulate'")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one and prints it)")
    serve.add_argument("--compression", type=int, choices=(1, 2), default=2)
    serve.add_argument("--epoch-interval", type=float, default=0.0,
                       help="seconds between epochs (approximate a live stream)")
    serve.add_argument("--epochs", dest="epochs", type=int, default=None,
                       help="stop after this many epochs (default: whole trace)")
    serve.add_argument("--max-epochs", dest="epochs", type=int,
                       action=_deprecated_alias("--epochs"), help=argparse.SUPPRESS)
    serve.add_argument("--linger", type=float, default=0.0,
                       help="keep serving queries this many seconds after the "
                            "stream is exhausted")
    serve.add_argument("--evict-after", type=int, default=0,
                       help="evict a subscriber after this many consecutive "
                            "overflowing epochs (0 disables eviction)")
    serve.add_argument("--state", default=None,
                       help="subscription state file: restore standing "
                            "patterns from it on start and save them on "
                            "shutdown (single-process mode only)")
    serve.add_argument("--acceptors", type=int, default=0,
                       help="run this many SO_REUSEPORT acceptor processes "
                            "instead of a single in-process server "
                            "(0 = single process)")
    serve.add_argument("--uvloop", action="store_true",
                       help="install uvloop when importable (silently ignored "
                            "when the package is absent)")
    serve.set_defaults(func=cmd_serve)

    client = subparsers.add_parser(
        "client", help="connect to a running 'serve' instance"
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--object", type=parse_tag, help="e.g. case:3 (with --at)")
    client.add_argument("--at", type=int, help="epoch to query")
    client.add_argument(
        "--subscribe", action="append", metavar="PATTERN",
        help="follow a standing pattern (repeatable; notifications are "
             "prefixed with their #id when several are active): a shorthand "
             "— tail[:PLACE], object:LEVEL:SERIAL, place:PLACE, dwell:PLACE:K, "
             "missing:K, anomaly:PLACE — or full pattern source, e.g. "
             "\"PATTERN SEQ(arrival a, !departure d) WHERE a.place == 3 AND "
             "d.obj == a.obj WITHIN 50 EPOCHS\"",
    )
    client.add_argument("--count", type=int, default=None,
                        help="with --subscribe: exit after this many notifications")
    client.add_argument("--timeout", type=float, default=30.0,
                        help="with --subscribe: per-notification wait (seconds)")
    client.add_argument("--stats", action="store_true",
                        help="print the server's serving counters and exit")
    client.add_argument("--metrics", action="store_true",
                        help="print the server's Prometheus metrics scrape and exit")
    client.set_defaults(func=cmd_client)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

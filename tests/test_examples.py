"""Smoke tests: every example script runs to completion.

Each example is executed in-process via ``runpy`` with stdout captured —
they are self-contained (fixed seeds, bounded durations), so a clean exit
plus non-trivial output is the contract being checked.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 3, f"{script} produced almost no output"


def test_quickstart_reports_compression(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "compressed output" in out
    assert "event messages" in out


def test_theft_detection_detects_something(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "theft_detection.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "detected" in out and "delay" in out

"""Query processing over compressed event streams.

Section V-B calls the range-compressed output *directly queriable* by event
processors; this package provides that front-end: an interval index built
from a level-1 stream (level-2 streams are decompressed on demand, §V-C)
answering the tracking and path queries RFID applications ask — where was
an object at time t, what did a container hold, which objects passed
through a location, an object's full path.
"""

from repro.query.index import EventStreamIndex, Interval
from repro.query.snapshot import SnapshotMeta, load_index, loads_index, dumps_index, save_index

__all__ = [
    "EventStreamIndex",
    "Interval",
    "SnapshotMeta",
    "dumps_index",
    "load_index",
    "loads_index",
    "save_index",
]

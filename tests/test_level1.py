"""Unit tests for range (level-1) compression (§V-B)."""

import pytest

from repro.compression.level1 import RangeCompressor
from repro.events.messages import EventKind
from repro.events.wellformed import check_well_formed
from repro.model.locations import UNKNOWN_COLOR

from tests.conftest import case, item

L1, L2 = 0, 1


@pytest.fixture
def compressor() -> RangeCompressor:
    return RangeCompressor()


def kinds(messages):
    return [m.kind for m in messages]


class TestLocationCompression:
    def test_first_observation_opens_interval(self, compressor):
        out = compressor.observe(item(1), L1, None, now=0)
        assert kinds(out) == [EventKind.START_LOCATION]
        assert out[0].place == L1 and out[0].vs == 0

    def test_unchanged_state_emits_nothing(self, compressor):
        compressor.observe(item(1), L1, None, now=0)
        for now in range(1, 20):
            assert compressor.observe(item(1), L1, None, now) == []

    def test_move_emits_end_start_pair(self, compressor):
        compressor.observe(item(1), L1, None, now=0)
        out = compressor.observe(item(1), L2, None, now=5)
        assert kinds(out) == [EventKind.END_LOCATION, EventKind.START_LOCATION]
        assert out[0].place == L1 and out[0].vs == 0 and out[0].ve == 5
        assert out[1].place == L2 and out[1].vs == 5

    def test_missing_emits_end_and_missing(self, compressor):
        compressor.observe(item(1), L1, None, now=0)
        out = compressor.observe(item(1), UNKNOWN_COLOR, None, now=7)
        assert kinds(out) == [EventKind.END_LOCATION, EventKind.MISSING]
        assert out[1].place == L1 and out[1].vs == 7

    def test_missing_reported_once(self, compressor):
        compressor.observe(item(1), L1, None, now=0)
        compressor.observe(item(1), UNKNOWN_COLOR, None, now=7)
        assert compressor.observe(item(1), UNKNOWN_COLOR, None, now=8) == []

    def test_reappearance_reopens_interval(self, compressor):
        compressor.observe(item(1), L1, None, now=0)
        compressor.observe(item(1), UNKNOWN_COLOR, None, now=7)
        out = compressor.observe(item(1), L2, None, now=12)
        assert kinds(out) == [EventKind.START_LOCATION]
        assert out[0].place == L2

    def test_first_estimate_unknown_with_no_history_is_silent(self, compressor):
        assert compressor.observe(item(1), UNKNOWN_COLOR, None, now=0) == []


class TestContainmentCompression:
    def test_containment_start(self, compressor):
        out = compressor.observe(item(1), L1, case(1), now=0)
        assert kinds(out) == [EventKind.START_CONTAINMENT, EventKind.START_LOCATION]

    def test_containment_change_emits_end_start(self, compressor):
        compressor.observe(item(1), L1, case(1), now=0)
        out = compressor.observe(item(1), L1, case(2), now=5)
        assert kinds(out) == [EventKind.END_CONTAINMENT, EventKind.START_CONTAINMENT]
        assert out[0].container == case(1) and out[0].ve == 5
        assert out[1].container == case(2)

    def test_containment_removal(self, compressor):
        compressor.observe(item(1), L1, case(1), now=0)
        out = compressor.observe(item(1), L1, None, now=5)
        assert kinds(out) == [EventKind.END_CONTAINMENT]

    def test_missing_does_not_end_containment(self, compressor):
        compressor.observe(item(1), L1, case(1), now=0)
        out = compressor.observe(item(1), UNKNOWN_COLOR, case(1), now=5)
        assert EventKind.END_CONTAINMENT not in kinds(out)
        assert EventKind.MISSING in kinds(out)


class TestDepart:
    def test_depart_closes_everything(self, compressor):
        compressor.observe(item(1), L1, case(1), now=0)
        out = compressor.depart(item(1), now=9)
        assert kinds(out) == [EventKind.END_CONTAINMENT, EventKind.END_LOCATION]
        assert compressor.state_of(item(1)) is None

    def test_depart_unknown_object_is_noop(self, compressor):
        assert compressor.depart(item(1), now=3) == []

    def test_departed_object_can_reappear(self, compressor):
        compressor.observe(item(1), L1, None, now=0)
        compressor.depart(item(1), now=5)
        out = compressor.observe(item(1), L2, None, now=9)
        assert kinds(out) == [EventKind.START_LOCATION]


class TestStreamConfiguration:
    def test_location_only_stream(self):
        compressor = RangeCompressor(emit_location=True, emit_containment=False)
        out = compressor.observe(item(1), L1, case(1), now=0)
        assert kinds(out) == [EventKind.START_LOCATION]

    def test_containment_only_stream(self):
        compressor = RangeCompressor(emit_location=False, emit_containment=True)
        out = compressor.observe(item(1), L1, case(1), now=0)
        assert kinds(out) == [EventKind.START_CONTAINMENT]

    def test_location_only_still_tracks_containment(self):
        # so that flipping policy later cannot produce unmatched ends
        compressor = RangeCompressor(emit_location=True, emit_containment=False)
        compressor.observe(item(1), L1, case(1), now=0)
        assert compressor.state_of(item(1)).containment == (case(1), 0)


class TestWellFormedness:
    def test_long_random_looking_history_is_well_formed(self, compressor):
        stream = []
        pattern = [L1, L1, L2, UNKNOWN_COLOR, UNKNOWN_COLOR, L1, L2, L2]
        containers = [None, case(1), case(1), case(1), None, None, case(2), None]
        for now, (loc, cont) in enumerate(zip(pattern, containers)):
            stream.extend(compressor.observe(item(1), loc, cont, now))
        stream.extend(compressor.depart(item(1), now=len(pattern)))
        check_well_formed(stream)

"""Compressed event-stream format (Section V-A).

Five message kinds encode location and containment events with validity
intervals: StartLocation / EndLocation, StartContainment / EndContainment,
and singleton Missing messages.  :mod:`repro.events.wellformed` checks the
well-formedness guarantee the paper's output module provides.
"""

from repro.events.messages import (
    EVENT_MESSAGE_BYTES,
    INFINITY,
    EventKind,
    EventMessage,
    end_containment,
    end_location,
    missing,
    start_containment,
    start_location,
    stream_bytes,
)
from repro.events.wellformed import WellFormednessError, check_well_formed

__all__ = [
    "EventKind",
    "EventMessage",
    "INFINITY",
    "EVENT_MESSAGE_BYTES",
    "start_location",
    "end_location",
    "start_containment",
    "end_containment",
    "missing",
    "stream_bytes",
    "check_well_formed",
    "WellFormednessError",
]

"""Querying a compressed event stream: tracking and path queries.

SPIRE's range-compressed output is directly queriable (§V-B).  This example
interprets a trace with level-2 compression, builds an interval index over
the (decompressed) stream, and answers the questions supply-chain
applications ask: where was this object at time t, what did this case hold,
which objects passed through the packaging area, what was this pallet's
path through the warehouse.

Usage:  python examples/stream_queries.py
"""

from repro import (
    Deployment,
    SimulationConfig,
    Spire,
    WarehouseSimulator,
)
from repro.model.objects import PackagingLevel
from repro.query import EventStreamIndex


def main() -> None:
    config = SimulationConfig(
        duration=1200,
        pallet_period=200,
        cases_per_pallet_min=3,
        cases_per_pallet_max=3,
        items_per_case=4,
        read_rate=0.9,
        shelf_read_period=15,
        num_shelves=2,
        shelving_time_mean=240,
        shelving_time_jitter=60,
        seed=21,
    )
    sim = WarehouseSimulator(config).run()
    registry = sim.layout.registry

    spire = Spire(Deployment.from_readers(sim.layout.readers, registry))
    messages = []
    for epoch_readings in sim.stream:
        messages.extend(spire.process_epoch(epoch_readings).messages)
    print(f"compressed stream: {len(messages)} messages over {len(sim.stream)} epochs")

    # level-2 streams are decompressed on the way into the index (§V-C)
    index = EventStreamIndex(messages, decompress=True)

    def loc(color):
        return registry.by_color(color).name if color is not None else "unreported"

    # 1. point query: where was everything at mid-trace?
    t = 600
    print(f"\nobjects at the packaging area at t={t}:")
    packaging = sim.layout.packaging.color
    for tag in index.objects_at(packaging, t)[:8]:
        print(f"  {tag} (inside {index.container_of(tag, t) or 'nothing'})")

    # 2. path query: one case's trajectory through the warehouse
    cases = [o for o in index.objects() if o.level == PackagingLevel.CASE]
    target = cases[0]
    print(f"\npath of {target}:")
    for interval in index.path(target):
        ve = "now" if interval.ve == float("inf") else int(interval.ve)
        print(f"  {loc(interval.value):16s} [{interval.vs:5d}, {ve})")
    print(f"containment history of {target}:")
    for interval in index.containment_history(target):
        ve = "now" if interval.ve == float("inf") else int(interval.ve)
        print(f"  in {str(interval.value):12s} [{interval.vs:5d}, {ve})")

    # 3. aggregate: dwell times on the shelves
    shelf = sim.layout.shelves[0].color
    horizon = len(sim.stream)
    dwells = [
        (index.dwell_time(case, shelf, horizon=horizon), case) for case in cases
    ]
    dwells = [d for d in dwells if d[0] > 0]
    if dwells:
        avg = sum(d for d, _ in dwells) / len(dwells)
        print(f"\n{len(dwells)} cases visited {loc(shelf)}; average dwell {avg:.0f}s")

    # 4. window query: everything that passed the exit belt in the last 5 min
    exit_belt = sim.layout.exit_belt.color
    recent = index.visitors(exit_belt, horizon - 300, horizon)
    print(f"objects on the exit belt in the final 5 minutes: {len(recent)}")


if __name__ == "__main__":
    main()

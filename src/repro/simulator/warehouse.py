"""The warehouse simulator driving the Section VI evaluation.

One :class:`WarehouseSimulator` run advances a :class:`PhysicalWorld`
through the paper's pallet lifecycle and, each epoch, lets every scheduled
reader observe its location with the configured read rate.  The result
bundles the raw reading stream, the per-epoch ground truth, and the layout
(locations + readers) that SPIRE needs to interpret the stream.

Lifecycle (Section VI-A): pallets arrive at the entry door; after a short
dock dwell they are unpacked and their cases queue for the receiving belt,
which scans one case at a time; each case then sits on a shelf for its
shelving period, moves to the packaging area, and once enough cases are
ready a fresh pallet is assembled; the new pallet is scanned on the exit
belt (again one at a time) and leaves through the exit door.  Emptied
arrival pallets also leave via the exit belt and door.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.model.locations import Location, UNKNOWN_LOCATION
from repro.model.objects import PackagingLevel, TagAllocator, TagId
from repro.model.truth import GroundTruthRecorder
from repro.model.world import PhysicalWorld
from repro.readers.noise import BurstLossModel
from repro.readers.stream import EpochReadings, ReadingStream
from repro.simulator.anomalies import AnomalyInjector, RemovalEvent
from repro.simulator.config import SimulationConfig
from repro.simulator.layout import WarehouseLayout


@dataclass
class SimulationResult:
    """Everything one simulator run produces.

    Attributes:
        config: The configuration the run used.
        layout: Locations and readers of the simulated warehouse.
        stream: Raw (pre-deduplication) reading stream, one entry per epoch.
        truth: Ground-truth recorder with one snapshot per epoch.
        removals: Injected anomaly events (empty when anomalies disabled).
        pallets_arrived: Number of pallets injected at the entry door.
        pallets_assembled: Number of fresh pallets assembled in packaging.
        peak_objects: Maximum number of objects simultaneously in the world.
        items_fallen: Number of items that fell off their case on the belt.
    """

    config: SimulationConfig
    layout: WarehouseLayout
    stream: ReadingStream
    truth: GroundTruthRecorder
    removals: list[RemovalEvent] = field(default_factory=list)
    pallets_arrived: int = 0
    pallets_assembled: int = 0
    peak_objects: int = 0
    items_fallen: int = 0


class WarehouseSimulator:
    """Generates synthetic RFID traces emulating a large warehouse."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.layout = WarehouseLayout.build(config)
        self.world = PhysicalWorld()
        self.truth = GroundTruthRecorder()
        self._rng = np.random.default_rng(config.seed)
        self._tags = TagAllocator()
        self._injector = (
            AnomalyInjector(config.anomaly_period, self._rng)
            if config.anomaly_period > 0
            else None
        )

        # lifecycle bookkeeping -------------------------------------------------
        self._dock: list[tuple[int, TagId]] = []          # (unpack_at, pallet)
        self._belt_queue: deque[TagId] = deque()          # cases awaiting receiving belt
        self._belt_busy_until = -1
        self._belt_current: TagId | None = None
        self._shelved: list[tuple[int, int, TagId, Location]] = []  # heap (leave_at, tiebreak, case, shelf)
        self._heap_seq = 0
        self._packaging_ready: deque[tuple[int, TagId]] = deque()   # (ready_at, case)
        self._next_pallet_size = self._sample_pallet_size()
        self._exit_belt_queue: deque[TagId] = deque()     # pallets awaiting exit belt
        self._exit_belt_busy_until = -1
        self._exit_belt_current: TagId | None = None
        self._exit_door: list[tuple[int, TagId]] = []     # (leave_at, container)
        self._lost_items: list[tuple[int, TagId]] = []    # (pickup_at, fallen item)
        self._shelf_rr = 0
        self._fall_off_count = 0
        # per-reader Gilbert-Elliott channels (lazy; None = i.i.d. losses)
        self._burst_models: dict[int, BurstLossModel] | None = (
            {} if config.burst_mean_length > 0 else None
        )

        self._pallets_arrived = 0
        self._pallets_assembled = 0
        self._peak_objects = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run the full simulation and return its artifacts."""
        stream = ReadingStream()
        for epoch in range(self.config.duration):
            stream.append(self.step(epoch))
        return SimulationResult(
            config=self.config,
            layout=self.layout,
            stream=stream,
            truth=self.truth,
            removals=self._injector.events if self._injector else [],
            pallets_arrived=self._pallets_arrived,
            pallets_assembled=self._pallets_assembled,
            peak_objects=self._peak_objects,
            items_fallen=self._fall_off_count,
        )

    def step(self, epoch: int) -> EpochReadings:
        """Advance the world by one epoch and return that epoch's readings."""
        self._advance_lifecycle(epoch)
        if self._injector is not None:
            self._injector.maybe_remove(
                self.world,
                self.truth,
                epoch,
                protected=frozenset({self.layout.exit_door.color}),
            )
        self.truth.capture(self.world, epoch)
        self._peak_objects = max(self._peak_objects, len(self.world))
        return self._generate_readings(epoch)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _advance_lifecycle(self, epoch: int) -> None:
        self._maybe_inject_pallet(epoch)
        self._maybe_unpack(epoch)
        self._serve_receiving_belt(epoch)
        self._collect_lost_items(epoch)
        self._release_shelves(epoch)
        self._maybe_assemble(epoch)
        self._serve_exit_belt(epoch)
        self._serve_exit_door(epoch)

    def _alive(self, tag: TagId) -> bool:
        """Is ``tag`` still in the world at a known location?

        Anomaly victims vanish to the unknown location while still queued in
        lifecycle structures; every queue pop goes through this check so
        stolen objects simply fall out of the flow.
        """
        return tag in self.world and self.world.location_of(tag) is not UNKNOWN_LOCATION

    def _maybe_inject_pallet(self, epoch: int) -> None:
        if epoch % self.config.pallet_period != 0:
            return
        pallet = self._tags.allocate(PackagingLevel.PALLET)
        self.world.add_object(pallet, self.layout.entry_door, now=epoch)
        case_count = self._sample_pallet_size()
        for _ in range(case_count):
            case = self._tags.allocate(PackagingLevel.CASE)
            self.world.add_object(case, self.layout.entry_door, now=epoch)
            for _ in range(self.config.items_per_case):
                item = self._tags.allocate(PackagingLevel.ITEM)
                self.world.add_object(item, self.layout.entry_door, now=epoch)
                self.world.contain(item, case)
            self.world.contain(case, pallet)
        self._dock.append((epoch + self.config.dock_dwell, pallet))
        self._pallets_arrived += 1

    def _maybe_unpack(self, epoch: int) -> None:
        remaining: list[tuple[int, TagId]] = []
        for unpack_at, pallet in self._dock:
            if not self._alive(pallet):
                continue
            if unpack_at > epoch:
                remaining.append((unpack_at, pallet))
                continue
            for case in sorted(self.world.children_of(pallet)):
                self.world.uncontain(case)
                self._belt_queue.append(case)
            self._exit_belt_queue.append(pallet)  # empty pallet leaves the site
        self._dock = remaining

    def _serve_receiving_belt(self, epoch: int) -> None:
        if self._belt_current is not None and epoch >= self._belt_busy_until:
            case = self._belt_current
            self._belt_current = None
            if self._alive(case):
                self._maybe_drop_item(case, epoch)
                shelf = self.layout.shelves[self._shelf_rr % len(self.layout.shelves)]
                self._shelf_rr += 1
                self.world.move(case, shelf)
                leave_at = epoch + self._sample_shelving_time()
                self._heap_seq += 1
                heapq.heappush(self._shelved, (leave_at, self._heap_seq, case, shelf))
        while self._belt_current is None and self._belt_queue:
            case = self._belt_queue.popleft()
            if not self._alive(case):
                continue
            self.world.move(case, self.layout.receiving_belt)
            self._belt_current = case
            self._belt_busy_until = epoch + self.config.belt_dwell

    def _release_shelves(self, epoch: int) -> None:
        while self._shelved and self._shelved[0][0] <= epoch:
            _leave_at, _seq, case, _shelf = heapq.heappop(self._shelved)
            if not self._alive(case):
                continue
            self.world.move(case, self.layout.packaging)
            self._packaging_ready.append((epoch + self.config.packaging_dwell, case))

    def _maybe_assemble(self, epoch: int) -> None:
        ready = [
            case
            for ready_at, case in self._packaging_ready
            if ready_at <= epoch and self._alive(case)
        ]
        if len(ready) < self._next_pallet_size:
            return
        chosen = ready[: self._next_pallet_size]
        chosen_set = set(chosen)
        self._packaging_ready = deque(
            (ready_at, case)
            for ready_at, case in self._packaging_ready
            if case not in chosen_set and self._alive(case)
        )
        pallet = self._tags.allocate(PackagingLevel.PALLET)
        self.world.add_object(pallet, self.layout.packaging, now=epoch)
        for case in chosen:
            self.world.contain(case, pallet)
        self._exit_belt_queue.append(pallet)
        self._pallets_assembled += 1
        self._next_pallet_size = self._sample_pallet_size()

    def _serve_exit_belt(self, epoch: int) -> None:
        if self._exit_belt_current is not None and epoch >= self._exit_belt_busy_until:
            pallet = self._exit_belt_current
            self._exit_belt_current = None
            if self._alive(pallet):
                self.world.move(pallet, self.layout.exit_door)
                self._exit_door.append((epoch + self.config.belt_dwell, pallet))
        while self._exit_belt_current is None and self._exit_belt_queue:
            pallet = self._exit_belt_queue.popleft()
            if not self._alive(pallet):
                continue
            self.world.move(pallet, self.layout.exit_belt)
            self._exit_belt_current = pallet
            self._exit_belt_busy_until = epoch + self.config.belt_dwell

    def _maybe_drop_item(self, case: TagId, epoch: int) -> None:
        """One item may fall off the case during its belt scan (Fig. 1, t=3)."""
        probability = self.config.fall_off_probability
        if probability <= 0.0 or self._rng.random() >= probability:
            return
        items = sorted(self.world.children_of(case))
        if not items:
            return
        item = items[int(self._rng.integers(len(items)))]
        self.world.uncontain(item)
        # the item stays on the belt; staff pick it up after the timeout
        self._lost_items.append((epoch + self.config.lost_item_timeout, item))
        self._fall_off_count += 1

    def _collect_lost_items(self, epoch: int) -> None:
        remaining: list[tuple[int, TagId]] = []
        for pickup_at, item in self._lost_items:
            if not self._alive(item):
                continue
            if pickup_at > epoch:
                remaining.append((pickup_at, item))
                continue
            # staff carry the stray item to the exit door (proper disposal)
            self.world.move(item, self.layout.exit_door)
            self._exit_door.append((epoch + self.config.belt_dwell, item))
        self._lost_items = remaining

    def _serve_exit_door(self, epoch: int) -> None:
        remaining: list[tuple[int, TagId]] = []
        for leave_at, container in self._exit_door:
            if container not in self.world:
                continue
            if leave_at > epoch:
                remaining.append((leave_at, container))
                continue
            for tag in self.world.remove_subtree(container):
                self.truth.note_exited(tag, epoch)
        self._exit_door = remaining

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def _generate_readings(self, epoch: int) -> EpochReadings:
        readings = EpochReadings(epoch=epoch)
        for reader in self.layout.readers:
            if not reader.interrogates_at(epoch):
                continue
            present = self.world.objects_at(reader.location)
            if self._burst_models is not None:
                observed = self._burst_model_for(reader).observe(
                    reader.reader_id, present, self._rng
                )
            else:
                observed = reader.observe(present, self._rng, epoch)
            readings.add(reader.reader_id, observed)
        return readings

    def _burst_model_for(self, reader):
        assert self._burst_models is not None
        model = self._burst_models.get(reader.reader_id)
        if model is None:
            model = BurstLossModel.from_average(
                reader.read_rate, mean_burst=self.config.burst_mean_length
            )
            self._burst_models[reader.reader_id] = model
        return model

    # ------------------------------------------------------------------
    # sampling helpers
    # ------------------------------------------------------------------

    def _sample_pallet_size(self) -> int:
        lo, hi = self.config.cases_per_pallet_min, self.config.cases_per_pallet_max
        if lo == hi:
            return lo
        return int(self._rng.integers(lo, hi + 1))

    def _sample_shelving_time(self) -> int:
        mean, jitter = self.config.shelving_time_mean, self.config.shelving_time_jitter
        if jitter == 0:
            return mean
        low = max(1, mean - jitter)
        return int(self._rng.integers(low, mean + jitter + 1))

"""Well-formedness checking of compressed event streams (Section V-A).

A stream is *well-formed* when, per object:

* every StartLocation is matched by an EndLocation with the same location
  and start timestamp before another location interval opens;
* likewise for containment intervals (which nest freely with location
  intervals — a containment pair may span several location pairs and vice
  versa);
* Missing messages appear only outside any open location interval.

The output of both compression levels must satisfy this; tests and the
property-based suite drive arbitrary world histories through the pipeline
and assert it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.events.messages import INFINITY, EventKind, EventMessage
from repro.model.objects import TagId


class WellFormednessError(AssertionError):
    """A compressed stream violated the §V-A well-formedness guarantee."""


@dataclass
class _ObjectStreamState:
    open_location: tuple[int, int] | None = None        # (place, vs)
    open_containments: dict[TagId, int] = field(default_factory=dict)  # container -> vs


def check_well_formed(messages: Iterable[EventMessage]) -> None:
    """Validate a whole stream; raises :class:`WellFormednessError` on violation.

    The stream may end with intervals still open (the run simply stopped);
    only improper nesting/matching is an error.
    """
    states: dict[TagId, _ObjectStreamState] = {}
    last_occurrence = -1
    for i, msg in enumerate(messages):
        # emission (occurrence) time: Ve for end messages, Vs otherwise
        occurred = int(msg.ve) if msg.kind in (EventKind.END_LOCATION, EventKind.END_CONTAINMENT) else msg.vs
        if occurred < last_occurrence:
            raise WellFormednessError(
                f"message {i} ({msg}) goes back in time: "
                f"occurred {occurred} after {last_occurrence}"
            )
        last_occurrence = occurred
        state = states.setdefault(msg.obj, _ObjectStreamState())

        if msg.kind is EventKind.START_LOCATION:
            if msg.ve != INFINITY:
                raise WellFormednessError(f"message {i} ({msg}): start message with finite Ve")
            if state.open_location is not None:
                raise WellFormednessError(
                    f"message {i} ({msg}): location interval already open at "
                    f"L{state.open_location[0]}"
                )
            state.open_location = (msg.place, msg.vs)  # type: ignore[arg-type]

        elif msg.kind is EventKind.END_LOCATION:
            if state.open_location is None:
                raise WellFormednessError(f"message {i} ({msg}): no open location interval")
            place, vs = state.open_location
            if place != msg.place or vs != msg.vs:
                raise WellFormednessError(
                    f"message {i} ({msg}): does not match open interval (L{place}, Vs={vs})"
                )
            state.open_location = None

        elif msg.kind is EventKind.MISSING:
            if state.open_location is not None:
                raise WellFormednessError(
                    f"message {i} ({msg}): Missing inside an open location interval"
                )

        elif msg.kind is EventKind.START_CONTAINMENT:
            if msg.ve != INFINITY:
                raise WellFormednessError(f"message {i} ({msg}): start message with finite Ve")
            if msg.container in state.open_containments:
                raise WellFormednessError(
                    f"message {i} ({msg}): containment in {msg.container} already open"
                )
            if state.open_containments:
                raise WellFormednessError(
                    f"message {i} ({msg}): object already inside another container "
                    f"({next(iter(state.open_containments))})"
                )
            state.open_containments[msg.container] = msg.vs  # type: ignore[index]

        elif msg.kind is EventKind.END_CONTAINMENT:
            vs = state.open_containments.pop(msg.container, None)  # type: ignore[arg-type]
            if vs is None:
                raise WellFormednessError(
                    f"message {i} ({msg}): no open containment in {msg.container}"
                )
            if vs != msg.vs:
                raise WellFormednessError(
                    f"message {i} ({msg}): Vs does not match open containment (Vs={vs})"
                )


def open_intervals(messages: Iterable[EventMessage]) -> dict[TagId, _ObjectStreamState]:
    """Replay a (well-formed) stream and return the still-open intervals."""
    states: dict[TagId, _ObjectStreamState] = {}
    for msg in messages:
        state = states.setdefault(msg.obj, _ObjectStreamState())
        if msg.kind is EventKind.START_LOCATION:
            state.open_location = (msg.place, msg.vs)  # type: ignore[arg-type]
        elif msg.kind is EventKind.END_LOCATION:
            state.open_location = None
        elif msg.kind is EventKind.START_CONTAINMENT:
            state.open_containments[msg.container] = msg.vs  # type: ignore[index]
        elif msg.kind is EventKind.END_CONTAINMENT:
            state.open_containments.pop(msg.container, None)  # type: ignore[arg-type]
    return states

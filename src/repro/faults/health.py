"""Reader-health monitoring and graceful degradation.

A silently dead reader is indistinguishable, epoch by epoch, from a reader
whose field of view is empty: both contribute nothing to ``by_reader``.
The difference shows over time — a reader that has reported *nothing* for
``k`` times its interrogation period is presumed down (tags rarely all
leave a monitored location at once without an exit reading).

:class:`ReaderHealthMonitor` tracks last-report times per reader and
derives the set of **suppressed colors**: locations where *every* mapped
reader is presumed down.  The pipeline threads this set into
:class:`~repro.core.capture.GraphUpdater` and
:class:`~repro.core.iterative.IterativeInference`, where it stops non-reads
from decaying location posteriors or accumulating negative containment
evidence — a dead shelf reader must not make every object on the shelf
drift toward "missing".  When the reader returns, suppression lifts and
normal decay resumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.warnings import IngestWarning, WarningKind
from repro.readers.stream import EpochReadings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (capture imports stream)
    from repro.core.capture import ReaderInfo

__all__ = ["ReaderHealthMonitor"]


class ReaderHealthMonitor:
    """Flags readers silent for longer than ``k`` interrogation periods.

    Args:
        readers: The deployment's reader metadata (id -> ReaderInfo).
        k: Silence tolerance in interrogation periods.  A reader with
            period ``p`` is presumed down once it has reported nothing for
            more than ``k * p`` epochs.  Must allow at least a few missed
            interrogations (``k >= 1``).
    """

    def __init__(self, readers: "dict[int, ReaderInfo]", k: float = 3.0) -> None:
        if k < 1.0:
            raise ValueError(f"silence tolerance k must be >= 1, got {k}")
        self._readers = dict(readers)
        self.k = k
        # derived at registration time (not per epoch): per-reader silence
        # limit in epochs, and the color each reader maps to
        self._silence_limit: dict[int, float] = {
            reader_id: k * info.period for reader_id, info in self._readers.items()
        }
        self._color_of: dict[int, int] = {
            reader_id: info.color for reader_id, info in self._readers.items()
        }
        self._last_report: dict[int, int] = {}
        self._baseline: int | None = None
        self._down: set[int] = set()
        #: reader_silent / reader_recovered transitions, in detection order
        self.events: list[IngestWarning] = []

    # ------------------------------------------------------------------

    def observe_epoch(self, readings: EpochReadings, now: int) -> None:
        """Record one (deduplicated) epoch and update health state."""
        if self._baseline is None:
            self._baseline = now
        for reader_id in readings.by_reader:
            if reader_id not in self._readers:
                continue
            self._last_report[reader_id] = now
            if reader_id in self._down:
                self._down.discard(reader_id)
                self.events.append(
                    IngestWarning(
                        kind=WarningKind.READER_RECOVERED,
                        epoch=now,
                        reader_id=reader_id,
                        detail="reader reporting again; suppression lifted",
                    )
                )
        last_report = self._last_report
        baseline = self._baseline
        down = self._down
        for reader_id, limit in self._silence_limit.items():
            if reader_id in down:
                continue
            silent_for = now - last_report.get(reader_id, baseline)
            if silent_for > limit:
                down.add(reader_id)
                self.events.append(
                    IngestWarning(
                        kind=WarningKind.READER_SILENT,
                        epoch=now,
                        reader_id=reader_id,
                        detail=(
                            f"no report for {silent_for} epochs "
                            f"(> {self.k} x period {self._readers[reader_id].period})"
                        ),
                    )
                )

    # ------------------------------------------------------------------

    def silent_readers(self) -> frozenset[int]:
        """Readers currently presumed down."""
        return frozenset(self._down)

    def is_silent(self, reader_id: int) -> bool:
        return reader_id in self._down

    def suppressed_colors(self) -> frozenset[int]:
        """Colors whose every mapped reader is presumed down.

        A location with at least one live reader still produces evidence,
        so its non-reads keep their normal meaning.
        """
        live: set[int] = set()
        candidates: set[int] = set()
        for reader_id, color in self._color_of.items():
            if reader_id in self._down:
                candidates.add(color)
            else:
                live.add(color)
        return frozenset(candidates - live)

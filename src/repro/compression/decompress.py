"""On-demand decompression of a level-2 stream into level-1 (Section V-C).

The routine replays the level-2 stream in time order, maintaining the
current containment hierarchy and each object's current reported location.
Location updates of a container are copied to every (transitively)
contained object, and duplicate events — e.g. the catch-up
``StartLocation`` a level-2 compressor emits at containment end when
propagation has already placed the object there — are suppressed, exactly
as the paper's subtlety paragraph describes.

End-message validity intervals are normalised to the decompressed stream's
own open intervals (the compressor's view of a child's interval start can
be stale, since the child's moves were suppressed while contained).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.events.messages import (
    EventKind,
    EventMessage,
    end_location,
    missing,
    start_location,
)
from repro.model.objects import TagId


@dataclass
class _DecompState:
    open_location: tuple[int, int] | None = None  # (place, vs)
    last_place: int | None = None
    is_missing: bool = False


class Level2Decompressor:
    """Streaming level-2 → level-1 transformer.

    Feed messages in stream (time) order through :meth:`process`; each call
    returns the level-1 messages that input message expands to (possibly
    none, when the message is a suppressed duplicate).
    """

    def __init__(self) -> None:
        self._children: dict[TagId, set[TagId]] = {}
        self._parent: dict[TagId, TagId] = {}
        self._state: dict[TagId, _DecompState] = {}

    # ------------------------------------------------------------------

    def process(self, msg: EventMessage) -> list[EventMessage]:
        """Decompress one input message."""
        if msg.kind is EventKind.START_CONTAINMENT:
            return self._start_containment(msg)
        if msg.kind is EventKind.END_CONTAINMENT:
            return self._end_containment(msg)
        if msg.kind is EventKind.START_LOCATION:
            return self._apply_start(msg.obj, msg.place, msg.vs)  # type: ignore[arg-type]
        if msg.kind is EventKind.END_LOCATION:
            return self._apply_end(msg.obj, int(msg.ve))
        if msg.kind is EventKind.MISSING:
            return self._apply_missing(msg.obj, msg.vs)
        raise ValueError(f"unexpected message kind {msg.kind}")

    # ------------------------------------------------------------------
    # containment bookkeeping
    # ------------------------------------------------------------------

    def _start_containment(self, msg: EventMessage) -> list[EventMessage]:
        # the compressor aligns the child's location explicitly at
        # containment start (ContainmentCompressor._align_with), so only
        # the hierarchy needs recording here
        child, parent = msg.obj, msg.container
        assert parent is not None
        self._parent[child] = parent
        self._children.setdefault(parent, set()).add(child)
        return [msg]

    def _end_containment(self, msg: EventMessage) -> list[EventMessage]:
        child, parent = msg.obj, msg.container
        if self._parent.get(child) == parent:
            del self._parent[child]
            self._children.get(parent, set()).discard(child)  # type: ignore[arg-type]
        return [msg]

    # ------------------------------------------------------------------
    # location propagation
    # ------------------------------------------------------------------

    def _descendants(self, obj: TagId) -> Iterator[TagId]:
        stack = sorted(self._children.get(obj, ()), reverse=True)
        while stack:
            child = stack.pop()
            yield child
            stack.extend(sorted(self._children.get(child, ()), reverse=True))

    def _apply_start(self, obj: TagId, place: int, vs: int) -> list[EventMessage]:
        out = self._start_one(obj, place, vs)
        for child in self._descendants(obj):
            out.extend(self._start_one(child, place, vs))
        return out

    def _apply_end(self, obj: TagId, ve: int) -> list[EventMessage]:
        out = self._end_one(obj, ve)
        for child in self._descendants(obj):
            out.extend(self._end_one(child, ve))
        return out

    def _apply_missing(self, obj: TagId, vs: int) -> list[EventMessage]:
        out = self._missing_one(obj, vs)
        for child in self._descendants(obj):
            out.extend(self._missing_one(child, vs))
        return out

    def _start_one(self, obj: TagId, place: int, vs: int) -> list[EventMessage]:
        state = self._state.setdefault(obj, _DecompState())
        out: list[EventMessage] = []
        if state.open_location is not None:
            open_place, open_vs = state.open_location
            if open_place == place:
                return []  # duplicate — already reported here
            out.append(end_location(obj, open_place, open_vs, vs))
        out.append(start_location(obj, place, vs))
        state.open_location = (place, vs)
        state.last_place = place
        state.is_missing = False
        return out

    def _end_one(self, obj: TagId, ve: int) -> list[EventMessage]:
        state = self._state.setdefault(obj, _DecompState())
        if state.open_location is None:
            return []  # duplicate — interval already closed
        place, vs = state.open_location
        state.open_location = None
        return [end_location(obj, place, vs, ve)]

    def _missing_one(self, obj: TagId, vs: int) -> list[EventMessage]:
        state = self._state.setdefault(obj, _DecompState())
        if state.is_missing:
            return []  # duplicate — already reported missing
        out: list[EventMessage] = []
        if state.open_location is not None:
            place, open_vs = state.open_location
            out.append(end_location(obj, place, open_vs, vs))
            state.open_location = None
        place = state.last_place
        if place is None:
            return out  # never located; nothing to report missing from
        out.append(missing(obj, place, vs))
        state.is_missing = True
        return out


# Within one time step, containment updates are applied before location
# updates (the paper's processing order); the *relative* order within each
# group is preserved — compressors already emit e.g. End before Start for a
# move, and reordering across start/end kinds would break same-epoch pairs.
_KIND_ORDER = {
    EventKind.END_CONTAINMENT: 0,
    EventKind.START_CONTAINMENT: 0,
    EventKind.END_LOCATION: 1,
    EventKind.MISSING: 1,
    EventKind.START_LOCATION: 1,
}


def _step_of(msg: EventMessage) -> int:
    """The time step a message belongs to (``Ve`` for end messages)."""
    if msg.kind in (EventKind.END_LOCATION, EventKind.END_CONTAINMENT):
        return int(msg.ve)
    return msg.vs


class StreamingLevel2Decompressor:
    """Level-2 → level-1 decompression over an *unfinished* stream.

    Wraps :class:`Level2Decompressor` with the step-grouping the batch
    routine applies — messages of one time step are buffered until the
    next step begins, then replayed containment-first — so a consumer can
    feed messages as they arrive (e.g. from a network tail) and still get
    exactly the batch routine's output.  ``feed`` returns the level-1
    messages completed so far; call ``flush`` when the stream ends (or at
    a known step boundary, e.g. the end of an epoch batch) to drain the
    final buffered step.
    """

    def __init__(self) -> None:
        self._decompressor = Level2Decompressor()
        self._pending: list[EventMessage] = []
        self._pending_step: int | None = None

    def feed(self, msg: EventMessage) -> list[EventMessage]:
        """Absorb one level-2 message; return completed level-1 output."""
        out: list[EventMessage] = []
        step = _step_of(msg)
        if self._pending_step is not None and step != self._pending_step:
            out = self.flush()
        self._pending_step = step
        self._pending.append(msg)
        return out

    def flush(self) -> list[EventMessage]:
        """Decompress the buffered step (call at end of stream/batch)."""
        self._pending.sort(key=lambda m: _KIND_ORDER[m.kind])
        out: list[EventMessage] = []
        for msg in self._pending:
            out.extend(self._decompressor.process(msg))
        self._pending.clear()
        self._pending_step = None
        return out


def decompress_stream(messages: Iterable[EventMessage]) -> list[EventMessage]:
    """Decompress a complete level-2 stream into its level-1 equivalent.

    Messages are grouped by time step and, within each step, containment
    updates are applied before location updates — the processing order of
    the paper's decompression routine.  (For end messages the grouping key
    is ``Ve``, the time the state change happened.)
    """
    streaming = StreamingLevel2Decompressor()
    out: list[EventMessage] = []
    for msg in messages:
        out.extend(streaming.feed(msg))
    out.extend(streaming.flush())
    return out

"""Fig. 10 — graph memory vs. node count per edge-prune threshold (Expt 6).

Reproduces: graph memory usage as the node count grows, one curve per
pruning threshold in {0, 0.25, 0.5, 0.75}.  Expected shape: without
pruning memory grows fastest (candidate edges accumulate); higher
thresholds flatten the growth to ~linear in the node count.  The paper
also notes pruning barely hurts location accuracy (<1 %) but may cost up
to ~8 % containment accuracy — checked by the ablation benchmark
(test_ablation_pruning.py).

Memory is the deterministic `Graph.memory_bytes()` accounting (DESIGN.md
§3 explains the substitution for the paper's JVM heap measurements).
"""

import pytest

from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire

from benchmarks._shared import PAPER_SCALE, Table, get_sim, scale_config

THRESHOLDS = [0.0, 0.25, 0.5, 0.75]
MILESTONES = (
    [25_000, 75_000, 125_000, 175_000] if PAPER_SCALE else [1_500, 3_000, 6_000, 9_000]
)
CASES_PER_PALLET = 5
GROWTH_PER_EPOCH = (1 + CASES_PER_PALLET * 21) / (2 * CASES_PER_PALLET)
DURATION = int(MILESTONES[-1] / GROWTH_PER_EPOCH) + 200


def run_experiment() -> dict:
    sim = get_sim(scale_config(CASES_PER_PALLET, DURATION))
    curves: dict = {}
    for threshold in THRESHOLDS:
        deployment = Deployment.from_readers(sim.layout.readers, sim.layout.registry)
        spire = Spire(
            deployment,
            InferenceParams(prune_threshold=threshold),
            compression_level=2,
        )
        samples: dict[int, tuple[int, int]] = {}
        pending = list(MILESTONES)
        for readings in sim.stream:
            spire.process_epoch(readings)
            if not pending:
                break
            nodes = spire.graph.node_count
            if nodes >= pending[0]:
                samples[pending.pop(0)] = (nodes, spire.graph.memory_bytes())
        curves[threshold] = samples
    return curves


@pytest.mark.benchmark(group="fig10")
def test_fig10_memory_vs_node_count(benchmark):
    curves = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    table = Table(
        "Fig. 10: graph memory (MB) vs. node count, per prune threshold",
        ["nodes"] + [f"thr={t}" for t in THRESHOLDS],
    )
    for milestone in MILESTONES:
        row = [milestone]
        for threshold in THRESHOLDS:
            sample = curves[threshold].get(milestone)
            row.append(sample[1] / 1e6 if sample else float("nan"))
        table.add(*row)
    table.show()

    last = MILESTONES[-1]
    assert all(last in curves[t] for t in THRESHOLDS), "runs did not reach the last milestone"
    # pruning reduces memory, monotonically in the threshold (1 % noise
    # tolerance: different thresholds perturb inference trajectories)
    memories = [curves[t][last][1] for t in THRESHOLDS]
    assert memories[0] > 2 * memories[2], "pruning at 0.5 should beat no pruning"
    assert memories[1] >= 0.99 * memories[2]
    assert memories[2] >= 0.99 * memories[3]
    # with strong pruning the growth is ~linear: bytes/node roughly constant
    strong = curves[0.5]
    per_node = [strong[m][1] / strong[m][0] for m in MILESTONES]
    assert max(per_node) < 1.5 * min(per_node)

"""Zone coordinator: routing, handoff, failover, and output merging.

A :class:`Zone` owns a disjoint subset of the site's readers and runs its
own substrate; the :class:`Coordinator` is the only component that sees
the whole site:

* **routing** — each epoch's (globally deduplicated) readings are split by
  reader ownership and fed to the owning zones; readings from readers no
  zone owns are quarantined with a structured warning (or raise, in
  ``strict`` mode);
* **ownership & handoff** — every tag is owned by the zone that observed
  it most recently; when a tag shows up in a different zone, the old owner
  *releases* it (closing its output intervals and exporting its
  observation memory and confirmations) and the new owner *adopts* it, so
  containment knowledge survives the migration;
* **merging** — the release messages and the zones' per-epoch outputs are
  concatenated (releases first) into one stream that stays well-formed per
  object, because an object's messages always come from its current owner
  and the old owner's intervals are closed before the new owner opens any;
* **failover** — with ``checkpoint_interval`` set, every zone is
  checkpointed periodically (via :mod:`repro.core.checkpoint`) and the
  readings routed to it since the last checkpoint are retained.
  :meth:`Coordinator.fail_zone` simulates (or reacts to) a zone crash: the
  zone's open output intervals are closed so the merged stream stays
  well-formed, and its readings are buffered while it is down.
  :meth:`Coordinator.recover_zone` restores the zone from its last
  checkpoint, replays the buffered epochs to rebuild its state, re-opens
  intervals for the objects it still owns, and releases objects that
  migrated to other zones during the outage — no tag is left permanently
  orphaned.

Zones are plain in-process objects here; the coordinator's contract (pure
message passing: readings in, handoff records and event messages out) is
what a networked deployment would serialise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Mapping

from repro.compression.level1 import RangeCompressor
from repro.compression.level2 import ContainmentCompressor
from repro.core.checkpoint import dumps_spire, loads_spire
from repro.obs.metrics import MetricRegistry, merge_snapshots
from repro.core.params import InferenceParams
from repro.core.pipeline import Deployment, Spire
from repro.events.messages import EventKind, EventMessage, end_containment, end_location
from repro.faults.warnings import IngestWarning, Quarantine, WarningKind
from repro.model.locations import LocationRegistry
from repro.model.objects import TagId
from repro.readers.dedup import Deduplicator
from repro.readers.reader import Reader
from repro.readers.stream import EpochReadings

#: portable knowledge exported at handoff (see ``Spire.release``)
HandoffRecord = dict


@dataclass
class Zone:
    """One partition of the site: a named substrate over some readers."""

    zone_id: str
    spire: Spire
    reader_ids: frozenset[int]

    @classmethod
    def build(
        cls,
        zone_id: str,
        readers: Iterable[Reader],
        registry: LocationRegistry | None = None,
        params: InferenceParams | None = None,
        compression_level: int = 2,
    ) -> "Zone":
        readers = list(readers)
        deployment = Deployment.from_readers(readers, registry)
        return cls(
            zone_id=zone_id,
            spire=Spire(deployment, params, compression_level=compression_level),
            reader_ids=frozenset(r.reader_id for r in readers),
        )


@dataclass
class EpochResult:
    """What one coordinated epoch produced."""

    epoch: int
    messages: list[EventMessage]
    handoffs: list[tuple[TagId, str, str]] = field(default_factory=list)  # (tag, from, to)
    #: structured warnings recorded this epoch (quarantined readings etc.)
    warnings: list[IngestWarning] = field(default_factory=list)


@dataclass
class _ZoneCheckpoint:
    """Last persisted state of one zone (in-memory; bytes are portable)."""

    epoch: int | None  # None = pristine pre-stream state
    data: bytes
    #: the zone registry's snapshot at checkpoint time — checkpoints never
    #: serialize registries, so this is what re-seeds a rebuilt zone's
    #: counters (otherwise failover would silently zero them)
    metrics: dict | None = None


@dataclass
class _OpenIntervals:
    """Open intervals of one object in the *merged* output stream."""

    location: tuple[int, int] | None = None              # (place, vs)
    containments: dict[TagId, int] = field(default_factory=dict)  # container -> vs


class Coordinator:
    """Routes readings to zones and keeps the global view consistent.

    Args:
        zones: The site partition (non-empty, disjoint reader sets).
        strict: When True, a reading from a reader owned by no zone raises
            ``KeyError`` (the historical behavior); when False (default)
            the reading is quarantined with a structured warning.
        checkpoint_interval: Checkpoint every zone after this many epochs,
            enabling :meth:`fail_zone` / :meth:`recover_zone`.  ``None``
            (default) disables failover bookkeeping entirely.
        checkpoint_codec: Serialization codec for zone checkpoints —
            ``"fast"`` (default, the flat binary encoder) or ``"pickle"``
            (the original whole-object round-trip, kept for comparison
            benchmarks; it cannot handle production-scale graphs).
        metrics: Optional :class:`repro.obs.MetricRegistry` for the
            coordinator's own counters (epochs, handoffs, checkpoints,
            quarantine).  When set, every zone additionally gets its own
            registry labelled ``zone=<id>``; :meth:`metrics_snapshot`
            merges them all.  ``None`` (default) disables telemetry.
    """

    def __init__(
        self,
        zones: Iterable[Zone],
        strict: bool = False,
        checkpoint_interval: int | None = None,
        checkpoint_codec: str = "fast",
        metrics: MetricRegistry | None = None,
    ) -> None:
        self.zones: dict[str, Zone] = {}
        self._zone_of_reader: dict[int, str] = {}
        for zone in zones:
            if zone.zone_id in self.zones:
                raise ValueError(f"duplicate zone id {zone.zone_id!r}")
            self.zones[zone.zone_id] = zone
            for reader_id in zone.reader_ids:
                if reader_id in self._zone_of_reader:
                    raise ValueError(
                        f"reader {reader_id} assigned to both "
                        f"{self._zone_of_reader[reader_id]!r} and {zone.zone_id!r}"
                    )
                self._zone_of_reader[reader_id] = zone.zone_id
        if not self.zones:
            raise ValueError("a coordinator needs at least one zone")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(f"checkpoint_interval must be >= 1, got {checkpoint_interval}")
        if checkpoint_codec not in ("fast", "pickle"):
            raise ValueError(f"unknown checkpoint codec {checkpoint_codec!r}")
        self.checkpoint_codec = checkpoint_codec
        self.strict = strict
        self.quarantine = Quarantine()
        self._owner: dict[TagId, str] = {}
        self._dedup = Deduplicator()
        self._last_epoch: int | None = None

        # telemetry: one registry for the coordinator itself, one per zone
        # (zone-labelled) attached to the zone substrates
        self.metrics = metrics if metrics is not None and metrics.enabled else None
        self._zone_registries: dict[str, MetricRegistry] = {}
        if self.metrics is not None:
            self.quarantine.attach_metrics(self.metrics)
            self._m_epochs = self.metrics.counter(
                "spire_coordinator_epochs_total", "Epochs coordinated across zones"
            )
            self._m_handoffs = self.metrics.counter(
                "spire_handoffs_total", "Tag migrations between zones"
            )
            self._m_checkpoints = self.metrics.counter(
                "spire_checkpoints_total", "Zone checkpoints captured"
            )
            self._m_checkpoint_seconds = self.metrics.histogram(
                "spire_checkpoint_seconds", "Zone checkpoint serialization wall time"
            )
            self._m_failed = self.metrics.gauge(
                "spire_failed_zones", "Zones currently marked failed"
            )
            for zone_id, zone in self.zones.items():
                registry = MetricRegistry(const_labels={"zone": zone_id})
                self._zone_registries[zone_id] = registry
                if zone.spire is not None:
                    zone.spire.attach_metrics(registry)

        # failover bookkeeping (only when enabled)
        self._checkpoint_interval = checkpoint_interval
        self._failed: set[str] = set()
        self._checkpoints: dict[str, _ZoneCheckpoint] = {}
        self._replay: dict[str, list[EpochReadings]] = {}
        self._open: dict[TagId, _OpenIntervals] = {}
        if self.failover_enabled:
            for zone_id, zone in self.zones.items():
                self._checkpoints[zone_id] = _ZoneCheckpoint(
                    epoch=None,
                    data=dumps_spire(zone.spire, codec=checkpoint_codec),
                    metrics=(
                        self._zone_registries[zone_id].snapshot()
                        if self.metrics is not None
                        else None
                    ),
                )
                self._replay[zone_id] = []

    # ------------------------------------------------------------------

    @property
    def failover_enabled(self) -> bool:
        return self._checkpoint_interval is not None

    @property
    def failed_zones(self) -> frozenset[str]:
        """Zones currently marked failed."""
        return frozenset(self._failed)

    def _split_by_zone(self, readings: EpochReadings) -> dict[str, EpochReadings]:
        """Dedup, split by owning zone, quarantine the unroutable, retain
        for replay.  Shared by the serial and parallel epoch loops."""
        now = readings.epoch
        clean = self._dedup.process(readings)

        per_zone: dict[str, EpochReadings] = {
            zone_id: EpochReadings(epoch=now) for zone_id in self.zones
        }
        for reader_id, tags in clean.by_reader.items():
            zone_id = self._zone_of_reader.get(reader_id)
            if zone_id is None:
                if self.strict:
                    raise KeyError(f"reading from reader {reader_id} owned by no zone")
                for tag in tags:
                    self.quarantine.hold(tag, reader_id, now, WarningKind.UNMAPPED_READER)
                self.quarantine.warn(
                    WarningKind.UNMAPPED_READER,
                    now,
                    reader_id=reader_id,
                    detail=f"{len(tags)} reading(s) from a reader owned by no zone",
                )
                continue
            per_zone[zone_id].add(reader_id, tags)

        # retain readings for replay-after-recovery
        if self.failover_enabled:
            for zone_id, zone_readings in per_zone.items():
                self._replay[zone_id].append(zone_readings)
        return per_zone

    def process_epoch(self, readings: EpochReadings) -> EpochResult:
        """Coordinate one epoch across all (live) zones."""
        now = readings.epoch
        self._last_epoch = now
        warnings_before = len(self.quarantine.warnings)
        per_zone = self._split_by_zone(readings)

        # migrations: a tag observed in a zone that does not own it
        result = EpochResult(epoch=now, messages=[])
        for zone_id, zone_readings in per_zone.items():
            if zone_id in self._failed:
                continue
            for tag in zone_readings.tags_seen():
                owner = self._owner.get(tag)
                if owner is None:
                    self._owner[tag] = zone_id
                elif owner != zone_id:
                    if owner in self._failed:
                        # the owner crashed: its intervals were closed at
                        # fail time, so the orphan is simply re-adopted by
                        # the observing zone with no exported knowledge
                        self.zones[zone_id].spire.adopt({"tag": tag}, now)
                    else:
                        record, closing = self.zones[owner].spire.release(tag, now)
                        result.messages.extend(closing)
                        self.zones[zone_id].spire.adopt(record, now)
                    self._owner[tag] = zone_id
                    result.handoffs.append((tag, owner, zone_id))

        # each live zone processes its share; outputs are concatenated in
        # zone order after the handoff closures
        for zone_id in sorted(per_zone):
            if zone_id in self._failed:
                continue
            output = self.zones[zone_id].spire.process_epoch(per_zone[zone_id])
            result.messages.extend(output.messages)
            for tag in output.departed:
                self._owner.pop(tag, None)

        if self.failover_enabled:
            self._track_messages(result.messages)
            for zone_id in self.zones:
                if (
                    zone_id not in self._failed
                    and len(self._replay[zone_id]) >= self._checkpoint_interval  # type: ignore[operator]
                ):
                    self._checkpoint_zone(zone_id, now)

        if self.metrics is not None:
            self._m_epochs.inc()
            self._m_handoffs.inc(len(result.handoffs))
        result.warnings = self.quarantine.warnings[warnings_before:]
        return result

    def run(self, stream: Iterable[EpochReadings]) -> list[EpochResult]:
        """Coordinate a whole stream."""
        return [self.process_epoch(readings) for readings in stream]

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def fail_zone(self, zone_id: str, at: int | None = None) -> list[EventMessage]:
        """Mark ``zone_id`` crashed; returns interval-closing messages.

        The zone's in-memory substrate is considered lost.  To keep the
        merged stream well-formed, every open interval of an object the
        zone owns is closed at epoch ``at`` (default: the last processed
        epoch); append the returned messages to the merged stream.  Until
        :meth:`recover_zone`, the zone's readings are buffered and objects
        it owned are re-adopted by any zone that observes them.
        """
        self._require_failover()
        if zone_id not in self.zones:
            raise KeyError(f"unknown zone {zone_id!r}")
        if zone_id in self._failed:
            raise ValueError(f"zone {zone_id!r} is already failed")
        now = self._resolve_epoch(at)
        self._failed.add(zone_id)
        if self.metrics is not None:
            self._m_failed.set(len(self._failed))
        closures: list[EventMessage] = []
        for tag in sorted(t for t, z in self._owner.items() if z == zone_id):
            state = self._open.get(tag)
            if state is None:
                continue
            for container in sorted(state.containments):
                closures.append(
                    end_containment(tag, container, state.containments[container], now)
                )
            if state.location is not None:
                place, vs = state.location
                closures.append(end_location(tag, place, vs, now))
        self._track_messages(closures)
        self.quarantine.warn(
            WarningKind.ZONE_FAILED,
            now,
            detail=f"zone {zone_id!r} failed; {len(closures)} open interval(s) closed",
        )
        return closures

    def recover_zone(self, zone_id: str, at: int | None = None) -> list[EventMessage]:
        """Restore a failed zone from its last checkpoint and replay.

        The zone's substrate is rebuilt from the last checkpoint, the
        readings routed to it since that checkpoint (including those
        buffered during the outage) are replayed to bring its graph and
        estimates up to date, and fresh interval-opening messages are
        emitted at epoch ``at`` (default: the last processed epoch) for
        every object the zone still owns.  Objects that migrated to other
        zones during the outage are released quietly — re-adoption already
        happened at observation time — so no tag stays orphaned.  Returns
        the messages to append to the merged stream.
        """
        self._require_failover()
        if zone_id not in self._failed:
            raise ValueError(f"zone {zone_id!r} is not failed")
        now = self._resolve_epoch(at)
        checkpoint = self._checkpoints[zone_id]
        spire, messages = self._rebuild_spire(zone_id, checkpoint, now)
        self.zones[zone_id].spire = spire

        self._failed.discard(zone_id)
        if self.metrics is not None:
            self._m_failed.set(len(self._failed))
        self._track_messages(messages)
        self._checkpoint_zone(zone_id, now)
        self.quarantine.warn(
            WarningKind.ZONE_RECOVERED,
            now,
            detail=(
                f"zone {zone_id!r} restored from checkpoint at epoch "
                f"{checkpoint.epoch}; {len(messages)} interval(s) re-opened"
            ),
        )
        return messages

    def _rebuild_spire(
        self, zone_id: str, checkpoint: "_ZoneCheckpoint", now: int
    ) -> tuple[Spire, list[EventMessage]]:
        """Rebuild a failed zone's substrate from ``checkpoint`` + replay.

        Returns the fresh substrate and the interval re-opening messages.
        Mutates coordinator ownership (departures during replay, migration
        pruning) but does **not** install the substrate anywhere — the
        serial coordinator assigns it to the in-process zone, the parallel
        coordinator ships it to a worker.
        """
        spire = loads_spire(checkpoint.data)

        # checkpoints carry no registry: seed a fresh zone registry from
        # the snapshot taken at checkpoint time *before* replay, so replay
        # re-increments it to exactly the totals a crash-free run would
        # show — instead of silently zeroing the zone's counters (and
        # with them the restored dedup/quarantine accounting)
        if self.metrics is not None:
            registry = MetricRegistry(const_labels={"zone": zone_id})
            if checkpoint.metrics:
                registry.restore(checkpoint.metrics)
            self._zone_registries[zone_id] = registry
            spire.attach_metrics(registry)

        # replay buffered epochs; their messages were either already
        # emitted before the crash or are superseded by the fresh opens
        # below, so they are discarded
        for zone_readings in self._replay[zone_id]:
            output = spire.process_epoch(zone_readings)
            for tag in output.departed:
                if self._owner.get(tag) == zone_id:
                    self._owner.pop(tag)

        # the compressor's notion of "last reported state" died with the
        # zone (the coordinator closed everything at fail time): start a
        # fresh compressor and re-open intervals for still-owned objects
        spire.compressor = (
            ContainmentCompressor() if spire.compression_level == 2 else RangeCompressor()
        )
        messages: list[EventMessage] = []
        for tag in sorted(spire.estimates):
            if self._owner.get(tag) != zone_id:
                # migrated away (or departed) during the outage
                spire.release(tag, now)
                continue
            estimate = spire.estimates[tag]
            messages.extend(
                spire.compressor.observe(tag, estimate.location, estimate.container, now)
            )
        # owner entries pointing at objects the replayed zone no longer
        # tracks would be permanent orphans — drop them
        for tag in [t for t, z in self._owner.items() if z == zone_id]:
            if tag not in spire.estimates:
                self._owner.pop(tag)
        return spire, messages

    def _require_failover(self) -> None:
        if not self.failover_enabled:
            raise RuntimeError(
                "failover requires checkpointing; construct the Coordinator "
                "with checkpoint_interval=N"
            )

    def _resolve_epoch(self, at: int | None) -> int:
        if at is not None:
            return at
        if self._last_epoch is None:
            raise ValueError("no epoch processed yet; pass an explicit 'at' epoch")
        return self._last_epoch

    def latest_checkpoints(self) -> dict[str, bytes]:
        """The most recent portable checkpoint bytes by zone.

        Empty unless constructed with ``checkpoint_interval`` (pristine
        pre-stream checkpoints count).  Parallel sessions capture these in
        their workers, so this is the only zone state visible coordinator-side.
        """
        return {zone_id: ckpt.data for zone_id, ckpt in self._checkpoints.items()}

    def _checkpoint_zone(self, zone_id: str, epoch: int) -> None:
        start = perf_counter()
        data = dumps_spire(self.zones[zone_id].spire, codec=self.checkpoint_codec)
        self._checkpoints[zone_id] = _ZoneCheckpoint(
            epoch=epoch,
            data=data,
            metrics=(
                self._zone_registries[zone_id].snapshot()
                if self.metrics is not None
                else None
            ),
        )
        self._replay[zone_id] = []
        if self.metrics is not None:
            self._m_checkpoints.inc()
            self._m_checkpoint_seconds.observe(perf_counter() - start)

    def _track_messages(self, messages: Iterable[EventMessage]) -> None:
        """Mirror the merged stream's open intervals (for crash closures)."""
        for msg in messages:
            state = self._open.setdefault(msg.obj, _OpenIntervals())
            if msg.kind is EventKind.START_LOCATION:
                state.location = (msg.place, msg.vs)  # type: ignore[assignment]
            elif msg.kind is EventKind.END_LOCATION:
                state.location = None
            elif msg.kind is EventKind.START_CONTAINMENT:
                state.containments[msg.container] = msg.vs  # type: ignore[index]
            elif msg.kind is EventKind.END_CONTAINMENT:
                state.containments.pop(msg.container, None)  # type: ignore[arg-type]
            if state.location is None and not state.containments:
                self._open.pop(msg.obj, None)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Merged snapshot: the coordinator's registry + every zone's.

        The parallel coordinator overrides :meth:`_zone_metrics_snapshot`
        to return the latest registry snapshot its workers shipped in
        their epoch replies, so this merge is transport-agnostic.  The
        counter subset is deterministic: a serial and a parallel run over
        the same stream render identical totals.
        """
        if self.metrics is None:
            return {"series": [], "help": {}}
        snapshots = [self.metrics.snapshot()]
        for zone_id in sorted(self.zones):
            snapshots.append(self._zone_metrics_snapshot(zone_id))
        return merge_snapshots(snapshots)

    def _zone_metrics_snapshot(self, zone_id: str) -> dict:
        registry = self._zone_registries.get(zone_id)
        if registry is None:
            return {"series": [], "help": {}}
        return registry.snapshot()

    # ------------------------------------------------------------------
    # global queries
    # ------------------------------------------------------------------

    def owner_of(self, tag: TagId) -> str | None:
        """Zone currently owning ``tag`` (``None`` if never observed)."""
        return self._owner.get(tag)

    def location_of(self, tag: TagId) -> int:
        """Site-wide location query: delegated to the owning zone."""
        from repro.model.locations import UNKNOWN_COLOR

        owner = self._owner.get(tag)
        if owner is None or owner in self._failed:
            return UNKNOWN_COLOR
        return self.zones[owner].spire.location_of(tag)

    def container_of(self, tag: TagId) -> TagId | None:
        """Site-wide containment query: delegated to the owning zone."""
        owner = self._owner.get(tag)
        if owner is None or owner in self._failed:
            return None
        return self.zones[owner].spire.container_of(tag)

    @property
    def tracked_objects(self) -> int:
        return len(self._owner)


def partition_by_location(
    readers: Iterable[Reader],
    assignment: Mapping[str, Iterable[str]],
    registry: LocationRegistry | None = None,
    params: InferenceParams | None = None,
    compression_level: int = 2,
    quarantine: Quarantine | None = None,
) -> list[Zone]:
    """Build zones from a ``zone id -> location names`` assignment.

    Every reader must land in exactly one zone; raises ``ValueError`` for
    unassigned or doubly-assigned locations.  The returned list has one
    zone per assignment entry, **in assignment order** — a zone whose
    locations matched no reader raises ``ValueError`` by default (a worker
    pool sized to the assignment would silently under-use a worker), or is
    kept as an empty zone with a :data:`WarningKind.EMPTY_ZONE` warning
    when a ``quarantine`` is supplied to collect it.
    """
    readers = list(readers)
    location_to_zone: dict[str, str] = {}
    for zone_id, names in assignment.items():
        for name in names:
            if name in location_to_zone:
                raise ValueError(f"location {name!r} assigned to two zones")
            location_to_zone[name] = zone_id

    by_zone: dict[str, list[Reader]] = {zone_id: [] for zone_id in assignment}
    for reader in readers:
        zone_id = location_to_zone.get(reader.location.name)
        if zone_id is None:
            raise ValueError(f"reader at {reader.location.name!r} assigned to no zone")
        by_zone[zone_id].append(reader)

    for zone_id, zone_readers in by_zone.items():
        if not zone_readers:
            if quarantine is None:
                raise ValueError(
                    f"zone {zone_id!r} has no readers; pass a quarantine to "
                    "keep it as an (empty) zone instead"
                )
            quarantine.warn(
                WarningKind.EMPTY_ZONE,
                0,
                detail=f"zone {zone_id!r} matched no reader; kept empty",
            )

    return [
        Zone.build(zone_id, zone_readers, registry, params, compression_level)
        for zone_id, zone_readers in by_zone.items()
    ]

"""Serving-layer benchmark: query throughput and subscription fan-out.

This module backs both ``benchmarks/test_serving_throughput.py`` and the
``serving`` section of ``BENCH_table3.json``.  It reuses the Table III
high-injection workload (nothing leaves the shelves, so the tracked
population grows to the requested milestone) and measures the serving
layer on top of the zone-coordinator substrate:

* **Point-query throughput** — one-shot queries against the live
  :class:`~repro.query.index.EventStreamIndex` after the full replay,
  cycling objects and query kinds (location/container/is-missing), both
  in-process and over a loopback TCP connection through
  :class:`~repro.serving.server.SpireServer`;
* **Subscription fan-out** — the replay runs with a large population of
  concurrent standing queries (every pattern kind represented); per-epoch
  ``publish`` latency is the fan-out cost a live deployment pays, and
  queue depths are tracked every epoch to demonstrate the bounded-queue
  backpressure policy (max observed depth must never exceed ``max_queue``).

The replay drains subscription queues every ``drain_every`` epochs — a
deliberately *slow* consumer, so drop-oldest backpressure is exercised
rather than sidestepped.
"""

from __future__ import annotations

import asyncio
import time
from statistics import median

from repro.distributed import Coordinator, partition_by_location
from repro.experiments.table3 import (
    DEFAULT_CASES_PER_PALLET,
    DEFAULT_SEED,
    duration_for,
    scaling_zone_assignment,
    table3_config,
)
from repro.model.objects import PackagingLevel, TagId
from repro.serving.client import SpireClient
from repro.serving.engine import StandingQueryEngine
from repro.serving.patterns import (
    DwellExceeded,
    LeftWithoutContainer,
    MissingOverdue,
    ObjectWatch,
    PlaceWatch,
    Tail,
)
from repro.serving.server import SpireServer
from repro.simulator.warehouse import WarehouseSimulator

#: acceptance floors recorded alongside the measurements
MIN_POINT_QUERIES_PER_S = 1_000
MIN_SUBSCRIPTIONS = 100


def _make_patterns(colors: list[int], count: int):
    """``count`` pattern instances cycling every kind over the deployment's
    places — the mixed standing-query population of a live dashboard."""
    patterns = []
    for i in range(count):
        place = colors[i % len(colors)]
        kind = i % 5
        if kind == 0:
            patterns.append(PlaceWatch(place=place))
        elif kind == 1:
            patterns.append(DwellExceeded(place=place, k=20 + (i % 5) * 10))
        elif kind == 2:
            patterns.append(MissingOverdue(k=5 + i % 10))
        elif kind == 3:
            patterns.append(ObjectWatch(obj=TagId(PackagingLevel.ITEM, 1 + i)))
        else:
            patterns.append(LeftWithoutContainer(place=place))
    return patterns


def _point_query_loop(engine: StandingQueryEngine, queries: int) -> dict:
    """Throughput of ``queries`` one-shot lookups against the live index."""
    index = engine.index
    objects = index.objects()
    t = engine.last_epoch or 0
    kinds = (
        lambda obj, at: index.location_of(obj, at),
        lambda obj, at: index.container_of(obj, at),
        lambda obj, at: index.is_missing(obj, at),
        lambda obj, at: index.dwell_time(obj, index.location_of(obj, at) or 0, at),
    )
    t0 = time.perf_counter()
    for i in range(queries):
        obj = objects[i % len(objects)]
        kinds[i % len(kinds)](obj, max(0, t - (i % 64)))
    elapsed = time.perf_counter() - t0
    return {
        "queries": queries,
        "seconds": elapsed,
        "queries_per_s": queries / max(elapsed, 1e-12),
        "mean_us": 1e6 * elapsed / max(queries, 1),
    }


async def _tcp_query_loop(engine: StandingQueryEngine, queries: int) -> dict:
    """Round-trip throughput of sequential one-shot queries over loopback
    TCP — protocol + framing + asyncio overhead included."""
    async with SpireServer(engine=engine) as server:
        client = await SpireClient.connect(server.host, server.port)
        try:
            objects = engine.index.objects()
            t = engine.last_epoch or 0
            t0 = time.perf_counter()
            for i in range(queries):
                obj = objects[i % len(objects)]
                if i % 2 == 0:
                    await client.location_of(obj, max(0, t - (i % 64)))
                else:
                    await client.container_of(obj, max(0, t - (i % 64)))
            elapsed = time.perf_counter() - t0
        finally:
            await client.close()
    return {
        "queries": queries,
        "seconds": elapsed,
        "queries_per_s": queries / max(elapsed, 1e-12),
        "mean_us": 1e6 * elapsed / max(queries, 1),
    }


def run_serving_bench(
    milestone: int = 12_000,
    cases_per_pallet: int = DEFAULT_CASES_PER_PALLET,
    seed: int = DEFAULT_SEED,
    subscriptions: int = 120,
    max_queue: int = 256,
    drain_every: int = 8,
    point_queries: int = 50_000,
    tcp_queries: int = 2_000,
) -> dict:
    """Grow the Table III workload to ``milestone`` tracked objects while
    serving ``subscriptions`` standing queries, then measure point-query
    throughput.  Returns the ``serving`` payload for ``BENCH_table3.json``.
    """
    config = table3_config(
        cases_per_pallet, duration_for([milestone], cases_per_pallet), seed
    )
    sim = WarehouseSimulator(config).run()
    zones = partition_by_location(
        sim.layout.readers,
        scaling_zone_assignment(config.num_shelves),
        sim.layout.registry,
    )
    coordinator = Coordinator(zones, checkpoint_interval=50)
    engine = StandingQueryEngine(expand_level2=True)
    colors = [loc.color for loc in sim.layout.registry.known_locations()]
    subs = [
        engine.subscribe(pattern, max_queue=max_queue)
        for pattern in _make_patterns(colors, subscriptions)
    ]

    publish_laps: list[float] = []
    max_depth = 0
    epochs = 0
    t_replay = time.perf_counter()
    for readings in sim.stream:
        result = coordinator.process_epoch(readings)
        t0 = time.perf_counter()
        engine.publish(result.epoch, result.messages)
        publish_laps.append(time.perf_counter() - t0)
        epochs += 1
        max_depth = max(max_depth, max(len(s.queue) for s in subs))
        if epochs % drain_every == 0:
            for sub in subs:
                engine.drain(sub.sub_id)
    replay_s = time.perf_counter() - t_replay
    for sub in subs:
        engine.drain(sub.sub_id)

    publish_sorted = sorted(publish_laps)
    p95 = publish_sorted[int(0.95 * (len(publish_sorted) - 1))]
    point = _point_query_loop(engine, point_queries)
    tcp = asyncio.run(_tcp_query_loop(engine, tcp_queries))

    return {
        "workload": {
            "milestone": milestone,
            "cases_per_pallet": cases_per_pallet,
            "duration": config.duration,
            "seed": seed,
            "epochs": epochs,
            "objects_indexed": len(engine.index.objects()),
            "messages_published": engine.stats.messages_published,
        },
        "subscriptions": {
            "count": subscriptions,
            "max_queue": max_queue,
            "drain_every": drain_every,
            "max_queue_depth": max_depth,
            "queues_bounded": max_depth <= max_queue,
            "notifications_delivered": engine.stats.notifications_delivered,
            "notifications_dropped": engine.stats.notifications_dropped,
            "publish_mean_ms": 1e3 * sum(publish_laps) / max(len(publish_laps), 1),
            "publish_median_ms": 1e3 * median(publish_laps),
            "publish_p95_ms": 1e3 * p95,
            "replay_s": replay_s,
        },
        "point_queries": point,
        "tcp_queries": tcp,
        "floors": {
            "min_point_queries_per_s": MIN_POINT_QUERIES_PER_S,
            "min_subscriptions": MIN_SUBSCRIPTIONS,
        },
    }


def check_serving(payload: dict) -> list[str]:
    """Validate a serving payload against the acceptance floors.

    Returns human-readable violations (empty = pass).
    """
    problems: list[str] = []
    subs = payload.get("subscriptions", {})
    point = payload.get("point_queries", {})
    if point.get("queries_per_s", 0.0) < MIN_POINT_QUERIES_PER_S:
        problems.append(
            f"point-query throughput {point.get('queries_per_s', 0.0):.0f}/s "
            f"is below the {MIN_POINT_QUERIES_PER_S}/s floor"
        )
    if subs.get("count", 0) < MIN_SUBSCRIPTIONS:
        problems.append(
            f"only {subs.get('count', 0)} concurrent subscriptions "
            f"(floor: {MIN_SUBSCRIPTIONS})"
        )
    if not subs.get("queues_bounded", False):
        problems.append(
            f"queue depth {subs.get('max_queue_depth')} exceeded the "
            f"max_queue bound {subs.get('max_queue')}"
        )
    return problems

"""Unit tests for stream-driven graph construction (Fig. 4)."""

import pytest

from repro.core.capture import Confirmation, GraphUpdater, ReaderInfo
from repro.core.graph import Graph
from repro.core.params import InferenceParams
from repro.model.objects import PackagingLevel

from tests.conftest import case, epoch_readings, item, pallet

DOCK = ReaderInfo(reader_id=0, color=0)
BELT = ReaderInfo(
    reader_id=1, color=1, is_special=True, singulation_level=PackagingLevel.CASE
)
SHELF = ReaderInfo(reader_id=2, color=2, period=60)
EXIT = ReaderInfo(reader_id=3, color=3, is_exit=True)
EXIT_BELT = ReaderInfo(
    reader_id=4, color=4, is_special=True, singulation_level=PackagingLevel.PALLET
)

READERS = {r.reader_id: r for r in (DOCK, BELT, SHELF, EXIT, EXIT_BELT)}


@pytest.fixture
def updater() -> GraphUpdater:
    return GraphUpdater(Graph(), InferenceParams())


def apply(updater: GraphUpdater, epoch: int, by_reader: dict) -> None:
    updater.apply_epoch(epoch_readings(epoch, by_reader), READERS, epoch)


class TestStep1CreateAndColor:
    def test_new_objects_create_nodes(self, updater):
        apply(updater, 0, {0: [pallet(1), case(1), item(1)]})
        graph = updater.graph
        assert graph.node_count == 3
        for tag in (pallet(1), case(1), item(1)):
            assert graph.node(tag).color == DOCK.color

    def test_unknown_reader_rejected(self, updater):
        with pytest.raises(KeyError):
            apply(updater, 0, {99: [item(1)]})

    def test_unobserved_node_becomes_uncolored(self, updater):
        apply(updater, 0, {0: [item(1)]})
        apply(updater, 1, {0: []})
        node = updater.graph.node(item(1))
        assert node.color is None
        assert node.recent_color == DOCK.color and node.seen_at == 0


class TestStep2AddEdges:
    def test_same_color_adjacent_layers_connected(self, updater):
        apply(updater, 0, {0: [case(1), item(1)]})
        graph = updater.graph
        assert graph.edge_count == 1
        assert item(1) in graph.node(case(1)).children

    def test_all_candidates_enumerated(self, updater):
        apply(updater, 0, {0: [case(1), case(2), item(1)]})
        node = updater.graph.node(item(1))
        assert set(node.parents) == {case(1), case(2)}

    def test_layer_skipping_when_adjacent_layer_empty(self, updater):
        # item and pallet read together, no case: edge crosses layers
        apply(updater, 0, {0: [pallet(1), item(1)]})
        node = updater.graph.node(item(1))
        assert set(node.parents) == {pallet(1)}

    def test_no_edges_between_different_colors(self, updater):
        apply(updater, 0, {0: [case(1)], 2: [item(1)]})
        assert updater.graph.edge_count == 0

    def test_three_layers_chain(self, updater):
        apply(updater, 0, {0: [pallet(1), case(1), item(1)]})
        graph = updater.graph
        assert case(1) in graph.node(pallet(1)).children
        assert item(1) in graph.node(case(1)).children
        # pallet connects to the closest layer below (cases), not items
        assert item(1) not in graph.node(pallet(1)).children

    def test_edge_creation_skipped_without_new_color(self, updater):
        apply(updater, 0, {0: [case(1), item(1)]})
        edge = updater.graph.node(item(1)).parents[case(1)]
        updater.graph.remove_edge(edge)
        # same color again: "new color" optimisation skips edge creation
        apply(updater, 1, {0: [case(1), item(1)]})
        assert not updater.graph.node(item(1)).parents

    def test_edge_recreated_after_color_change(self, updater):
        apply(updater, 0, {0: [case(1), item(1)]})
        apply(updater, 1, {2: [case(1), item(1)]})  # both moved to shelf
        node = updater.graph.node(item(1))
        assert case(1) in node.parents


class TestStep3RemoveEdges:
    def test_different_colors_drop_edge(self, updater):
        apply(updater, 0, {0: [case(1), item(1)]})
        assert updater.graph.edge_count == 1
        # case moves to the shelf, item stays at the dock
        apply(updater, 1, {0: [item(1)], 2: [case(1)]})
        assert updater.graph.edge_count == 0

    def test_edge_kept_when_other_node_unobserved(self, updater):
        apply(updater, 0, {0: [case(1), item(1)]})
        apply(updater, 1, {0: [case(1)]})  # item missed
        assert updater.graph.edge_count == 1

    def test_confirmed_top_level_drops_parent_edges(self, updater):
        apply(updater, 0, {0: [pallet(1), case(1)]})
        assert pallet(1) in updater.graph.node(case(1)).parents
        # case scanned alone on the (case-singulating) belt
        apply(updater, 1, {1: [case(1)]})
        assert not updater.graph.node(case(1)).parents

    def test_confirmation_drops_alternative_parents(self, updater):
        apply(updater, 0, {0: [case(1), case(2), item(1)]})
        assert len(updater.graph.node(item(1)).parents) == 2
        # belt scans case 1 with the item: case 2's claim is dropped
        apply(updater, 1, {1: [case(1), item(1)]})
        node = updater.graph.node(item(1))
        assert set(node.parents) == {case(1)}
        assert node.confirmed_parent == case(1)
        assert node.confirmed_at == 1


class TestStep4Statistics:
    def test_colocation_recorded(self, updater):
        apply(updater, 0, {0: [case(1), item(1)]})
        apply(updater, 1, {0: [case(1), item(1)]})
        edge = updater.graph.node(item(1)).parents[case(1)]
        assert edge.history_bits(2) == [True, True]

    def test_missed_partner_records_negative(self, updater):
        apply(updater, 0, {0: [case(1), item(1)]})
        apply(updater, 1, {0: [case(1)]})  # item missed
        edge = updater.graph.node(item(1)).parents[case(1)]
        assert edge.history_bits(2) == [False, True]

    def test_statistics_updated_once_per_epoch(self, updater):
        # both endpoints colored by the same reader: edge visited twice but
        # its history shifts once
        apply(updater, 0, {0: [case(1), item(1)]})
        apply(updater, 1, {0: [case(1), item(1)]})
        edge = updater.graph.node(item(1)).parents[case(1)]
        assert edge.filled == 2

    def test_conflict_counted_against_confirmation(self, updater):
        apply(updater, 1, {1: [case(1), item(1)]})  # belt confirms case->item
        node = updater.graph.node(item(1))
        assert node.confirmed_parent == case(1)
        apply(updater, 2, {0: [item(1)]})  # item seen without its case
        assert node.confirmed_conflicts == 1

    def test_no_bit_pushed_for_unobserved_edges(self, updater):
        apply(updater, 0, {0: [case(1), item(1)]})
        apply(updater, 1, {0: [pallet(9)]})  # unrelated reading
        edge = updater.graph.node(item(1)).parents[case(1)]
        assert edge.filled == 1  # nothing new recorded


class TestSpecialReaderConfirmation:
    def test_exit_belt_confirms_pallet_level(self, updater):
        apply(updater, 0, {4: [pallet(1), case(1), case(2), item(1)]})
        graph = updater.graph
        assert graph.node(case(1)).confirmed_parent == pallet(1)
        assert graph.node(case(2)).confirmed_parent == pallet(1)
        # two cases read: item's case cannot be confirmed by the exit belt
        assert graph.node(item(1)).confirmed_parent is None

    def test_no_confirmation_without_singulated_container(self, updater):
        # case missed on the belt: items alone confirm nothing
        apply(updater, 0, {1: [item(1), item(2)]})
        assert updater.graph.node(item(1)).confirmed_parent is None

    def test_two_containers_yield_no_confirmation(self):
        conf = Confirmation.from_readings(
            [case(1), case(2), item(1)], PackagingLevel.CASE
        )
        assert conf.top_container is None and not conf.parent_of

    def test_confirmation_mapping(self):
        conf = Confirmation.from_readings(
            [case(1), item(1), item(2)], PackagingLevel.CASE
        )
        assert conf.top_container == case(1)
        assert conf.parent_of == {item(1): case(1), item(2): case(1)}


class TestExitTracking:
    def test_exit_reader_marks_exiting(self, updater):
        apply(updater, 0, {3: [pallet(1), case(1)]})
        assert updater.exiting == {pallet(1), case(1)}

    def test_exiting_resets_each_epoch(self, updater):
        apply(updater, 0, {3: [pallet(1)]})
        apply(updater, 1, {0: [item(1)]})
        assert updater.exiting == set()


class TestGraphConsistency:
    def test_invariants_after_multi_reader_epoch(self, updater):
        apply(updater, 0, {0: [pallet(1), case(1), item(1)], 2: [case(2), item(2)]})
        updater.graph.check_invariants()
        apply(updater, 1, {0: [item(1)], 2: [case(1)]})
        updater.graph.check_invariants()

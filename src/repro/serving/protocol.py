"""Binary protocol of the serving front-end.

Every message is one length-prefixed frame
(:func:`repro.distributed.wire.encode_frame` /
:class:`~repro.distributed.wire.FrameDecoder`); payloads are plain
``struct`` packing in the style of the coordinator↔worker wire protocol,
and tag/none conventions are shared with it
(:data:`~repro.distributed.wire.NONE_SENTINEL`, tag key 0 = no tag).

Client → server payloads start with ``op(1) | request_id(4)``; the server
answers every request with exactly one reply frame carrying the same
request id, so a client may pipeline requests.  Subscription matches
arrive as unsolicited event frames tagged with the subscription id —
clients demultiplex on the first byte.

Ops:

* ``OP_QUERY`` — one-shot point/range query against the live index;
* ``OP_SUBSCRIBE`` — register a standing pattern; replies with the
  subscription id, then event frames flow after each served epoch;
* ``OP_SUBSCRIBE_PATTERN`` — like subscribe, but the payload is pattern
  *source text* compiled server-side (:mod:`repro.sase`); compile errors
  come back as error replies carrying the compiler message;
* ``OP_UNSUBSCRIBE`` — stop a subscription (its queued frames may still
  be in flight);
* ``OP_STATS`` — serving counters as JSON (diagnostics, not hot path);
* ``OP_METRICS`` — the merged telemetry registry rendered as Prometheus
  text exposition (scrape-ready; see docs/OBSERVABILITY.md);
* ``OP_CONFIGURE`` — per-connection feature negotiation: the client
  sends a flag bitmask, the server answers with the subset it accepted.
  :data:`FLAG_BATCH_EVENTS` switches the connection's push path from
  per-event ``FRAME_EVENT`` frames to coalesced ``FRAME_EVENT_BATCH``
  frames (protocol v2): one frame per epoch per connection, with
  subscribers that received the identical notification sequence sharing
  one encoded group.
"""

from __future__ import annotations

import json
import struct

from repro.distributed.wire import NONE_SENTINEL, WireError
from repro.events.messages import INFINITY
from repro.model.objects import TagId
from repro.query.index import Interval
from repro.serving.patterns import Notification, PatternSpec

# ---------------------------------------------------------------------------
# frame types / ops
# ---------------------------------------------------------------------------

OP_QUERY = 1
OP_SUBSCRIBE = 2
OP_UNSUBSCRIBE = 3
OP_STATS = 4
OP_METRICS = 5
OP_SUBSCRIBE_PATTERN = 6  # pattern source text, compiled server-side
OP_CONFIGURE = 7  # feature negotiation (flag bitmask)

FRAME_REPLY = 64
FRAME_EVENT = 65
FRAME_EVENT_BATCH = 66  # one coalesced frame per epoch per connection

#: OP_CONFIGURE flags
FLAG_BATCH_EVENTS = 1

STATUS_OK = 0
STATUS_ERROR = 1

# one-shot query kinds
Q_LOCATION = 1
Q_CONTAINER = 2
Q_CONTENTS = 3
Q_OBJECTS_AT = 4
Q_VISITORS = 5
Q_PATH = 6
Q_TOP_LEVEL = 7
Q_DWELL = 8
Q_IS_MISSING = 9

#: notification kind <-> wire code (stable; extend, never renumber)
NOTIFY_CODES = {
    "event": 1,
    "object_event": 2,
    "place_event": 3,
    "dwell_exceeded": 4,
    "missing_overdue": 5,
    "left_without_container": 6,
    "sase_match": 7,
    "subscription_evicted": 8,
}
NOTIFY_KINDS = {code: kind for kind, code in NOTIFY_CODES.items()}

_REQUEST = struct.Struct("<BI")  # op, request id
_QUERY = struct.Struct("<BQqqq")  # kind, obj key, place, t1, t2
_SUBSCRIBE = struct.Struct("<BQqqI")  # pattern kind, obj key, place, k, max queue
_UNSUBSCRIBE = struct.Struct("<I")  # subscription id
_REPLY = struct.Struct("<BIB")  # frame type, request id, status
_EVENT = struct.Struct("<BI")  # frame type, subscription id
_NOTIFICATION = struct.Struct("<BqQqQq")  # kind, epoch, obj, place, container, value
_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")
_PATH_ENTRY = struct.Struct("<qqq")  # place, vs, ve (NONE_SENTINEL = open)
_EVENT_BATCH = struct.Struct("<BqI")  # frame type, epoch, group count


def _pack_tag(tag: TagId | None) -> int:
    return 0 if tag is None else tag.key()


def _unpack_tag(key: int) -> TagId | None:
    return None if key == 0 else TagId.from_key(key)


def _pack_place(place: int | None) -> int:
    return NONE_SENTINEL if place is None else place


def _unpack_place(value: int) -> int | None:
    return None if value == NONE_SENTINEL else value


# ---------------------------------------------------------------------------
# client -> server
# ---------------------------------------------------------------------------


def encode_query(
    request_id: int,
    kind: int,
    obj: TagId | None = None,
    place: int | None = None,
    t1: int | None = None,
    t2: int | None = None,
) -> bytes:
    return _REQUEST.pack(OP_QUERY, request_id) + _QUERY.pack(
        kind, _pack_tag(obj), _pack_place(place), _pack_place(t1), _pack_place(t2)
    )


def decode_query(payload: bytes) -> tuple[int, TagId | None, int | None, int | None, int | None]:
    kind, obj_key, place, t1, t2 = _QUERY.unpack_from(payload, _REQUEST.size)
    return (
        kind,
        _unpack_tag(obj_key),
        _unpack_place(place),
        _unpack_place(t1),
        _unpack_place(t2),
    )


def encode_subscribe(request_id: int, spec: PatternSpec, max_queue: int = 1024) -> bytes:
    return _REQUEST.pack(OP_SUBSCRIBE, request_id) + _SUBSCRIBE.pack(
        spec.kind, _pack_tag(spec.obj), _pack_place(spec.place), spec.k, max_queue
    )


def decode_subscribe(payload: bytes) -> tuple[PatternSpec, int]:
    kind, obj_key, place, k, max_queue = _SUBSCRIBE.unpack_from(payload, _REQUEST.size)
    return PatternSpec(kind, obj=_unpack_tag(obj_key), place=_unpack_place(place), k=k), max_queue


def encode_subscribe_pattern(request_id: int, source: str, max_queue: int = 1024) -> bytes:
    """Subscribe with pattern source text (compiled by the server).

    A compile failure comes back as a ``STATUS_ERROR`` reply whose body
    is the compiler's message (syntax errors carry the source offset).
    """
    return (
        _REQUEST.pack(OP_SUBSCRIBE_PATTERN, request_id)
        + _U32.pack(max_queue)
        + source.encode("utf-8")
    )


def decode_subscribe_pattern(payload: bytes) -> tuple[str, int]:
    """Returns (pattern source, max queue)."""
    (max_queue,) = _U32.unpack_from(payload, _REQUEST.size)
    source = payload[_REQUEST.size + _U32.size :].decode("utf-8")
    return source, max_queue


def encode_unsubscribe(request_id: int, sub_id: int) -> bytes:
    return _REQUEST.pack(OP_UNSUBSCRIBE, request_id) + _UNSUBSCRIBE.pack(sub_id)


def decode_unsubscribe(payload: bytes) -> int:
    (sub_id,) = _UNSUBSCRIBE.unpack_from(payload, _REQUEST.size)
    return sub_id


def encode_configure(request_id: int, flags: int) -> bytes:
    """Negotiate per-connection features (``FLAG_*`` bitmask).

    The reply body is the accepted-flags bitmask (u32) — an older server
    answers with an error reply instead, which clients treat as "no
    optional features".
    """
    return _REQUEST.pack(OP_CONFIGURE, request_id) + _U32.pack(flags)


def decode_configure(payload: bytes) -> int:
    (flags,) = _U32.unpack_from(payload, _REQUEST.size)
    return flags


def encode_stats_request(request_id: int) -> bytes:
    return _REQUEST.pack(OP_STATS, request_id)


def encode_metrics_request(request_id: int) -> bytes:
    return _REQUEST.pack(OP_METRICS, request_id)


def decode_request_header(payload: bytes) -> tuple[int, int]:
    """Op and request id of a client frame."""
    try:
        return _REQUEST.unpack_from(payload)
    except struct.error as exc:
        raise WireError(f"malformed request frame: {exc}") from exc


# ---------------------------------------------------------------------------
# server -> client
# ---------------------------------------------------------------------------


def encode_reply(request_id: int, body: bytes = b"", status: int = STATUS_OK) -> bytes:
    return _REPLY.pack(FRAME_REPLY, request_id, status) + body


def encode_error_reply(request_id: int, message: str) -> bytes:
    return encode_reply(request_id, message.encode("utf-8"), status=STATUS_ERROR)


def decode_reply(payload: bytes) -> tuple[int, int, bytes]:
    """Returns (request id, status, body)."""
    _, request_id, status = _REPLY.unpack_from(payload)
    return request_id, status, payload[_REPLY.size :]


def encode_scalar(value: int | None) -> bytes:
    return _I64.pack(NONE_SENTINEL if value is None else value)


def decode_scalar(body: bytes) -> int | None:
    (value,) = _I64.unpack_from(body)
    return None if value == NONE_SENTINEL else value


def encode_tag_value(tag: TagId | None) -> bytes:
    return _I64.pack(_pack_tag(tag))


def decode_tag_value(body: bytes) -> TagId | None:
    (key,) = _I64.unpack_from(body)
    return _unpack_tag(key)


def encode_tag_list(tags: list[TagId]) -> bytes:
    return _U32.pack(len(tags)) + struct.pack(f"<{len(tags)}Q", *(t.key() for t in tags))


def decode_tag_list(body: bytes) -> list[TagId]:
    (count,) = _U32.unpack_from(body)
    keys = struct.unpack_from(f"<{count}Q", body, _U32.size)
    return [TagId.from_key(key) for key in keys]


def encode_path(intervals: list[Interval]) -> bytes:
    parts = [_U32.pack(len(intervals))]
    for interval in intervals:
        ve = NONE_SENTINEL if interval.ve == INFINITY else int(interval.ve)
        parts.append(_PATH_ENTRY.pack(interval.value, interval.vs, ve))
    return b"".join(parts)


def decode_path(body: bytes) -> list[Interval]:
    (count,) = _U32.unpack_from(body)
    offset = _U32.size
    out = []
    for _ in range(count):
        place, vs, ve = _PATH_ENTRY.unpack_from(body, offset)
        offset += _PATH_ENTRY.size
        out.append(Interval(place, vs, INFINITY if ve == NONE_SENTINEL else ve))
    return out


def encode_stats_body(stats_dict: dict) -> bytes:
    return json.dumps(stats_dict, sort_keys=True).encode("utf-8")


def decode_stats_body(body: bytes) -> dict:
    return json.loads(body.decode("utf-8"))


def encode_metrics_body(text: str) -> bytes:
    return text.encode("utf-8")


def decode_metrics_body(body: bytes) -> str:
    return body.decode("utf-8")


def encode_configured(flags: int) -> bytes:
    """Reply body of OP_CONFIGURE: the accepted-flags bitmask."""
    return _U32.pack(flags)


def decode_configured(body: bytes) -> int:
    (flags,) = _U32.unpack_from(body)
    return flags


def encode_subscribed(sub_id: int) -> bytes:
    return _U32.pack(sub_id)


def decode_subscribed(body: bytes) -> int:
    (sub_id,) = _U32.unpack_from(body)
    return sub_id


def encode_notification(note: Notification) -> bytes:
    """One notification body (shared by FRAME_EVENT and batch groups)."""
    code = NOTIFY_CODES.get(note.kind)
    if code is None:
        raise WireError(f"unknown notification kind {note.kind!r}")
    return _NOTIFICATION.pack(
        code,
        note.epoch,
        _pack_tag(note.obj),
        _pack_place(note.place),
        _pack_tag(note.container),
        note.value,
    ) + note.detail.encode("utf-8")


def decode_notification(body: bytes, offset: int = 0, end: int | None = None) -> Notification:
    """Inverse of :func:`encode_notification` over ``body[offset:end]``."""
    code, epoch, obj_key, place, container_key, value = _NOTIFICATION.unpack_from(
        body, offset
    )
    kind = NOTIFY_KINDS.get(code)
    if kind is None:
        raise WireError(f"unknown notification code {code}")
    detail = body[offset + _NOTIFICATION.size : end].decode("utf-8")
    return Notification(
        kind=kind,
        epoch=epoch,
        obj=_unpack_tag(obj_key),
        place=_unpack_place(place),
        container=_unpack_tag(container_key),
        value=value,
        detail=detail,
    )


def encode_event(sub_id: int, note: Notification) -> bytes:
    return _EVENT.pack(FRAME_EVENT, sub_id) + encode_notification(note)


def decode_event(payload: bytes) -> tuple[int, Notification]:
    _, sub_id = _EVENT.unpack_from(payload)
    return sub_id, decode_notification(payload, _EVENT.size)


def encode_event_batch(
    epoch: int, groups: list[tuple[list[int], list[Notification]]]
) -> bytes:
    """Coalesce one epoch's push traffic for one connection (protocol v2).

    ``groups`` pairs a list of subscription ids with the notification
    sequence each of them received — subscribers whose drained sequences
    are identical share one encoded copy.  Layout::

        type(1) | epoch(8) | n_groups(4)
        per group:  n_subs(4) | sub_id(4)×n_subs
                    n_notes(4) | [len(4) | notification body]×n_notes
    """
    parts = [_EVENT_BATCH.pack(FRAME_EVENT_BATCH, epoch, len(groups))]
    for sub_ids, notes in groups:
        parts.append(_U32.pack(len(sub_ids)))
        parts.append(struct.pack(f"<{len(sub_ids)}I", *sub_ids))
        parts.append(_U32.pack(len(notes)))
        for note in notes:
            body = encode_notification(note)
            parts.append(_U32.pack(len(body)))
            parts.append(body)
    return b"".join(parts)


def decode_event_batch(
    payload: bytes,
) -> tuple[int, list[tuple[list[int], list[Notification]]]]:
    """Inverse of :func:`encode_event_batch`; notes are decoded once per
    group and the same objects are shared across that group's sub ids."""
    _, epoch, n_groups = _EVENT_BATCH.unpack_from(payload)
    offset = _EVENT_BATCH.size
    groups: list[tuple[list[int], list[Notification]]] = []
    for _ in range(n_groups):
        (n_subs,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        sub_ids = list(struct.unpack_from(f"<{n_subs}I", payload, offset))
        offset += 4 * n_subs
        (n_notes,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        notes = []
        for _ in range(n_notes):
            (length,) = _U32.unpack_from(payload, offset)
            offset += _U32.size
            notes.append(decode_notification(payload, offset, offset + length))
            offset += length
        groups.append((sub_ids, notes))
    return epoch, groups


def frame_type(payload: bytes) -> int:
    """First byte of a server frame (FRAME_REPLY or FRAME_EVENT)."""
    if not payload:
        raise WireError("empty frame")
    return payload[0]

"""Unit tests for windowed time-series metrics and ASCII rendering."""

import pytest

from repro.metrics.timeseries import WindowedSeries, ascii_chart, sparkline


class TestWindowedSeries:
    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedSeries(window=0)

    def test_invalid_counts_rejected(self):
        series = WindowedSeries(window=10)
        with pytest.raises(ValueError):
            series.record(0, hits=3, total=2)
        with pytest.raises(ValueError):
            series.record(0, hits=-1, total=2)

    def test_ratios_per_window(self):
        series = WindowedSeries(window=10)
        series.record(0, 1, 2)
        series.record(5, 1, 2)   # same window
        series.record(10, 0, 4)  # next window
        assert series.ratios() == [(0, 0.5), (10, 0.0)]

    def test_empty_windows_skipped(self):
        series = WindowedSeries(window=10)
        series.record(0, 1, 2)
        series.record(35, 2, 2)
        starts = [start for start, _ in series.ratios()]
        assert starts == [0, 30]

    def test_zero_total_window_skipped(self):
        series = WindowedSeries(window=10)
        series.record(0, 0, 0)
        assert series.ratios() == []
        assert series.overall == 0.0

    def test_overall(self):
        series = WindowedSeries(window=5)
        series.record(0, 1, 4)
        series.record(7, 3, 4)
        assert series.overall == pytest.approx(0.5)

    def test_len_counts_windows(self):
        series = WindowedSeries(window=10)
        series.record(0, 1, 2)
        series.record(25, 1, 2)
        assert len(series) == 2


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 4

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_pinned_scale(self):
        line = sparkline([0.5], lo=0.0, hi=1.0)
        assert line in "▁▂▃▄▅▆▇█"


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_renders_markers_and_legend(self):
        chart = ascii_chart(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]}, width=20, height=6
        )
        assert "*" in chart and "o" in chart
        assert "up" in chart and "down" in chart

    def test_axis_labels(self):
        chart = ascii_chart({"s": [(0, 0.25), (10, 0.75)]}, width=30, height=5)
        assert "0.750" in chart and "0.250" in chart

    def test_single_point(self):
        chart = ascii_chart({"s": [(5, 5)]})
        assert "*" in chart

"""``repro.obs`` — the substrate's telemetry layer (DESIGN.md §11).

Dependency-free counters, gauges, mergeable log₂-bucket histograms and
span timers, snapshotable registries with deterministic Prometheus-text
rendering, and a JSONL trace log.  See docs/OBSERVABILITY.md for the
metric catalogue.
"""

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    SpanTimer,
    counters_only,
    merge_snapshots,
    render_prometheus,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.obs.trace import TraceLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "SpanTimer",
    "TraceLog",
    "counters_only",
    "merge_snapshots",
    "render_prometheus",
    "snapshot_from_json",
    "snapshot_to_json",
]

"""Checkpoint and restore of a running substrate.

A production SPIRE instance runs for days; crashing must not lose the graph
statistics, confirmations and compressor state that took hours to
accumulate.  :func:`save_checkpoint` / :func:`load_checkpoint` persist a
:class:`~repro.core.pipeline.Spire` instance so processing can resume at
the next epoch.

Pickle is used deliberately: every state object is plain Python data owned
by this library, checkpoints are operator-written local files (the same
trust domain as the process itself), and the format version guards against
silently loading a checkpoint from an incompatible library version.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import BinaryIO

from repro.core.pipeline import Spire

#: bump when the pickled object graph changes shape
#: (2: node/graph change-tracking slots + expiry heap, DESIGN.md §8)
CHECKPOINT_VERSION = 2

_MAGIC = b"SPIREckpt"


class CheckpointError(RuntimeError):
    """Raised when a checkpoint cannot be written or restored."""


def save_checkpoint(spire: Spire, destination: str | Path | BinaryIO) -> None:
    """Persist ``spire`` (graph, estimates, compressor, dedup state).

    Path destinations are written **atomically**: the payload goes to a
    temporary file in the same directory, is fsynced, and then replaces the
    destination with ``os.replace``.  A crash mid-write therefore leaves
    either the previous checkpoint or none — never a truncated file that
    would fail to restore after the next crash.
    """
    payload = {
        "version": CHECKPOINT_VERSION,
        "spire": spire,
    }
    if hasattr(destination, "write"):
        destination.write(_MAGIC)  # type: ignore[union-attr]
        pickle.dump(payload, destination, protocol=pickle.HIGHEST_PROTOCOL)  # type: ignore[arg-type]
        return
    target = Path(destination)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fp:
            fp.write(_MAGIC)
            pickle.dump(payload, fp, protocol=pickle.HIGHEST_PROTOCOL)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_checkpoint(source: str | Path | BinaryIO) -> Spire:
    """Restore a substrate saved by :func:`save_checkpoint`."""
    if hasattr(source, "read"):
        return _read(source)  # type: ignore[arg-type]
    with Path(source).open("rb") as fp:
        return _read(fp)


def _read(fp: BinaryIO) -> Spire:
    magic = fp.read(len(_MAGIC))
    if magic != _MAGIC:
        raise CheckpointError("not a SPIRE checkpoint (bad magic)")
    try:
        payload = pickle.load(fp)
    except Exception as exc:  # pickle raises a zoo of exception types
        raise CheckpointError(f"corrupt checkpoint: {exc}") from exc
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {version} incompatible with {CHECKPOINT_VERSION}"
        )
    spire = payload.get("spire")
    if not isinstance(spire, Spire):
        raise CheckpointError("checkpoint does not contain a Spire instance")
    return spire

"""Simulation parameters (Table II of the paper).

Epochs are 1 second long, matching the paper ("data interpretation is
performed in every epoch (whose length is 1 second)"), so all durations and
periods below are expressed in epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters for one warehouse run.

    Defaults reproduce the accuracy-experiment workload of Section VI-B:
    6 pallets injected per hour, 5 cases per pallet, 20 items per case,
    1-hour average shelving period, read rate 0.85, shelf readers once per
    minute, 3-hour simulation.

    Attributes:
        duration: Total simulated epochs (paper: 3–24 hours).
        pallet_period: Epochs between pallet arrivals (paper: 1/4–600 s).
        cases_per_pallet_min / cases_per_pallet_max: Uniform range for the
            number of cases on each arriving (and each re-assembled) pallet
            (paper: 5–8; accuracy experiments use exactly 5).
        items_per_case: Items inside every case (paper: 20).
        read_rate: Per-tag detection probability per interrogation, applied
            to every reader unless overridden (paper: 0.5–1).
        read_rate_overrides: Per-location-kind read-rate overrides as
            ``((kind_name, rate), ...)`` pairs, e.g.
            ``(("belt", 0.99), ("shelf", 0.7))``.  Real deployments mix
            reader qualities (§VI-D suggests picking the compression level
            per reader accuracy); this knob also enables the
            confirmation-value ablation (belt rate 0 disables special-reader
            confirmations entirely).
        burst_mean_length: When positive, read losses are *correlated* via a
            per-(reader, tag) Gilbert–Elliott channel with this mean burst
            length (in interrogations) instead of i.i.d. coin flips, while
            keeping each reader's configured average read rate.  Models the
            persistent occlusion/contention losses of the paper's refs
            [10]/[11]; ``0`` keeps the standard i.i.d. model.
        shelf_read_period: Epochs between shelf-reader interrogations
            (paper: 1 s to 1 min).
        non_shelf_read_period: Epochs between interrogations of all other
            readers (paper: 2/sec; with 1 s epochs that is every epoch).
        num_shelves: Number of shelf locations; cases are assigned to
            shelves round-robin, so more shelves means fewer co-located
            cases and less containment-inference noise.
        shelving_time_mean: Mean shelf dwell in epochs (paper: 1 hour).
        shelving_time_jitter: Half-width of the uniform jitter applied
            around the mean dwell.
        dock_dwell: Epochs a pallet sits at the entry door before unpacking.
        belt_dwell: Epochs each case (or re-assembled pallet) spends under a
            belt reader; belts serve one container at a time (singulation).
        packaging_dwell: Minimum epochs cases spend in the packaging area
            before they can be assembled onto a new pallet.
        anomaly_period: Epochs between unexpected object removals
            (Section VI-B Expt 4 uses 100); ``0`` disables anomalies.
        fall_off_probability: Probability that one item falls off its case
            while the case is scanned on the receiving belt and stays
            behind — the paper's running example (Fig. 1, item 6 at t=3).
            ``0`` (the default) disables fall-offs.
        lost_item_timeout: Epochs a fallen item lies at the belt before
            staff take it to the exit door (proper disposal).
        seed: Seed for the run's random generator.
    """

    duration: int = 3 * 3600
    pallet_period: int = 600
    cases_per_pallet_min: int = 5
    cases_per_pallet_max: int = 5
    items_per_case: int = 20
    read_rate: float = 0.85
    shelf_read_period: int = 60
    non_shelf_read_period: int = 1
    num_shelves: int = 4
    shelving_time_mean: int = 3600
    shelving_time_jitter: int = 600
    dock_dwell: int = 5
    belt_dwell: int = 2
    packaging_dwell: int = 10
    anomaly_period: int = 0
    fall_off_probability: float = 0.0
    lost_item_timeout: int = 60
    read_rate_overrides: tuple[tuple[str, float], ...] = ()
    burst_mean_length: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValueError("duration must be at least 1 epoch")
        if self.pallet_period < 1:
            raise ValueError("pallet_period must be at least 1 epoch")
        if not 1 <= self.cases_per_pallet_min <= self.cases_per_pallet_max:
            raise ValueError(
                "cases_per_pallet range must satisfy 1 <= min <= max, got "
                f"[{self.cases_per_pallet_min}, {self.cases_per_pallet_max}]"
            )
        if self.items_per_case < 0:
            raise ValueError("items_per_case must be non-negative")
        if not 0.0 <= self.read_rate <= 1.0:
            raise ValueError(f"read_rate must be in [0, 1], got {self.read_rate}")
        for name in ("shelf_read_period", "non_shelf_read_period", "num_shelves"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")
        for name in ("dock_dwell", "belt_dwell", "packaging_dwell"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1 epoch")
        if self.shelving_time_mean < 1:
            raise ValueError("shelving_time_mean must be at least 1 epoch")
        if self.shelving_time_jitter < 0:
            raise ValueError("shelving_time_jitter must be non-negative")
        if self.anomaly_period < 0:
            raise ValueError("anomaly_period must be non-negative (0 disables)")
        if not 0.0 <= self.fall_off_probability <= 1.0:
            raise ValueError(
                f"fall_off_probability must be in [0, 1], got {self.fall_off_probability}"
            )
        if self.lost_item_timeout < 1:
            raise ValueError("lost_item_timeout must be at least 1 epoch")
        if self.burst_mean_length < 0 or (0 < self.burst_mean_length < 1):
            raise ValueError(
                "burst_mean_length must be 0 (i.i.d. losses) or >= 1 interrogation, "
                f"got {self.burst_mean_length}"
            )
        from repro.model.locations import LocationKind

        # normalise JSON-deserialised lists back into hashable tuples
        object.__setattr__(
            self,
            "read_rate_overrides",
            tuple((str(k), float(r)) for k, r in self.read_rate_overrides),
        )
        valid_kinds = {kind.value for kind in LocationKind}
        for kind_name, rate in self.read_rate_overrides:
            if kind_name not in valid_kinds:
                raise ValueError(
                    f"unknown location kind {kind_name!r} in read_rate_overrides "
                    f"(expected one of {sorted(valid_kinds)})"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"read-rate override for {kind_name!r} must be in [0, 1], got {rate}"
                )

    @property
    def objects_per_pallet_max(self) -> int:
        """Upper bound on objects one arriving pallet brings into the world."""
        return 1 + self.cases_per_pallet_max * (1 + self.items_per_case)

    def read_rate_for(self, kind) -> float:
        """Read rate for a location kind, honouring overrides."""
        for kind_name, rate in self.read_rate_overrides:
            if kind_name == kind.value:
                return rate
        return self.read_rate

    def paper_accuracy_workload(self) -> "SimulationConfig":
        """The Section VI-B workload: this config's documented defaults."""
        return SimulationConfig(seed=self.seed)

"""Compression-ratio accounting (Expt 8).

The compression ratio is the encoded size of the compressed event output
divided by the encoded size of the raw input readings.  Both sides use
fixed per-record encodings (:data:`repro.readers.stream.RAW_READING_BYTES`
and :data:`repro.events.messages.EVENT_MESSAGE_BYTES`) so the ratios are
deterministic and implementation-independent.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.events.messages import EVENT_MESSAGE_BYTES, EventMessage


def location_only(messages: Iterable[EventMessage]) -> list[EventMessage]:
    """Filter a stream down to location events (incl. Missing)."""
    return [m for m in messages if m.kind.is_location]


def containment_only(messages: Iterable[EventMessage]) -> list[EventMessage]:
    """Filter a stream down to containment events."""
    return [m for m in messages if m.kind.is_containment]


def output_bytes(messages: Sequence[EventMessage]) -> int:
    """Encoded size of an event stream."""
    return len(messages) * EVENT_MESSAGE_BYTES


def compression_ratio(messages: Sequence[EventMessage], raw_bytes: int) -> float:
    """Output size over raw input size (smaller is better, 1.0 = no gain)."""
    if raw_bytes <= 0:
        raise ValueError("raw input size must be positive")
    return output_bytes(messages) / raw_bytes

"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_tag
from repro.model.objects import PackagingLevel, TagId


SIM_ARGS = [
    "--duration", "240",
    "--pallet-period", "80",
    "--cases-per-pallet", "2",
    "--items-per-case", "3",
    "--shelf-period", "10",
    "--shelving-time", "60",
    "--seed", "5",
]


class TestParseTag:
    def test_valid_specs(self):
        assert parse_tag("item:5") == TagId(PackagingLevel.ITEM, 5)
        assert parse_tag("CASE:3") == TagId(PackagingLevel.CASE, 3)
        assert parse_tag("pallet:1") == TagId(PackagingLevel.PALLET, 1)

    @pytest.mark.parametrize("bad", ["item", "crate:1", "item:x", "item:1:2"])
    def test_invalid_specs(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_tag(bad)


class TestSimulate:
    def test_writes_trace_and_sidecar(self, tmp_path, capsys):
        trace = tmp_path / "trace.bin"
        rc = main(["simulate", *SIM_ARGS, "-o", str(trace)])
        assert rc == 0
        assert trace.exists() and trace.stat().st_size > 0
        sidecar = json.loads((tmp_path / "trace.bin.json").read_text())
        assert sidecar["duration"] == 240
        out = capsys.readouterr().out
        assert "readings" in out and "pallets" in out


class TestInterpretAndQuery:
    @pytest.fixture
    def trace(self, tmp_path):
        path = tmp_path / "trace.bin"
        assert main(["simulate", *SIM_ARGS, "-o", str(path)]) == 0
        return path

    def test_interpret_writes_events(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        rc = main(["interpret", str(trace), "-o", str(events), "--compression", "1"])
        assert rc == 0
        assert events.exists() and events.stat().st_size > 0
        assert "interpreted" in capsys.readouterr().out

    def test_interpret_requires_sidecar(self, trace, tmp_path, capsys):
        (tmp_path / "trace.bin.json").unlink()
        rc = main(["interpret", str(trace), "-o", str(tmp_path / "e.bin")])
        assert rc == 2
        assert "sidecar" in capsys.readouterr().err

    def test_query_point(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        main(["interpret", str(trace), "-o", str(events), "--compression", "1"])
        rc = main(["query", str(events), "--object", "case:1", "--at", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "location" in out

    def test_query_path(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        main(["interpret", str(trace), "-o", str(events), "--compression", "1"])
        rc = main(["query", str(events), "--object", "case:1", "--path"])
        assert rc == 0
        assert "L" in capsys.readouterr().out

    def test_query_level2_with_decompress(self, trace, tmp_path, capsys):
        events = tmp_path / "events2.bin"
        main(["interpret", str(trace), "-o", str(events), "--compression", "2"])
        rc = main(
            ["query", str(events), "--object", "item:1", "--at", "20", "--decompress"]
        )
        assert rc == 0

    def test_query_requires_at_or_path(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        main(["interpret", str(trace), "-o", str(events)])
        rc = main(["query", str(events), "--object", "case:1"])
        assert rc == 2

    def test_query_index_cache_round_trip(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        cache = tmp_path / "events.idx"
        main(["interpret", str(trace), "-o", str(events), "--compression", "2"])
        capsys.readouterr()
        args = ["query", str(events), "--object", "case:1", "--at", "30",
                "--decompress", "--index-cache", str(cache)]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "wrote index cache" in cold.err
        assert cache.exists() and cache.stat().st_size > 0
        # warm run: identical answer, no rebuild
        assert main(args) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "wrote index cache" not in warm.err

    def test_query_index_cache_invalidated_by_new_stream(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        cache = tmp_path / "events.idx"
        main(["interpret", str(trace), "-o", str(events), "--compression", "1"])
        base = ["query", str(events), "--object", "case:1", "--at", "30",
                "--index-cache", str(cache)]
        assert main(base) == 0
        capsys.readouterr()
        # different flag (decompress) -> stale cache -> rebuild
        assert main([*base, "--decompress"]) == 0
        assert "stale" in capsys.readouterr().err

    def test_query_index_cache_survives_corruption(self, trace, tmp_path, capsys):
        events = tmp_path / "events.bin"
        cache = tmp_path / "events.idx"
        main(["interpret", str(trace), "-o", str(events), "--compression", "1"])
        base = ["query", str(events), "--object", "case:1", "--at", "30",
                "--index-cache", str(cache)]
        assert main(base) == 0
        capsys.readouterr()
        cache.write_bytes(b"garbage")
        assert main(base) == 0
        err = capsys.readouterr().err
        assert "unreadable" in err and "wrote index cache" in err


class TestClientPatternParsing:
    def test_valid_patterns(self):
        from repro.cli import parse_pattern
        from repro.serving.patterns import (
            PATTERN_DWELL,
            PATTERN_LEFT_WITHOUT_CONTAINER,
            PATTERN_MISSING,
            PATTERN_OBJECT,
            PATTERN_PLACE,
            PATTERN_TAIL,
        )

        assert parse_pattern("tail").kind == PATTERN_TAIL
        assert parse_pattern("tail:3").place == 3
        spec = parse_pattern("object:item:5")
        assert spec.kind == PATTERN_OBJECT
        assert spec.obj == TagId(PackagingLevel.ITEM, 5)
        assert parse_pattern("place:2").kind == PATTERN_PLACE
        dwell = parse_pattern("dwell:3:10")
        assert (dwell.kind, dwell.place, dwell.k) == (PATTERN_DWELL, 3, 10)
        assert parse_pattern("missing:7").k == 7
        anomaly = parse_pattern("anomaly:4")
        assert (anomaly.kind, anomaly.place) == (PATTERN_LEFT_WITHOUT_CONTAINER, 4)

    @pytest.mark.parametrize("bad", ["", "dwell:3", "object:5", "watch:1", "place:x"])
    def test_invalid_patterns(self, bad):
        import argparse

        from repro.cli import parse_pattern

        with pytest.raises(argparse.ArgumentTypeError):
            parse_pattern(bad)

    @pytest.mark.parametrize(
        "bad, needle",
        [
            ("dwell:3", "missing its K field"),
            ("dwell:x:5", "field PLACE must be an integer"),
            ("object:5", "missing its LEVEL:SERIAL tag"),
            ("place:x", "field PLACE must be an integer"),
            ("missing", "missing its K field"),
            ("tail:1:2", "at most one field"),
            ("watch:1", "unknown pattern"),
        ],
    )
    def test_errors_name_the_failing_field(self, bad, needle):
        import argparse

        from repro.cli import parse_pattern

        with pytest.raises(argparse.ArgumentTypeError, match=needle):
            parse_pattern(bad)

    def test_pattern_source_parses_to_a_sase_spec(self):
        from repro.cli import parse_pattern
        from repro.serving.patterns import PATTERN_SASE

        source = ("PATTERN SEQ(arrival a, !departure d) "
                  "WHERE d.obj == a.obj WITHIN 10 EPOCHS")
        spec = parse_pattern(source)
        assert spec.kind == PATTERN_SASE and spec.source == source
        # lower-case + leading-whitespace variants are recognized too
        assert parse_pattern("  seq(any e)").kind == PATTERN_SASE

    @pytest.mark.parametrize(
        "bad, needle",
        [
            ("SEQ(arrival a", "does not compile"),
            ("SEQ(arrival a) WHERE x.place == 1", "unknown binding"),
            ("PATTERN SEQ(landing e)", "event class"),
        ],
    )
    def test_bad_pattern_source_reports_the_compiler_error(self, bad, needle):
        import argparse

        from repro.cli import parse_pattern

        with pytest.raises(argparse.ArgumentTypeError, match=needle):
            parse_pattern(bad)

    def test_legacy_shorthands_route_through_the_library(self):
        """Shorthand specs now instantiate compiled patterns."""
        from repro.cli import parse_pattern
        from repro.sase.compiled import CompiledPattern
        from repro.serving.patterns import pattern_from_spec

        for text in ["tail:3", "object:item:5", "place:2", "dwell:3:10",
                     "missing:7", "anomaly:4"]:
            spec = parse_pattern(text)
            pattern = pattern_from_spec(spec)
            assert isinstance(pattern, CompiledPattern)
            assert pattern.spec() == spec  # wire spec round-trips


class TestServeAndClient:
    def test_serve_then_client_over_tcp(self, tmp_path, capsys):
        """Full CLI round trip: serve a short trace, query it, follow a
        tail subscription, read stats — all through the subcommands."""
        import socket
        import threading

        trace = tmp_path / "trace.bin"
        # pallets keep arriving, so tail events flow throughout the replay
        assert main(["simulate", *SIM_ARGS, "--duration", "150",
                     "--pallet-period", "40", "-o", str(trace)]) == 0
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        server = threading.Thread(
            target=main,
            args=(["serve", str(trace), "--port", str(port),
                   "--epoch-interval", "0.05", "--linger", "10"],),
            daemon=True,
        )
        server.start()
        client_args = ["client", "--port", str(port)]
        for attempt in range(50):
            rc = main([*client_args, "--stats"])
            if rc == 0:
                break
            import time

            time.sleep(0.2)
        assert rc == 0, "server never came up"
        assert main([*client_args, "--subscribe", "tail", "--count", "2",
                     "--timeout", "15"]) == 0
        out = capsys.readouterr().out
        assert "subscribed" in out and "[event @" in out
        assert main([*client_args, "--object", "case:1", "--at", "10"]) == 0
        assert "location" in capsys.readouterr().out
        server.join(timeout=30)

    def test_client_subscribe_timeout_returns_error(self, tmp_path, capsys):
        """A subscription that never matches exits 1 after --timeout."""
        import socket
        import threading
        import time

        trace = tmp_path / "trace.bin"
        assert main(["simulate", *SIM_ARGS, "--duration", "60",
                     "-o", str(trace)]) == 0
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        server = threading.Thread(
            target=main,
            args=(["serve", str(trace), "--port", str(port),
                   "--epoch-interval", "0.02", "--linger", "20"],),
            daemon=True,
        )
        server.start()
        client_args = ["client", "--port", str(port)]
        for _attempt in range(50):
            if main([*client_args, "--stats"]) == 0:
                break
            time.sleep(0.2)
        # place 999999 exists in no layout, so nothing ever matches
        rc = main([*client_args, "--subscribe", "place:999999",
                   "--count", "1", "--timeout", "1"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "no notification within 1s" in captured.err
        server.join(timeout=30)

    def test_repeated_subscribe_prefixes_notifications_with_ids(
        self, tmp_path, capsys
    ):
        """Two --subscribe flags (one shorthand, one pattern source) open
        two subscriptions; notifications carry their #id prefix."""
        import re
        import socket
        import threading
        import time

        trace = tmp_path / "trace.bin"
        assert main(["simulate", *SIM_ARGS, "--duration", "150",
                     "--pallet-period", "40", "-o", str(trace)]) == 0
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        server = threading.Thread(
            target=main,
            args=(["serve", str(trace), "--port", str(port),
                   "--epoch-interval", "0.05", "--linger", "10"],),
            daemon=True,
        )
        server.start()
        client_args = ["client", "--port", str(port)]
        for _attempt in range(50):
            if main([*client_args, "--stats"]) == 0:
                break
            time.sleep(0.2)
        capsys.readouterr()
        assert main([*client_args,
                     "--subscribe", "tail",
                     "--subscribe", "PATTERN SEQ(any e)",
                     "--count", "4", "--timeout", "15"]) == 0
        out = capsys.readouterr().out
        ids = re.findall(r"subscribed #(\d+)", out)
        assert len(ids) == 2 and ids[0] != ids[1]
        prefixed = re.findall(r"^#(\d+) \[\w+ @", out, flags=re.M)
        assert len(prefixed) == 4 and set(prefixed) <= set(ids)
        server.join(timeout=30)


class TestDecompress:
    def test_decompress_expands_level2(self, tmp_path, capsys):
        trace = tmp_path / "trace.bin"
        main(["simulate", *SIM_ARGS, "-o", str(trace)])
        events = tmp_path / "events2.bin"
        main(["interpret", str(trace), "-o", str(events), "--compression", "2"])
        expanded = tmp_path / "events1.bin"
        rc = main(["decompress", str(events), "-o", str(expanded)])
        assert rc == 0
        assert expanded.stat().st_size >= events.stat().st_size
        # the expanded stream is directly queriable without --decompress
        rc = main(["query", str(expanded), "--object", "item:1", "--path"])
        assert rc == 0


class TestEvaluate:
    def test_evaluate_prints_metrics(self, capsys):
        rc = main(["evaluate", *SIM_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "location error" in out
        assert "compression ratio" in out

    def test_evaluate_with_smurf(self, capsys):
        rc = main(["evaluate", *SIM_ARGS, "--smurf"])
        assert rc == 0
        assert "SMURF baseline" in capsys.readouterr().out


class TestChaos:
    def test_chaos_reports_degradation(self, capsys):
        rc = main(["chaos", *SIM_ARGS, "--outage-start", "80",
                   "--outage-epochs", "40", "--fault-seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault schedule" in out
        assert "degradation" in out
        assert "well-formedness (fault-free): ok" in out
        assert "well-formedness (faulted): ok" in out

    def test_chaos_schedule_file(self, tmp_path, capsys):
        schedule = tmp_path / "faults.json"
        schedule.write_text(json.dumps([
            {"kind": "drop_batches", "rate": 0.05},
            {"kind": "duplicate_batches", "rate": 0.05},
        ]))
        rc = main(["chaos", *SIM_ARGS, "--schedule", str(schedule)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DropBatches" in out and "DuplicateBatches" in out

    def test_chaos_max_degradation_gate(self, capsys):
        # a negative bound no run can satisfy forces the failure path
        rc = main(["chaos", *SIM_ARGS, "--max-degradation", "-101"])
        assert rc == 1
        assert "exceeds" in capsys.readouterr().err

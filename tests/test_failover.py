"""Tests for coordinator quarantine and zone failover."""

import pytest

from repro.distributed.coordinator import Coordinator, Zone, partition_by_location
from repro.events.wellformed import check_well_formed
from repro.faults import WarningKind
from repro.model.locations import UNKNOWN_COLOR, LocationKind, LocationRegistry
from repro.readers.reader import Reader
from repro.simulator.config import SimulationConfig
from repro.simulator.warehouse import WarehouseSimulator

from tests.conftest import case, epoch_readings, item


def two_zone_setup(checkpoint_interval=None, strict=False):
    registry = LocationRegistry()
    dock = registry.create("dock", LocationKind.ENTRY_DOOR)
    shelf = registry.create("shelf", LocationKind.SHELF)
    zones = [
        Zone.build("zone-a", [Reader(0, dock)], registry),
        Zone.build("zone-b", [Reader(1, shelf)], registry),
    ]
    coordinator = Coordinator(
        zones, strict=strict, checkpoint_interval=checkpoint_interval
    )
    return coordinator, dock, shelf


def warehouse_zones(duration=400, checkpoint_interval=50):
    config = SimulationConfig(
        duration=duration,
        pallet_period=120,
        cases_per_pallet_min=2,
        cases_per_pallet_max=2,
        items_per_case=4,
        read_rate=0.95,
        shelf_read_period=10,
        num_shelves=2,
        shelving_time_mean=100,
        shelving_time_jitter=20,
        seed=17,
    )
    sim = WarehouseSimulator(config).run()
    zones = partition_by_location(
        sim.layout.readers,
        {
            "inbound": ["entry-door", "receiving-belt"],
            "storage": ["shelf-1", "shelf-2"],
            "outbound": ["packaging-area", "exit-belt", "exit-door"],
        },
        sim.layout.registry,
    )
    return sim, Coordinator(zones, checkpoint_interval=checkpoint_interval)


# ---------------------------------------------------------------------------
# unmapped-reader quarantine (satellite 1)
# ---------------------------------------------------------------------------


class TestUnmappedReaders:
    def test_strict_mode_keeps_the_seed_keyerror(self):
        coordinator, *_ = two_zone_setup(strict=True)
        with pytest.raises(KeyError, match="reading from reader 42 owned by no zone"):
            coordinator.process_epoch(epoch_readings(0, {42: [item(1)]}))

    def test_lenient_mode_quarantines_and_warns(self):
        coordinator, *_ = two_zone_setup()
        result = coordinator.process_epoch(
            epoch_readings(0, {0: [item(1)], 42: [item(2), item(3)]})
        )
        assert [w.kind for w in result.warnings] == [WarningKind.UNMAPPED_READER]
        assert result.warnings[0].reader_id == 42
        held = coordinator.quarantine.readings
        assert {r.tag for r in held} == {item(2), item(3)}
        # the mapped reading still went through
        assert coordinator.owner_of(item(1)) == "zone-a"
        assert coordinator.owner_of(item(2)) is None

    def test_warnings_are_per_epoch(self):
        coordinator, *_ = two_zone_setup()
        coordinator.process_epoch(epoch_readings(0, {42: [item(1)]}))
        result = coordinator.process_epoch(epoch_readings(1, {0: [item(1)]}))
        assert result.warnings == []
        assert len(coordinator.quarantine.warnings) == 1


# ---------------------------------------------------------------------------
# failover guard rails
# ---------------------------------------------------------------------------


class TestFailoverValidation:
    def test_fail_requires_checkpointing(self):
        coordinator, *_ = two_zone_setup(checkpoint_interval=None)
        with pytest.raises(RuntimeError, match="checkpoint_interval"):
            coordinator.fail_zone("zone-a", at=0)

    def test_unknown_zone(self):
        coordinator, *_ = two_zone_setup(checkpoint_interval=10)
        with pytest.raises(KeyError, match="unknown zone"):
            coordinator.fail_zone("zone-z", at=0)

    def test_double_fail(self):
        coordinator, *_ = two_zone_setup(checkpoint_interval=10)
        coordinator.fail_zone("zone-a", at=0)
        with pytest.raises(ValueError, match="already failed"):
            coordinator.fail_zone("zone-a", at=1)

    def test_recover_not_failed(self):
        coordinator, *_ = two_zone_setup(checkpoint_interval=10)
        with pytest.raises(ValueError, match="not failed"):
            coordinator.recover_zone("zone-a", at=0)

    def test_bad_interval(self):
        registry = LocationRegistry()
        zone = Zone.build("a", [Reader(0, registry.create("dock"))], registry)
        with pytest.raises(ValueError, match="checkpoint_interval must be >= 1"):
            Coordinator([zone], checkpoint_interval=0)

    def test_epoch_defaulting_needs_history(self):
        coordinator, *_ = two_zone_setup(checkpoint_interval=10)
        with pytest.raises(ValueError, match="no epoch processed yet"):
            coordinator.fail_zone("zone-a")


# ---------------------------------------------------------------------------
# failover behavior (unit scale)
# ---------------------------------------------------------------------------


class TestFailover:
    def test_fail_closes_open_intervals(self):
        coordinator, dock, shelf = two_zone_setup(checkpoint_interval=2)
        messages = []
        for epoch in range(6):
            messages.extend(
                coordinator.process_epoch(
                    epoch_readings(epoch, {1: [case(1), item(1)]})
                ).messages
            )
        closures = coordinator.fail_zone("zone-b")
        assert closures  # item/case had open intervals
        assert coordinator.failed_zones == frozenset({"zone-b"})
        check_well_formed(messages + closures)

    def test_queries_degrade_during_outage(self):
        coordinator, dock, shelf = two_zone_setup(checkpoint_interval=2)
        for epoch in range(4):
            coordinator.process_epoch(epoch_readings(epoch, {1: [item(1)]}))
        assert coordinator.location_of(item(1)) == shelf.color
        coordinator.fail_zone("zone-b")
        assert coordinator.location_of(item(1)) == UNKNOWN_COLOR
        assert coordinator.container_of(item(1)) is None

    def test_orphans_are_re_adopted_by_observing_zone(self):
        coordinator, dock, shelf = two_zone_setup(checkpoint_interval=2)
        messages = []
        for epoch in range(4):
            messages.extend(
                coordinator.process_epoch(epoch_readings(epoch, {1: [item(1)]})).messages
            )
        messages.extend(coordinator.fail_zone("zone-b"))
        # the dead zone's object shows up at the dock: zone-a adopts it
        for epoch in range(4, 8):
            messages.extend(
                coordinator.process_epoch(epoch_readings(epoch, {0: [item(1)]})).messages
            )
        assert coordinator.owner_of(item(1)) == "zone-a"
        assert coordinator.location_of(item(1)) == dock.color
        check_well_formed(messages)

    def test_recover_restores_ownership_and_stream(self):
        coordinator, dock, shelf = two_zone_setup(checkpoint_interval=2)
        messages = []
        for epoch in range(6):
            messages.extend(
                coordinator.process_epoch(epoch_readings(epoch, {1: [item(1)]})).messages
            )
        messages.extend(coordinator.fail_zone("zone-b"))
        # readings keep arriving while the zone is down (buffered)
        for epoch in range(6, 10):
            messages.extend(
                coordinator.process_epoch(epoch_readings(epoch, {1: [item(1)]})).messages
            )
        messages.extend(coordinator.recover_zone("zone-b"))
        assert coordinator.failed_zones == frozenset()
        assert coordinator.location_of(item(1)) == shelf.color
        # and the stream continues seamlessly
        for epoch in range(10, 14):
            messages.extend(
                coordinator.process_epoch(epoch_readings(epoch, {1: [item(1)]})).messages
            )
        check_well_formed(messages)
        kinds = [w.kind for w in coordinator.quarantine.warnings]
        assert kinds.count(WarningKind.ZONE_FAILED) == 1
        assert kinds.count(WarningKind.ZONE_RECOVERED) == 1

    def test_migrated_tag_is_not_reclaimed_on_recovery(self):
        coordinator, dock, shelf = two_zone_setup(checkpoint_interval=2)
        messages = []
        for epoch in range(4):
            messages.extend(
                coordinator.process_epoch(epoch_readings(epoch, {1: [item(1)]})).messages
            )
        messages.extend(coordinator.fail_zone("zone-b"))
        for epoch in range(4, 8):
            messages.extend(
                coordinator.process_epoch(epoch_readings(epoch, {0: [item(1)]})).messages
            )
        messages.extend(coordinator.recover_zone("zone-b"))
        assert coordinator.owner_of(item(1)) == "zone-a"
        assert coordinator.location_of(item(1)) == dock.color
        check_well_formed(messages)

    def test_checkpoint_cadence(self):
        coordinator, *_ = two_zone_setup(checkpoint_interval=3)
        assert coordinator._checkpoints["zone-a"].epoch is None  # pristine
        for epoch in range(7):
            coordinator.process_epoch(epoch_readings(epoch, {0: [item(1)]}))
        # checkpoints at epochs 2 and 5; replay buffer holds epoch 6 only
        assert coordinator._checkpoints["zone-a"].epoch == 5
        assert [r.epoch for r in coordinator._replay["zone-a"]] == [6]


# ---------------------------------------------------------------------------
# acceptance: fail/recover mid warehouse trace
# ---------------------------------------------------------------------------


class TestFailoverAcceptance:
    def test_fail_and_recover_mid_trace(self):
        """ISSUE acceptance: fail a zone mid-stream, recover it later; the
        merged stream is well-formed and no tag is permanently orphaned."""
        sim, coordinator = warehouse_zones(duration=400, checkpoint_interval=50)
        messages = []
        for readings in sim.stream:
            if readings.epoch == 150:
                messages.extend(coordinator.fail_zone("storage"))
            if readings.epoch == 220:
                messages.extend(coordinator.recover_zone("storage"))
            messages.extend(coordinator.process_epoch(readings).messages)
        check_well_formed(messages)
        assert coordinator.failed_zones == frozenset()

        # every owner entry must point at a zone that actually tracks the
        # tag — anything else would be a permanent orphan
        orphans = [
            tag
            for tag, zone_id in coordinator._owner.items()
            if tag not in coordinator.zones[zone_id].spire.estimates
        ]
        assert orphans == []
        kinds = [w.kind for w in coordinator.quarantine.warnings]
        assert WarningKind.ZONE_FAILED in kinds
        assert WarningKind.ZONE_RECOVERED in kinds

    def test_failover_disabled_coordinator_matches_seed_behavior(self):
        """Without checkpoint_interval the coordinator runs exactly as
        before: no replay buffers, no checkpoints, working handoff."""
        sim, _ = warehouse_zones(duration=120)
        zones = partition_by_location(
            sim.layout.readers,
            {
                "inbound": ["entry-door", "receiving-belt"],
                "storage": ["shelf-1", "shelf-2"],
                "outbound": ["packaging-area", "exit-belt", "exit-door"],
            },
            sim.layout.registry,
        )
        coordinator = Coordinator(zones)
        assert not coordinator.failover_enabled
        messages = []
        for readings in sim.stream:
            messages.extend(coordinator.process_epoch(readings).messages)
        check_well_formed(messages)
        assert coordinator._replay == {} and coordinator._checkpoints == {}

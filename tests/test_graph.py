"""Unit tests for the time-varying colored graph model."""

import pytest

from repro.core.graph import Graph, GraphEdge, GraphNode
from repro.model.locations import UNKNOWN_COLOR

from tests.conftest import case, item, pallet

BLUE, GREEN = 0, 1


@pytest.fixture
def graph() -> Graph:
    return Graph()


class TestNodes:
    def test_get_or_create_idempotent(self, graph):
        a = graph.get_or_create(item(1), now=0)
        b = graph.get_or_create(item(1), now=5)
        assert a is b
        assert graph.node_count == 1

    def test_node_lookup(self, graph):
        graph.get_or_create(item(1), now=0)
        assert item(1) in graph
        assert graph.get(item(2)) is None
        with pytest.raises(KeyError):
            graph.node(item(2))

    def test_level_from_tag(self, graph):
        assert graph.get_or_create(pallet(1), 0).level == 3
        assert graph.get_or_create(item(1), 0).level == 1


class TestColoring:
    def test_set_color_records_memory(self, graph):
        node = graph.get_or_create(item(1), now=0)
        is_new = graph.set_color(node, BLUE, now=0)
        assert is_new
        assert node.color == BLUE
        assert node.recent_color == BLUE and node.seen_at == 0

    def test_same_color_not_new(self, graph):
        node = graph.get_or_create(item(1), now=0)
        graph.set_color(node, BLUE, now=0)
        graph.begin_epoch()
        assert graph.set_color(node, BLUE, now=1) is False

    def test_different_color_is_new(self, graph):
        node = graph.get_or_create(item(1), now=0)
        graph.set_color(node, BLUE, now=0)
        graph.begin_epoch()
        assert graph.set_color(node, GREEN, now=1) is True
        assert node.recent_color == GREEN

    def test_begin_epoch_uncolors_but_keeps_memory(self, graph):
        node = graph.get_or_create(item(1), now=0)
        graph.set_color(node, BLUE, now=0)
        graph.begin_epoch()
        assert node.color is None
        assert node.recent_color == BLUE and node.seen_at == 0
        assert not graph.colored_at(1, BLUE)

    def test_recolor_within_epoch_last_wins(self, graph):
        node = graph.get_or_create(item(1), now=0)
        graph.set_color(node, BLUE, now=0)
        graph.set_color(node, GREEN, now=0)
        assert node.color == GREEN
        assert not graph.colored_at(1, BLUE)
        assert node in graph.colored_at(1, GREEN)

    def test_colored_index_by_level(self, graph):
        i = graph.get_or_create(item(1), now=0)
        c = graph.get_or_create(case(1), now=0)
        graph.set_color(i, BLUE, 0)
        graph.set_color(c, BLUE, 0)
        assert graph.colored_at(1, BLUE) == {i}
        assert graph.colored_at(2, BLUE) == {c}

    def test_closest_colored_level(self, graph):
        i = graph.get_or_create(item(1), now=0)
        p = graph.get_or_create(pallet(1), now=0)
        graph.set_color(i, BLUE, 0)
        graph.set_color(p, BLUE, 0)
        # no case in blue: item's closest level above is the pallet layer
        assert graph.closest_colored_level(1, BLUE, direction=+1) == 3
        assert graph.closest_colored_level(3, BLUE, direction=-1) == 1
        assert graph.closest_colored_level(1, GREEN, direction=+1) is None


class TestEdges:
    def test_add_edge_registers_both_sides(self, graph):
        c = graph.get_or_create(case(1), 0)
        i = graph.get_or_create(item(1), 0)
        edge = graph.add_edge(c, i, now=0)
        assert c.children[item(1)] is edge
        assert i.parents[case(1)] is edge
        assert graph.edge_count == 1

    def test_add_edge_idempotent(self, graph):
        c = graph.get_or_create(case(1), 0)
        i = graph.get_or_create(item(1), 0)
        e1 = graph.add_edge(c, i, now=0)
        e2 = graph.add_edge(c, i, now=3)
        assert e1 is e2 and graph.edge_count == 1
        assert e1.created_at == 0

    def test_edge_direction_enforced(self, graph):
        c = graph.get_or_create(case(1), 0)
        i = graph.get_or_create(item(1), 0)
        with pytest.raises(ValueError):
            graph.add_edge(i, c, now=0)

    def test_cross_layer_edge_allowed(self, graph):
        p = graph.get_or_create(pallet(1), 0)
        i = graph.get_or_create(item(1), 0)
        graph.add_edge(p, i, now=0)
        assert graph.edge_count == 1

    def test_remove_edge(self, graph):
        c = graph.get_or_create(case(1), 0)
        i = graph.get_or_create(item(1), 0)
        edge = graph.add_edge(c, i, now=0)
        graph.remove_edge(edge)
        assert graph.edge_count == 0
        assert not c.children and not i.parents

    def test_remove_node_drops_incident_edges(self, graph):
        c = graph.get_or_create(case(1), 0)
        i1 = graph.get_or_create(item(1), 0)
        i2 = graph.get_or_create(item(2), 0)
        graph.add_edge(c, i1, 0)
        graph.add_edge(c, i2, 0)
        graph.remove_node(case(1))
        assert case(1) not in graph
        assert graph.edge_count == 0
        assert not i1.parents and not i2.parents

    def test_remove_colored_node_cleans_index(self, graph):
        c = graph.get_or_create(case(1), 0)
        graph.set_color(c, BLUE, 0)
        graph.remove_node(case(1))
        assert not graph.colored_at(2, BLUE)

    def test_edges_iterates_each_once(self, graph):
        c = graph.get_or_create(case(1), 0)
        i1 = graph.get_or_create(item(1), 0)
        i2 = graph.get_or_create(item(2), 0)
        graph.add_edge(c, i1, 0)
        graph.add_edge(c, i2, 0)
        assert len(list(graph.edges())) == 2


class TestEdgeHistory:
    def test_push_history_shifts(self):
        parent = GraphNode(case(1), 0)
        child = GraphNode(item(1), 0)
        edge = GraphEdge(parent, child, 0)
        edge.push_history(True, size=4)
        edge.push_history(False, size=4)
        edge.push_history(True, size=4)
        assert edge.history_bits(4) == [True, False, True, False]
        assert edge.filled == 3

    def test_history_caps_at_size(self):
        edge = GraphEdge(GraphNode(case(1), 0), GraphNode(item(1), 0), 0)
        for _ in range(10):
            edge.push_history(True, size=4)
        assert edge.filled == 4
        assert edge.history == 0b1111

    def test_other_endpoint(self):
        parent = GraphNode(case(1), 0)
        child = GraphNode(item(1), 0)
        edge = GraphEdge(parent, child, 0)
        assert edge.other(parent) is child
        assert edge.other(child) is parent


class TestConfirmation:
    def test_set_confirmed_parent_resets_conflicts(self, graph):
        node = graph.get_or_create(item(1), 0)
        node.record_conflict()
        node.set_confirmed_parent(case(1), now=5)
        assert node.confirmed_parent == case(1)
        assert node.confirmed_at == 5
        assert node.confirmed_conflicts == 0
        node.record_conflict()
        assert node.confirmed_conflicts == 1


class TestMemoryAccounting:
    def test_memory_grows_with_nodes_and_edges(self, graph):
        empty = graph.memory_bytes()
        c = graph.get_or_create(case(1), 0)
        i = graph.get_or_create(item(1), 0)
        with_nodes = graph.memory_bytes()
        graph.add_edge(c, i, 0)
        with_edge = graph.memory_bytes()
        assert empty < with_nodes < with_edge


class TestInvariants:
    def test_invariants_hold_after_mutations(self, graph):
        c = graph.get_or_create(case(1), 0)
        i = graph.get_or_create(item(1), 0)
        graph.set_color(c, BLUE, 0)
        graph.set_color(i, BLUE, 0)
        graph.add_edge(c, i, 0)
        graph.check_invariants()
        graph.begin_epoch()
        graph.check_invariants()

"""Unit tests for event messages (§V-A)."""

import pytest

from repro.events.messages import (
    EVENT_MESSAGE_BYTES,
    INFINITY,
    EventKind,
    EventMessage,
    end_containment,
    end_location,
    missing,
    start_containment,
    start_location,
    stream_bytes,
)

from tests.conftest import case, item


class TestConstructors:
    def test_start_location_open_interval(self):
        msg = start_location(item(1), 2, vs=5)
        assert msg.kind is EventKind.START_LOCATION
        assert msg.place == 2 and msg.vs == 5 and msg.ve == INFINITY

    def test_end_location_closes_interval(self):
        msg = end_location(item(1), 2, vs=5, ve=9)
        assert msg.ve == 9 and msg.vs == 5

    def test_containment_pair(self):
        s = start_containment(item(1), case(1), vs=3)
        e = end_containment(item(1), case(1), vs=3, ve=7)
        assert s.container == case(1) and s.ve == INFINITY
        assert e.ve == 7

    def test_missing_is_singleton(self):
        msg = missing(item(1), 4, vs=8)
        assert msg.vs == msg.ve == 8
        assert msg.place == 4


class TestValidation:
    def test_location_message_requires_place(self):
        with pytest.raises(ValueError, match="place"):
            EventMessage(EventKind.START_LOCATION, item(1), 0, INFINITY)

    def test_containment_message_requires_container(self):
        with pytest.raises(ValueError, match="container"):
            EventMessage(EventKind.START_CONTAINMENT, item(1), 0, INFINITY, place=1)

    def test_interval_cannot_end_before_start(self):
        with pytest.raises(ValueError, match="ends before"):
            end_location(item(1), 0, vs=5, ve=4)

    def test_missing_requires_point_interval(self):
        with pytest.raises(ValueError, match="singleton"):
            EventMessage(EventKind.MISSING, item(1), 5, 6, place=0)


class TestKindProperties:
    def test_location_kinds(self):
        assert EventKind.START_LOCATION.is_location
        assert EventKind.END_LOCATION.is_location
        assert EventKind.MISSING.is_location
        assert not EventKind.START_CONTAINMENT.is_location

    def test_containment_kinds(self):
        assert EventKind.START_CONTAINMENT.is_containment
        assert EventKind.END_CONTAINMENT.is_containment
        assert not EventKind.MISSING.is_containment


class TestRendering:
    def test_str_location(self):
        assert str(start_location(item(1), 2, 5)) == "StartLocation(item:1, L2, 5, inf)"

    def test_str_containment(self):
        rendered = str(end_containment(item(1), case(1), 3, 9))
        assert rendered == "EndContainment(item:1, case:1, 3, 9)"


class TestSizing:
    def test_stream_bytes(self):
        msgs = [start_location(item(1), 0, 0), missing(item(1), 0, 5)]
        assert stream_bytes(msgs) == 2 * EVENT_MESSAGE_BYTES

"""`CompiledPattern` — a compiled pattern as a serving-tier citizen.

The adapter subclasses :class:`repro.serving.patterns.Pattern`, so a
compiled pattern drops into the standing-query engine exactly like the
hand-coded catalogue did: per-subscription state, ``prime`` from the
live index on subscribe, one ``evaluate`` per epoch feeding the
subscription queues.  Matches are turned into
:class:`~repro.serving.patterns.Notification` values by a *render*
function — the default renders the RETURN clause; the library
definitions (:mod:`repro.sase.library`) install renders that reproduce
the legacy catalogue's notifications byte for byte.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.sase.ast import EvalContext, PatternAST
from repro.sase.nfa import NfaProgram, compile_ast
from repro.sase.parser import parse_pattern_source
from repro.sase.runtime import Match, PatternRuntime
from repro.serving.patterns import (
    NOTIFY_SASE_MATCH,
    PATTERN_SASE,
    Notification,
    Pattern,
    PatternSpec,
)

#: turns a runtime match into the notification a subscriber receives
Render = Callable[[Match, object], Notification]


class CompiledPattern(Pattern):
    """A pattern compiled from source text, runnable by the engine."""

    kind_code = PATTERN_SASE

    def __init__(
        self,
        source: str,
        ast: PatternAST,
        program: NfaProgram,
        render: Render | None = None,
        notify_kind: str = NOTIFY_SASE_MATCH,
        compile_seconds: float = 0.0,
    ) -> None:
        self.source = source
        self.ast = ast
        self.program = program
        self.notify_kind = notify_kind
        self.compile_seconds = compile_seconds
        self.runtime = PatternRuntime(program)
        self._custom_render = render is not None
        self._render: Render = render if render is not None else self._default_render
        #: set by the library builders: the legacy wire spec this pattern
        #: re-expresses, so spec() round-trips for catalogue subscriptions
        self.spec_override: PatternSpec | None = None

    # -- serving Pattern API --------------------------------------------

    def spec(self) -> PatternSpec:
        if self.spec_override is not None:
            return self.spec_override
        return PatternSpec(PATTERN_SASE, source=self.source)

    @property
    def canonical_source(self) -> str:
        """The ``parse ∘ unparse`` fixpoint of the pattern source.

        Two textual variants of the same pattern (whitespace, keyword
        case, redundant parens) canonicalize to the same string — this is
        the serving tier's fan-out sharing key and the persisted form of
        a subscription.
        """
        from repro.sase.ast import unparse

        return unparse(self.ast)

    def share_key(self) -> tuple | None:
        """Fan-out sharing identity (see :meth:`Pattern.share_key`).

        Library builders set ``spec_override``, so catalogue patterns
        share by their legacy wire spec; plain compiled patterns share by
        canonical source.  A pattern with a *custom* render but no spec
        override is unshareable — the render closure's identity is not
        captured by the source text.
        """
        if self.spec_override is not None:
            spec = self.spec_override
            return (
                "spec",
                type(self).__name__,
                spec.kind,
                spec.obj,
                spec.place,
                spec.k,
                spec.source,
            )
        if self._custom_render:
            return None
        return ("sase", self.canonical_source, self.notify_kind)

    def prime(self, index, epoch) -> None:
        self.runtime.prime(index, epoch)

    def evaluate(self, epoch, messages, index) -> list[Notification]:
        matches = self.runtime.process_epoch(epoch, messages, index)
        return [self._render(match, index) for match in matches]

    # -- observability ---------------------------------------------------

    @property
    def sase_stats(self) -> dict:
        """Runtime counters the engine surfaces as ``spire_sase_*``."""
        stats = self.runtime.stats
        return {
            "active_instances": self.runtime.active_instances,
            "partitions": self.runtime.partition_count,
            "matches": stats.matches,
            "kills": stats.kills,
            "prunes": stats.prunes,
            "created": stats.created,
            "compile_seconds": self.compile_seconds,
        }

    # -- default rendering -----------------------------------------------

    def _default_render(self, match: Match, index) -> Notification:
        first = self.program.steps[0].binding
        bound = match.bindings.get(first)
        view = bound[0] if isinstance(bound, list) else bound
        count = sum(
            len(value) if isinstance(value, list) else 1
            for value in match.bindings.values()
        )
        if self.ast.returns:
            ctx = EvalContext(match.bindings, match.epoch, index)
            detail = ", ".join(
                f"{item.label}={item.expr.eval(ctx)}" for item in self.ast.returns
            )
        else:
            detail = " ".join(element.unparse() for element in self.ast.elements)
        return Notification(
            kind=self.notify_kind,
            epoch=match.epoch,
            obj=view.msg.obj if view is not None else None,
            place=view.msg.place if view is not None else None,
            container=view.msg.container if view is not None else None,
            value=count,
            detail=detail,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompiledPattern({self.source!r})"


def compile_pattern(
    source: str,
    render: Render | None = None,
    notify_kind: str = NOTIFY_SASE_MATCH,
) -> CompiledPattern:
    """Parse + compile pattern text into a runnable serving pattern.

    Raises :class:`~repro.sase.errors.PatternSyntaxError` /
    :class:`~repro.sase.errors.PatternSemanticError` (both
    ``ValueError``) on bad input; the serving server forwards the message
    as a compile-error reply.
    """
    started = time.perf_counter()
    ast = parse_pattern_source(source)
    program = compile_ast(ast)
    elapsed = time.perf_counter() - started
    return CompiledPattern(
        source=source,
        ast=ast,
        program=program,
        render=render,
        notify_kind=notify_kind,
        compile_seconds=elapsed,
    )
